//! Online statistics used by every experiment table.
//!
//! The MITS evaluation reports latencies, jitter, loss ratios, waiting-time
//! distributions and bandwidth usage. These collectors accumulate samples in
//! O(1) memory (except the histogram, which is fixed-size) so multi-million
//! cell simulations stay cheap.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Welford online mean/variance plus min/max.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty collector.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration sample in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Sample mean (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance (0 for < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Smallest sample (None when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }
    /// Largest sample (None when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another collector into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A pointer from a histogram bucket back into the trace store: the
/// sample currently "representing" the bucket, with enough identity
/// (`trace_id`, `span_id`, virtual instant) to pull the matching span
/// out of the sampled traces. In campus runs `trace_id` is the student
/// index and `span_id` the session root span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exemplar {
    /// The sample value.
    pub value: f64,
    /// Trace the sample belongs to (campus: student index).
    pub trace_id: u64,
    /// Span the sample was measured on (0 when unknown).
    pub span_id: u64,
    /// Virtual instant of the sample.
    pub at: SimTime,
}

impl Exemplar {
    /// Total order used for deterministic per-bucket selection: the
    /// *largest* value wins (the worst sample is the most interesting
    /// one to link), ties broken toward the smallest
    /// `(trace_id, span_id, at)`. Because this is a total order, the
    /// per-bucket join is associative and commutative, which keeps
    /// histogram merges byte-identical across merge orders.
    fn beats(&self, other: &Exemplar) -> bool {
        match self.value.total_cmp(&other.value) {
            core::cmp::Ordering::Greater => true,
            core::cmp::Ordering::Less => false,
            core::cmp::Ordering::Equal => {
                (other.trace_id, other.span_id, other.at) > (self.trace_id, self.span_id, self.at)
            }
        }
    }
}

/// Fixed-bin histogram over [lo, hi) with overflow/underflow buckets and
/// percentile queries. Used for waiting-time and jitter distributions.
///
/// A histogram may optionally carry an [`Exemplar`] per bucket
/// (including the under/overflow buckets); exemplar selection and
/// merging are deterministic, so an exemplar-carrying histogram keeps
/// the registry's byte-identity guarantees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    /// Empty when exemplars are disabled; `bins.len() + 2` slots when
    /// enabled (slot 0 = underflow, `1..=bins`, last = overflow).
    exemplars: Vec<Option<Exemplar>>,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "zero bins");
        assert!(lo < hi, "empty range");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            exemplars: Vec::new(),
        }
    }

    /// Exemplar slot index for sample `x`: 0 for underflow, then one
    /// slot per bin, then overflow.
    fn exemplar_slot(&self, x: f64) -> usize {
        if x < self.lo {
            0
        } else if x >= self.hi {
            self.bins.len() + 1
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            idx + 1
        }
    }

    /// Record a sample and offer `ex` as the bucket's exemplar
    /// (enabling exemplar tracking on first use). The bucket keeps the
    /// exemplar with the largest value, ties broken toward the smallest
    /// `(trace_id, span_id, at)` — a deterministic selection that
    /// merges associatively.
    pub fn record_exemplar(&mut self, x: f64, ex: Exemplar) {
        self.record(x);
        if self.exemplars.is_empty() {
            self.exemplars = vec![None; self.bins.len() + 2];
        }
        let slot = self.exemplar_slot(x);
        Self::join_exemplar(&mut self.exemplars[slot], &ex);
    }

    fn join_exemplar(slot: &mut Option<Exemplar>, cand: &Exemplar) {
        match slot {
            Some(cur) if !cand.beats(cur) => {}
            _ => *slot = Some(*cand),
        }
    }

    /// Whether any bucket carries an exemplar.
    pub fn has_exemplars(&self) -> bool {
        self.exemplars.iter().any(Option::is_some)
    }

    /// Present exemplars, in bucket order (underflow, bins, overflow).
    pub fn exemplars(&self) -> impl Iterator<Item = &Exemplar> {
        self.exemplars.iter().flatten()
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            // Guard against floating error landing exactly on len().
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total samples recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bin contents.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Approximate `q`-quantile by linear interpolation within the
    /// containing bin.
    ///
    /// Return behavior, exhaustively:
    ///
    /// * **Empty histogram** (`count == 0`): `None`, for every `q`.
    /// * **`q` outside `[0, 1]`** is clamped; a **NaN** `q` is treated
    ///   as `0.0`.
    /// * **`q == 0.0`**: the left edge of the lowest occupied region —
    ///   `lo` if any underflow sample exists, else the left edge of the
    ///   first non-empty bin, else `hi` (all samples in overflow).
    /// * **`q == 1.0`**: the right edge of the highest occupied region —
    ///   `hi` if any overflow sample exists, else the right edge of the
    ///   last non-empty bin, else `lo` (all samples in underflow).
    /// * **Interior `q`**: underflow samples count as `lo`, overflow as
    ///   `hi`; in particular, if every sample landed in overflow the
    ///   result is `hi`, never a value beyond the range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        if q == 0.0 {
            if self.underflow > 0 {
                return Some(self.lo);
            }
            return Some(match self.bins.iter().position(|&b| b > 0) {
                Some(i) => self.lo + w * i as f64,
                None => self.hi, // all samples in overflow
            });
        }
        if q == 1.0 {
            if self.overflow > 0 {
                return Some(self.hi);
            }
            return Some(match self.bins.iter().rposition(|&b| b > 0) {
                Some(i) => self.lo + w * (i + 1) as f64,
                None => self.lo, // all samples in underflow
            });
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = self.underflow;
        if cum >= target {
            return Some(self.lo);
        }
        for (i, &b) in self.bins.iter().enumerate() {
            if cum + b >= target {
                let within = (target - cum) as f64 / b.max(1) as f64;
                return Some(self.lo + w * (i as f64 + within));
            }
            cum += b;
        }
        Some(self.hi)
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Merge another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics if the geometries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo.to_bits(), other.lo.to_bits(), "geometry mismatch");
        assert_eq!(self.hi.to_bits(), other.hi.to_bits(), "geometry mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "geometry mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        if !other.exemplars.is_empty() {
            if self.exemplars.is_empty() {
                self.exemplars = vec![None; self.bins.len() + 2];
            }
            for (slot, theirs) in self.exemplars.iter_mut().zip(&other.exemplars) {
                if let Some(ex) = theirs {
                    Self::join_exemplar(slot, ex);
                }
            }
        }
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. queue length
/// or link utilisation over virtual time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    weighted_sum: f64,
    started: Option<SimTime>,
    max: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Empty collector.
    pub fn new() -> Self {
        TimeWeighted {
            last_t: SimTime::ZERO,
            last_v: 0.0,
            weighted_sum: 0.0,
            started: None,
            max: 0.0,
        }
    }

    /// Record that the signal changed to `v` at time `t`.
    ///
    /// Times should be non-decreasing; a `t` earlier than the previous
    /// call is clamped to that call's time (the out-of-order update
    /// contributes zero weight for the past, then takes effect as the
    /// new current value), so the collector never goes backwards and
    /// `mean_until` stays finite and within the observed value range.
    pub fn set(&mut self, t: SimTime, v: f64) {
        let t = t.max(self.last_t);
        match self.started {
            None => {
                self.started = Some(t);
            }
            Some(_) => {
                let dt = t.since(self.last_t).as_secs_f64();
                self.weighted_sum += self.last_v * dt;
            }
        }
        self.last_t = t;
        self.last_v = v;
        self.max = self.max.max(v);
    }

    /// Time-weighted mean over [start, `until`].
    pub fn mean_until(&self, until: SimTime) -> f64 {
        let Some(start) = self.started else {
            return 0.0;
        };
        let total = until.since(start).as_secs_f64();
        if total <= 0.0 {
            return self.last_v;
        }
        let tail = until.since(self.last_t).as_secs_f64();
        (self.weighted_sum + self.last_v * tail) / total
    }

    /// Maximum value observed.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }
}

/// A ratio counter for loss-style metrics (cells dropped / cells offered).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RatioCounter {
    /// Numerator (e.g. losses).
    pub hits: u64,
    /// Denominator (e.g. total offered).
    pub total: u64,
}

impl RatioCounter {
    /// Record one trial; `hit` increments the numerator.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// hits / total (0 when empty).
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn histogram_counts_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins()[0], 2); // 0.0 and 0.5
        assert_eq!(h.bins()[5], 1); // 5.0
        assert_eq!(h.bins()[9], 1); // 9.99
    }

    #[test]
    fn histogram_median_uniform() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.record(i as f64 / 10.0);
        }
        let med = h.median().unwrap();
        assert!((med - 50.0).abs() < 2.0, "median {med}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 99.0).abs() < 2.0, "p99 {p99}");
    }

    #[test]
    fn histogram_quantile_empty() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.median(), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn histogram_quantile_extremes_track_occupied_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(3.5); // bin 3: [3, 4)
        h.record(7.2); // bin 7: [7, 8)
        assert_eq!(h.quantile(0.0), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(8.0));
        // Under/overflow samples pull the extremes to the range edges.
        h.record(-1.0);
        h.record(99.0);
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
    }

    #[test]
    fn histogram_quantile_all_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(5.0);
        h.record(6.0);
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(1.0));
    }

    #[test]
    fn histogram_quantile_all_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(0.5), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(0.0));
    }

    #[test]
    fn histogram_quantile_clamps_weird_q() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(4.5);
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
    }

    #[test]
    fn time_weighted_out_of_order_set_is_clamped() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::from_secs(2), 4.0);
        // Out-of-order update: clamped to t=2, becomes the current value.
        tw.set(SimTime::from_secs(1), 8.0);
        let mean = tw.mean_until(SimTime::from_secs(4));
        assert!((mean - 8.0).abs() < 1e-9, "mean {mean}");
        assert_eq!(tw.current(), 8.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(9.0);
        b.record(-5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.bins()[0], 1);
        assert_eq!(a.bins()[4], 1);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new();
        // 0 for 1s, then 10 for 1s → mean 5 over [0, 2].
        tw.set(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(1), 10.0);
        let mean = tw.mean_until(SimTime::from_secs(2));
        assert!((mean - 5.0).abs() < 1e-9, "mean {mean}");
        assert_eq!(tw.max(), 10.0);
        assert_eq!(tw.current(), 10.0);
    }

    #[test]
    fn exemplars_keep_the_worst_sample_per_bucket() {
        let ex = |v: f64, trace: u64| Exemplar {
            value: v,
            trace_id: trace,
            span_id: 1,
            at: SimTime::from_secs(trace),
        };
        let mut h = Histogram::new(0.0, 10.0, 2);
        assert!(!h.has_exemplars());
        h.record_exemplar(1.0, ex(1.0, 3));
        h.record_exemplar(4.0, ex(4.0, 9)); // same bucket, larger value wins
        h.record_exemplar(7.0, ex(7.0, 5));
        h.record_exemplar(-1.0, ex(-1.0, 2)); // underflow slot
        h.record_exemplar(99.0, ex(99.0, 8)); // overflow slot
        assert!(h.has_exemplars());
        let traces: Vec<u64> = h.exemplars().map(|e| e.trace_id).collect();
        assert_eq!(traces, vec![2, 9, 5, 8]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn exemplar_ties_break_to_the_smallest_identity() {
        let ex = |trace: u64| Exemplar {
            value: 2.0,
            trace_id: trace,
            span_id: 0,
            at: SimTime::ZERO,
        };
        let mut a = Histogram::new(0.0, 10.0, 1);
        a.record_exemplar(2.0, ex(7));
        let mut b = Histogram::new(0.0, 10.0, 1);
        b.record_exemplar(2.0, ex(3));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.exemplars().next().unwrap().trace_id, 3);
        assert_eq!(ba.exemplars().next().unwrap().trace_id, 3);
    }

    #[test]
    fn exemplar_merge_is_associative() {
        let make = |v: f64, trace: u64| {
            let mut h = Histogram::new(0.0, 10.0, 4);
            h.record_exemplar(
                v,
                Exemplar {
                    value: v,
                    trace_id: trace,
                    span_id: trace,
                    at: SimTime::from_secs(trace),
                },
            );
            h
        };
        let (a, b, c) = (make(1.0, 1), make(1.5, 2), make(9.0, 3));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        let l: Vec<&Exemplar> = left.exemplars().collect();
        let r: Vec<&Exemplar> = right.exemplars().collect();
        assert_eq!(l, r);
        assert_eq!(l[0].trace_id, 2, "bucket 0 keeps the larger 1.5 sample");
        assert_eq!(l[1].trace_id, 3);
        // Merging an exemplar-free histogram in leaves exemplars alone.
        let mut plain = Histogram::new(0.0, 10.0, 4);
        plain.record(2.0);
        left.merge(&plain);
        assert_eq!(left.exemplars().count(), 2);
    }

    #[test]
    fn ratio_counter() {
        let mut r = RatioCounter::default();
        for i in 0..100 {
            r.record(i % 4 == 0);
        }
        assert_eq!(r.total, 100);
        assert_eq!(r.hits, 25);
        assert!((r.ratio() - 0.25).abs() < 1e-12);
        assert_eq!(RatioCounter::default().ratio(), 0.0);
    }
}
