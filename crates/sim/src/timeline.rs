//! Windowed telemetry timeline: when did things happen, not just how
//! often.
//!
//! The metrics rollup ([`MetricsSnapshot`](crate::registry::MetricsSnapshot))
//! answers "how many retries did the campus see?"; this module answers
//! "in which 250 ms of virtual time did they cluster?". A
//! [`TimelineRecorder`] folds each session's flight-recorder events and
//! its retirement into fixed-width virtual-time windows; the resulting
//! [`Timeline`]s merge per-window by addition, which is associative and
//! commutative, so the campus fold in batch-index order produces a
//! timeline that is byte-identical across thread counts and admission
//! windows — the same contract the rollup already honours.
//!
//! Every session runs its own virtual clock starting near zero, so the
//! campus timeline's axis is *session-local* virtual time aggregated
//! across the population: window `i` of the merged timeline describes
//! what all sessions experienced during their own `[i·w, (i+1)·w)`.
//! That is exactly the alignment forensics needs — an injected fault
//! schedule fires at the same session-local instant in every session.
//!
//! Session durations are folded into per-window log2 buckets (not the
//! fixed-range histograms of the registry) because a window may hold
//! one session or ten thousand; log2 buckets bound the state at 32
//! counters while still giving usable p50/p99 upper bounds.

use crate::forensics::{FlightEvent, FlightKind, FLIGHT_KINDS};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log2 duration buckets per window. Bucket `i` holds
/// durations `d` with `floor(log2(d_us)) == i`, so 32 buckets cover
/// durations up to ~2^32 µs (over an hour of virtual time).
const DUR_BUCKETS: usize = 32;

/// Telemetry folded into one virtual-time window.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// Flight-event counts by [`FlightKind`] slot.
    pub counts: [u64; FLIGHT_KINDS],
    /// Sessions that retired inside this window.
    pub sessions: u64,
    /// Of those, sessions that retired degraded (failures included).
    pub sessions_degraded: u64,
    /// Of those, sessions that retired failed.
    pub sessions_failed: u64,
    /// log2 buckets of the retired sessions' durations (µs).
    dur_bins: [u64; DUR_BUCKETS],
    /// Sum of retired sessions' durations, µs.
    pub dur_sum_us: u64,
    /// Longest retired session's duration, µs.
    pub dur_max_us: u64,
}

impl Default for WindowStats {
    fn default() -> Self {
        WindowStats {
            counts: [0; FLIGHT_KINDS],
            sessions: 0,
            sessions_degraded: 0,
            sessions_failed: 0,
            dur_bins: [0; DUR_BUCKETS],
            dur_sum_us: 0,
            dur_max_us: 0,
        }
    }
}

fn dur_bucket(us: u64) -> usize {
    (63 - us.max(1).leading_zeros() as usize).min(DUR_BUCKETS - 1)
}

impl WindowStats {
    fn merge(&mut self, other: &WindowStats) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sessions += other.sessions;
        self.sessions_degraded += other.sessions_degraded;
        self.sessions_failed += other.sessions_failed;
        for (a, b) in self.dur_bins.iter_mut().zip(&other.dur_bins) {
            *a += b;
        }
        self.dur_sum_us += other.dur_sum_us;
        self.dur_max_us = self.dur_max_us.max(other.dur_max_us);
    }

    /// Count for one event kind.
    pub fn count(&self, kind: FlightKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Whether anything anomalous landed in this window: any
    /// non-fence flight event, or a degraded/failed retirement.
    /// (Epoch fences alone are routine recovery bookkeeping;
    /// fault onsets/clears are anomalies by definition.)
    pub fn anomalous(&self) -> bool {
        let fences = self.count(FlightKind::EpochFence);
        let events: u64 = self.counts.iter().sum();
        events > fences || self.sessions_degraded > 0 || self.sessions_failed > 0
    }

    /// Upper bound (µs) of the `q`-quantile of session durations in
    /// this window, from the log2 buckets. Returns 0 when no session
    /// retired here. Never exceeds [`Self::dur_max_us`]: the bucket's
    /// power-of-two ceiling would otherwise overstate a lone slow
    /// session (one 800 ms sample must not report a 1.05 s p99).
    pub fn dur_quantile_us(&self, q: f64) -> u64 {
        if self.sessions == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = ((q * self.sessions as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &b) in self.dur_bins.iter().enumerate() {
            cum += b;
            if cum >= target {
                return upper_bound_us(i).min(self.dur_max_us);
            }
        }
        self.dur_max_us
    }
}

fn upper_bound_us(bucket: usize) -> u64 {
    if bucket + 1 >= 64 {
        u64::MAX
    } else {
        1u64 << (bucket + 1)
    }
}

/// A merged, windowed view of campus telemetry over session-local
/// virtual time. Sparse: only windows that saw an event or a
/// retirement are stored.
#[derive(Debug, Clone)]
pub struct Timeline {
    window: SimDuration,
    windows: BTreeMap<u64, WindowStats>,
}

impl Timeline {
    /// An empty timeline with the given window width.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "zero timeline window");
        Timeline {
            window,
            windows: BTreeMap::new(),
        }
    }

    /// The window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Number of populated windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window is populated.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Populated windows in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &WindowStats)> {
        self.windows.iter().map(|(i, w)| (*i, w))
    }

    /// Stats of window `index`, if populated.
    pub fn get(&self, index: u64) -> Option<&WindowStats> {
        self.windows.get(&index)
    }

    fn index_of(&self, at: SimTime) -> u64 {
        at.as_micros() / self.window.as_micros()
    }

    fn window_start(&self, index: u64) -> SimTime {
        SimTime::from_micros(index.saturating_mul(self.window.as_micros()))
    }

    fn stats_mut(&mut self, index: u64) -> &mut WindowStats {
        self.windows.entry(index).or_default()
    }

    /// Fold one flight event into its window.
    pub fn record_event(&mut self, e: &FlightEvent) {
        let idx = self.index_of(e.at);
        self.stats_mut(idx).counts[e.kind.index()] += 1;
    }

    /// Fold one session retirement (at virtual instant `end`, having
    /// run for `duration`) into its window.
    pub fn record_session(
        &mut self,
        end: SimTime,
        duration: SimDuration,
        degraded: bool,
        failed: bool,
    ) {
        let idx = self.index_of(end);
        let w = self.stats_mut(idx);
        w.sessions += 1;
        w.sessions_degraded += u64::from(degraded);
        w.sessions_failed += u64::from(failed);
        let us = duration.as_micros();
        w.dur_bins[dur_bucket(us)] += 1;
        w.dur_sum_us += us;
        w.dur_max_us = w.dur_max_us.max(us);
    }

    /// Merge another timeline in: per-window addition, so the
    /// operation is associative and commutative and the campus fold is
    /// order-insensitive at the byte level.
    ///
    /// # Panics
    /// Panics if the window widths differ.
    pub fn merge(&mut self, other: &Timeline) {
        assert_eq!(
            self.window.as_micros(),
            other.window.as_micros(),
            "timeline window mismatch"
        );
        for (idx, theirs) in &other.windows {
            self.stats_mut(*idx).merge(theirs);
        }
    }

    /// `[start, end)` of the full populated span, if any. The end is
    /// exclusive; a populated final window (index `u64::MAX / w`)
    /// saturates rather than wrapping to an empty span.
    pub fn full_span(&self) -> Option<(SimTime, SimTime)> {
        let first = *self.windows.keys().next()?;
        let last = *self.windows.keys().next_back()?;
        Some((
            self.window_start(first),
            self.window_start(last.saturating_add(1)),
        ))
    }

    /// `[start, end)` covering the first through last anomalous
    /// window, if any window is anomalous (see
    /// [`WindowStats::anomalous`]).
    pub fn anomaly_span(&self) -> Option<(SimTime, SimTime)> {
        let mut first = None;
        let mut last = None;
        for (idx, w) in &self.windows {
            if w.anomalous() {
                first.get_or_insert(*idx);
                last = Some(*idx);
            }
        }
        Some((
            self.window_start(first?),
            self.window_start(last?.saturating_add(1)),
        ))
    }

    /// Total count of `kind` over windows intersecting `[start, end)`.
    pub fn sum_kind_in(&self, kind: FlightKind, start: SimTime, end: SimTime) -> u64 {
        self.range(start, end).map(|(_, w)| w.count(kind)).sum()
    }

    /// Start of the first window in `[start, end)` holding `kind`.
    pub fn first_at_of(&self, kind: FlightKind, start: SimTime, end: SimTime) -> Option<SimTime> {
        self.range(start, end)
            .find(|(_, w)| w.count(kind) > 0)
            .map(|(i, _)| self.window_start(i))
    }

    /// `(degraded-or-failed retirements, start of first such window)`
    /// over `[start, end)`.
    pub fn degraded_in(&self, start: SimTime, end: SimTime) -> (u64, Option<SimTime>) {
        let mut total = 0;
        let mut first = None;
        for (i, w) in self.range(start, end) {
            if w.sessions_degraded > 0 || w.sessions_failed > 0 {
                total += w.sessions_degraded.max(w.sessions_failed);
                if first.is_none() {
                    first = Some(self.window_start(i));
                }
            }
        }
        (total, first)
    }

    fn range(&self, start: SimTime, end: SimTime) -> impl Iterator<Item = (u64, &WindowStats)> {
        let w = self.window.as_micros();
        let lo = start.as_micros() / w;
        let hi = end.as_micros().div_ceil(w);
        self.windows.range(lo..hi).map(|(i, stats)| (*i, stats))
    }

    /// Hand-written, byte-stable JSON: window width plus one object per
    /// populated window. Event counts render only non-zero kinds, in
    /// [`FlightKind::ALL`] order, to keep the document compact.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"v\":1,\"window_us\":{},\"windows\":[",
            self.window.as_micros()
        );
        for (n, (idx, w)) in self.windows.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"i\":{},\"start_us\":{},\"sessions\":{},\"degraded\":{},\"failed\":{},\
                 \"dur_p50_us\":{},\"dur_p99_us\":{},\"dur_max_us\":{},\"events\":{{",
                idx,
                self.window_start(*idx).as_micros(),
                w.sessions,
                w.sessions_degraded,
                w.sessions_failed,
                w.dur_quantile_us(0.50),
                w.dur_quantile_us(0.99),
                w.dur_max_us
            );
            let mut wrote = false;
            for kind in FlightKind::ALL {
                let c = w.count(kind);
                if c > 0 {
                    if wrote {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":{}", kind.as_str(), c);
                    wrote = true;
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Human-readable rendering, one line per populated window.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timeline (window {} ms, {} populated windows)",
            self.window.as_millis(),
            self.windows.len()
        );
        for (idx, w) in &self.windows {
            let start = self.window_start(*idx);
            let _ = write!(
                out,
                "[{:>5}] {:>9.3}s  sessions={:<6} degraded={:<4} failed={:<4}",
                idx,
                start.as_secs_f64(),
                w.sessions,
                w.sessions_degraded,
                w.sessions_failed
            );
            for kind in FlightKind::ALL {
                let c = w.count(kind);
                if c > 0 {
                    let _ = write!(out, " {}={}", kind.as_str(), c);
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Per-session builder for a [`Timeline`]: the campus runner creates
/// one per retiring session, folds the session's flight events and its
/// retirement in, and merges the finished timeline into the batch
/// rollup.
#[derive(Debug, Clone)]
pub struct TimelineRecorder {
    timeline: Timeline,
}

impl TimelineRecorder {
    /// A recorder producing a timeline with the given window width.
    pub fn new(window: SimDuration) -> Self {
        TimelineRecorder {
            timeline: Timeline::new(window),
        }
    }

    /// Fold one flight event.
    pub fn record_event(&mut self, e: &FlightEvent) {
        self.timeline.record_event(e);
    }

    /// Fold a slice of flight events.
    pub fn record_events(&mut self, events: &[FlightEvent]) {
        for e in events {
            self.timeline.record_event(e);
        }
    }

    /// Fold the session's retirement.
    pub fn record_session(
        &mut self,
        end: SimTime,
        duration: SimDuration,
        degraded: bool,
        failed: bool,
    ) {
        self.timeline
            .record_session(end, duration, degraded, failed);
    }

    /// Finish into an owned timeline.
    pub fn finish(self) -> Timeline {
        self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: SimTime, kind: FlightKind) -> FlightEvent {
        FlightEvent {
            at,
            kind,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn events_and_sessions_land_in_their_windows() {
        let mut tl = Timeline::new(SimDuration::from_millis(250));
        tl.record_event(&ev(SimTime::from_millis(100), FlightKind::Retry));
        tl.record_event(&ev(SimTime::from_millis(260), FlightKind::Retry));
        tl.record_session(
            SimTime::from_millis(510),
            SimDuration::from_millis(510),
            false,
            false,
        );
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.get(0).unwrap().count(FlightKind::Retry), 1);
        assert_eq!(tl.get(1).unwrap().count(FlightKind::Retry), 1);
        assert_eq!(tl.get(2).unwrap().sessions, 1);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let make = |at_ms: u64, kind: FlightKind| {
            let mut t = Timeline::new(SimDuration::from_millis(250));
            t.record_event(&ev(SimTime::from_millis(at_ms), kind));
            t.record_session(
                SimTime::from_millis(at_ms),
                SimDuration::from_millis(at_ms),
                kind == FlightKind::Failover,
                false,
            );
            t
        };
        let (a, b, c) = (
            make(10, FlightKind::Retry),
            make(300, FlightKind::Failover),
            make(20, FlightKind::Shed),
        );
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.to_json(), right.to_json());
        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);
        assert_eq!(left.to_json(), rev.to_json());
    }

    #[test]
    #[should_panic(expected = "timeline window mismatch")]
    fn merge_rejects_mismatched_windows() {
        let mut a = Timeline::new(SimDuration::from_millis(250));
        let b = Timeline::new(SimDuration::from_millis(100));
        a.merge(&b);
    }

    #[test]
    fn anomaly_span_covers_first_to_last_anomalous_window() {
        let mut tl = Timeline::new(SimDuration::from_secs(1));
        // Routine fence at t=0 must not open the span.
        tl.record_event(&ev(SimTime::from_millis(500), FlightKind::EpochFence));
        tl.record_event(&ev(SimTime::from_secs(10), FlightKind::FaultOnset));
        tl.record_event(&ev(SimTime::from_secs(12), FlightKind::Retry));
        tl.record_session(
            SimTime::from_secs(20),
            SimDuration::from_secs(20),
            false,
            false,
        );
        let (start, end) = tl.anomaly_span().expect("anomalies present");
        assert_eq!(start, SimTime::from_secs(10));
        assert_eq!(end, SimTime::from_secs(13));
        assert_eq!(tl.sum_kind_in(FlightKind::Retry, start, end), 1);
        assert_eq!(
            tl.first_at_of(FlightKind::Retry, start, end),
            Some(SimTime::from_secs(12))
        );
    }

    #[test]
    fn duration_quantiles_bound_the_samples() {
        let mut tl = Timeline::new(SimDuration::from_secs(1));
        for ms in [100u64, 200, 400, 800] {
            tl.record_session(
                SimTime::from_millis(500),
                SimDuration::from_millis(ms),
                false,
                false,
            );
        }
        let w = tl.get(0).unwrap();
        assert_eq!(w.sessions, 4);
        assert!(w.dur_quantile_us(0.5) >= 200_000);
        assert!(w.dur_quantile_us(0.99) >= 800_000);
        assert_eq!(w.dur_max_us, 800_000);
    }

    #[test]
    fn empty_timeline_has_no_spans_and_zero_quantiles() {
        let tl = Timeline::new(SimDuration::from_millis(250));
        assert!(tl.is_empty());
        assert_eq!(tl.full_span(), None);
        assert_eq!(tl.anomaly_span(), None);
        assert_eq!(WindowStats::default().dur_quantile_us(0.99), 0);
    }

    #[test]
    fn single_window_timeline_brackets_itself() {
        let mut tl = Timeline::new(SimDuration::from_secs(1));
        tl.record_event(&ev(SimTime::from_millis(400), FlightKind::Retry));
        tl.record_session(
            SimTime::from_millis(600),
            SimDuration::from_millis(600),
            true,
            false,
        );
        assert_eq!(tl.len(), 1);
        let span = (SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(tl.full_span(), Some(span));
        assert_eq!(tl.anomaly_span(), Some(span));
        assert_eq!(tl.sum_kind_in(FlightKind::Retry, span.0, span.1), 1);
    }

    #[test]
    fn anomalies_only_in_final_window_bracket_correctly() {
        let mut tl = Timeline::new(SimDuration::from_secs(1));
        // Clean traffic up front, the only anomaly in the last
        // populated window: the span must cover exactly that window.
        for s in 0..5u64 {
            tl.record_session(
                SimTime::from_secs(s),
                SimDuration::from_millis(100),
                false,
                false,
            );
        }
        tl.record_event(&ev(SimTime::from_secs(9), FlightKind::FaultOnset));
        let (start, end) = tl.anomaly_span().expect("anomaly present");
        assert_eq!(start, SimTime::from_secs(9));
        assert_eq!(end, SimTime::from_secs(10));
        let (full_start, full_end) = tl.full_span().unwrap();
        assert_eq!(full_start, SimTime::ZERO);
        assert_eq!(full_end, SimTime::from_secs(10));
    }

    #[test]
    fn final_window_index_saturates_instead_of_wrapping() {
        // A window at the top of the index space: `last + 1` must
        // saturate, producing a non-inverted (if clamped) span.
        let mut tl = Timeline::new(SimDuration::from_micros(1));
        tl.record_event(&ev(SimTime::from_micros(u64::MAX), FlightKind::FaultOnset));
        let (start, end) = tl.anomaly_span().expect("anomaly present");
        assert!(start <= end, "span inverted: {start} > {end}");
        assert_eq!(start, SimTime::from_micros(u64::MAX));
        let (fs, fe) = tl.full_span().unwrap();
        assert!(fs <= fe);
    }

    #[test]
    fn quantiles_never_exceed_the_observed_max() {
        let mut tl = Timeline::new(SimDuration::from_secs(1));
        // One 800 ms session: bucket ceiling is 2^20 µs ≈ 1.05 s, but
        // the reported quantiles must stay at the observed 800 ms.
        tl.record_session(
            SimTime::from_millis(500),
            SimDuration::from_millis(800),
            false,
            false,
        );
        let w = tl.get(0).unwrap();
        assert_eq!(w.dur_quantile_us(0.50), 800_000);
        assert_eq!(w.dur_quantile_us(0.99), 800_000);
        assert_eq!(w.dur_quantile_us(1.0), w.dur_max_us);
    }

    #[test]
    fn json_is_deterministic_and_skips_zero_counts() {
        let mut tl = Timeline::new(SimDuration::from_millis(250));
        tl.record_event(&ev(SimTime::from_millis(10), FlightKind::Shed));
        let json = tl.to_json();
        assert_eq!(json, tl.to_json());
        assert!(json.contains("\"shed\":1"));
        assert!(!json.contains("retry"));
        assert!(json.starts_with("{\"v\":1,\"window_us\":250000"));
    }
}
