//! # mits-sim — discrete-event simulation kernel for MITS
//!
//! The original MITS prototype ran on OCRInet, a real ATM research network in
//! the Ottawa region, with real SUN/ULTRA servers and Windows 95 clients.
//! This reproduction replaces the physical testbed with a deterministic
//! discrete-event simulation (DES). Every substrate that needs time — the
//! ATM network, the courseware database server, the facilitator queueing
//! experiments, the navigator's presentation clock — is built on this crate.
//!
//! The kernel is deliberately small and allocation-light:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time.
//! * [`EventQueue`] — a hierarchical timing-wheel future event list with
//!   deterministic FIFO tie-breaking for simultaneous events.
//! * [`Payload`] — a zero-copy shared byte buffer (`Arc<[u8]>` + range)
//!   cloned by reference-count bump, used for every media payload.
//! * [`Simulation`] — an executor that owns a mutable world `W` and runs
//!   closures-as-events against it.
//! * [`rng`] — seedable, splittable random streams so that experiments are
//!   reproducible run-to-run.
//! * [`stats`] — online statistics (mean/variance/min/max), fixed-bin
//!   histograms with percentile queries, and time-weighted averages used by
//!   every benchmark table in `EXPERIMENTS.md`.
//! * [`queue`] — bounded FIFO queues with drop accounting and a token-bucket
//!   (leaky-bucket) regulator, the building blocks of the ATM switch.
//! * [`trace`] — deterministic hierarchical spans/events stamped with
//!   [`SimTime`], with JSONL and latency-waterfall exporters.
//! * [`registry`] — a unified [`MetricsRegistry`] of named counters, gauges
//!   and histograms that every layer of the stack exports into, with
//!   mergeable [`MetricsSnapshot`]s for campus-scale rollups.
//! * [`slo`] — declarative service-level objectives evaluated against a
//!   merged snapshot, emitting pass/warn/breach verdicts.
//! * [`profile`] — a span-tree self-time profiler that folds a trace into
//!   per-layer virtual-time totals and a flame-style "top" report.
//! * [`timeline`] — a windowed virtual-time timeline of flight events
//!   and session retirements, merged associatively for campus rollups.
//! * [`forensics`] — an always-on bounded [`FlightRecorder`] of
//!   structured anomaly events, and [`ForensicBundle`] incident reports
//!   that align breach windows against the injected fault schedule.
//! * [`replay`] — [`ReplayBundle`] capture of one victim session plus
//!   the layered [`DigestTrace`] that proves a standalone re-run is
//!   the same execution (a mismatch names the divergent layer).
//!
//! ## Example
//!
//! ```
//! use mits_sim::{Simulation, SimTime};
//!
//! // World state: a counter.
//! let mut sim = Simulation::new(0u64);
//! for i in 0..10 {
//!     sim.schedule(SimTime::from_millis(i), move |world: &mut u64, _sched| {
//!         *world += 1;
//!     });
//! }
//! let end = sim.run();
//! assert_eq!(*sim.world(), 10);
//! assert_eq!(end, SimTime::from_millis(9));
//! ```

pub mod event;
pub mod forensics;
pub mod payload;
pub mod profile;
pub mod queue;
pub mod registry;
pub mod replay;
pub mod rng;
pub mod slo;
pub mod stats;
pub mod time;
pub mod timeline;
pub mod trace;

pub use event::{EventQueue, Scheduler, Simulation};
pub use forensics::{
    ChainLink, FaultWindow, FlightEvent, FlightKind, FlightRecorder, ForensicBundle, ForensicInput,
    SessionTail, FLIGHT_KINDS, FLIGHT_RING_CAP,
};
pub use payload::Payload;
pub use profile::{classify_layer, profile_spans, profile_tracer, LayerTotal, NameTotal, Profile};
pub use queue::{BoundedQueue, DropPolicy, TokenBucket};
pub use registry::{MetricValue, MetricsRegistry, MetricsSnapshot, SnapshotValue};
pub use replay::{derive_seed, DigestTrace, Divergence, ReplayBundle};
pub use rng::SimRng;
pub use slo::{Slo, SloInput, SloKind, SloOutcome, SloReport, Verdict};
pub use stats::{Exemplar, Histogram, OnlineStats, RatioCounter, TimeWeighted};
pub use time::{SimDuration, SimTime};
pub use timeline::{Timeline, TimelineRecorder, WindowStats};
pub use trace::{SampleReason, SpanId, SpanInfo, TailSignals, TraceSampler, Tracer};
