//! Span-based self-time profiler over a recorded trace.
//!
//! A waterfall shows *one* session's shape; a profile answers the
//! aggregate question "which layer is the virtual time actually spent
//! in?". This module folds a [`Tracer`]'s span tree into per-layer
//! inclusive and *self* virtual-time totals — self time being a span's
//! duration minus the durations of its direct children, the classic
//! flame-graph decomposition — and renders a deterministic, flame-style
//! "top" report for `tables --exp obs`.
//!
//! Layers are inferred from span naming conventions already used across
//! the stack (`net.*` is the ATM substrate, `server*`/`db.*`/`wal.*`
//! are the courseware database, `cod.*` is the student's navigator,
//! `mheg.*`/`presentation.*` the interpreter). Everything is integer
//! microsecond arithmetic on virtual time, so the report is
//! byte-identical run to run.

use crate::trace::{SpanInfo, Tracer};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Map a span name onto its architectural layer.
///
/// The conventions are those established by the instrumentation PRs:
/// network pump spans carry `net.`, database work carries `db.`,
/// `serverN.`, `wal.`, `replica.` or `attempt` (client retry attempts),
/// navigator session stages carry `cod.`, and interpreter work carries
/// `mheg.` or `presentation.`. Unknown names land in `other` rather
/// than being dropped, so the totals always add up.
pub fn classify_layer(name: &str) -> &'static str {
    if name.starts_with("net.") {
        "atm"
    } else if name.starts_with("db.")
        || name.starts_with("server")
        || name.starts_with("wal.")
        || name.starts_with("replica.")
        || name.starts_with("attempt")
    {
        "db"
    } else if name.starts_with("cod.") {
        "navigator"
    } else if name.starts_with("mheg.") || name.starts_with("presentation.") {
        "mheg"
    } else {
        "other"
    }
}

/// Aggregated virtual time for one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTotal {
    /// Layer label from [`classify_layer`].
    pub layer: &'static str,
    /// Spans attributed to the layer.
    pub spans: u64,
    /// Sum of span durations (children included).
    pub inclusive_us: u64,
    /// Sum of span durations minus direct children (never negative).
    pub self_us: u64,
}

/// Aggregated virtual time for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameTotal {
    /// The span name as recorded.
    pub name: String,
    /// Layer the name classifies into.
    pub layer: &'static str,
    /// Occurrences.
    pub count: u64,
    /// Sum of durations.
    pub inclusive_us: u64,
    /// Sum of self times.
    pub self_us: u64,
}

/// The folded profile of one trace.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Per-layer totals, sorted by self time descending (name ascending
    /// on ties, so the order is deterministic).
    pub layers: Vec<LayerTotal>,
    /// Per-span-name totals, same sort.
    pub names: Vec<NameTotal>,
    /// Total self time across every span (the flame graph's base width).
    pub total_self_us: u64,
}

/// Fold a span list (as returned by [`Tracer::spans`]) into a profile.
///
/// Open spans (no end) contribute zero duration — a deliberately
/// conservative choice that keeps the fold total, deterministic, and
/// free of "time travel" from spans that never closed. Self time is
/// clamped at zero when children overlap their parent's recorded
/// extent (possible when a parent was closed before a late child).
pub fn profile_spans(spans: &[SpanInfo]) -> Profile {
    let inclusive =
        |s: &SpanInfo| -> u64 { s.end.map(|e| e.since(s.start).as_micros()).unwrap_or(0) };
    // Sum of direct children's inclusive time, indexed by parent span.
    let mut child_sum: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            *child_sum.entry(p.as_u64()).or_insert(0) += inclusive(s);
        }
    }

    let mut by_layer: BTreeMap<&'static str, LayerTotal> = BTreeMap::new();
    let mut by_name: BTreeMap<String, NameTotal> = BTreeMap::new();
    let mut total_self_us = 0u64;
    for s in spans {
        let inc = inclusive(s);
        let kids = child_sum.get(&s.id.as_u64()).copied().unwrap_or(0);
        let self_us = inc.saturating_sub(kids);
        total_self_us += self_us;
        let layer = classify_layer(&s.name);
        let l = by_layer.entry(layer).or_insert(LayerTotal {
            layer,
            spans: 0,
            inclusive_us: 0,
            self_us: 0,
        });
        l.spans += 1;
        l.inclusive_us += inc;
        l.self_us += self_us;
        let n = by_name.entry(s.name.clone()).or_insert(NameTotal {
            name: s.name.clone(),
            layer,
            count: 0,
            inclusive_us: 0,
            self_us: 0,
        });
        n.count += 1;
        n.inclusive_us += inc;
        n.self_us += self_us;
    }

    let mut layers: Vec<LayerTotal> = by_layer.into_values().collect();
    layers.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.layer.cmp(b.layer)));
    let mut names: Vec<NameTotal> = by_name.into_values().collect();
    names.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));

    Profile {
        layers,
        names,
        total_self_us,
    }
}

/// Convenience: profile everything a tracer recorded.
pub fn profile_tracer(tracer: &Tracer) -> Profile {
    profile_spans(&tracer.spans())
}

impl Profile {
    /// Render a flame-style "top" report: a per-layer table (self time,
    /// inclusive time, share-of-total bar) followed by the hottest span
    /// names. `max_names` bounds the second table. Integer math and
    /// fixed sort order keep the bytes stable run to run.
    pub fn render_top(&self, max_names: usize) -> String {
        const BAR: u64 = 24;
        let total = self.total_self_us.max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>12} {:>12} {:>6}  flame",
            "layer", "spans", "self", "incl", "self%"
        );
        for l in &self.layers {
            let pct_x10 = l.self_us * 1000 / total;
            let fill = (l.self_us * BAR / total).min(BAR);
            let mut bar = String::with_capacity(BAR as usize);
            for i in 0..BAR {
                bar.push(if i < fill { '#' } else { '.' });
            }
            let _ = writeln!(
                out,
                "{:<10} {:>7} {:>12} {:>12} {:>4}.{}%  |{}|",
                l.layer,
                l.spans,
                fmt_us(l.self_us),
                fmt_us(l.inclusive_us),
                pct_x10 / 10,
                pct_x10 % 10,
                bar,
            );
        }
        let _ = writeln!(out, "top spans by self time:");
        for n in self.names.iter().take(max_names) {
            let pct_x10 = n.self_us * 1000 / total;
            let _ = writeln!(
                out,
                "  {:>12} {:>12} x{:<6} {:>4}.{}%  {} [{}]",
                fmt_us(n.self_us),
                fmt_us(n.inclusive_us),
                n.count,
                pct_x10 / 10,
                pct_x10 % 10,
                n.name,
                n.layer,
            );
        }
        out
    }
}

/// Microseconds as fixed-point milliseconds (integer math only).
fn fmt_us(us: u64) -> String {
    format!("{}.{:03}ms", us / 1000, us % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn classifier_covers_the_stack_conventions() {
        assert_eq!(classify_layer("net.uplink"), "atm");
        assert_eq!(classify_layer("db.request get_content"), "db");
        assert_eq!(classify_layer("server0.serve get_content"), "db");
        assert_eq!(classify_layer("attempt 2"), "db");
        assert_eq!(classify_layer("wal.replay"), "db");
        assert_eq!(classify_layer("replica.resync"), "db");
        assert_eq!(classify_layer("cod.prefetch"), "navigator");
        assert_eq!(classify_layer("mheg.run"), "mheg");
        assert_eq!(classify_layer("presentation.decode"), "mheg");
        assert_eq!(classify_layer("mystery"), "other");
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let tr = Tracer::new();
        let root = tr.root_span("cod.session", t(0));
        let req = tr.child(root, "db.request get_content", t(10));
        let up = tr.child(req, "net.uplink", t(10));
        tr.end(up, t(30));
        let down = tr.child(req, "net.downlink", t(40));
        tr.end(down, t(70));
        tr.end(req, t(80));
        tr.end(root, t(100));
        let p = profile_tracer(&tr);
        // root: 100 incl, 100-70=30 self (navigator).
        // req:  70 incl, 70-(20+30)=20 self (db).
        // net:  20+30 incl and self (atm).
        let get = |layer: &str| p.layers.iter().find(|l| l.layer == layer).unwrap();
        assert_eq!(get("navigator").inclusive_us, 100_000);
        assert_eq!(get("navigator").self_us, 30_000);
        assert_eq!(get("db").inclusive_us, 70_000);
        assert_eq!(get("db").self_us, 20_000);
        assert_eq!(get("atm").inclusive_us, 50_000);
        assert_eq!(get("atm").self_us, 50_000);
        assert_eq!(p.total_self_us, 100_000, "self times tile the root");
    }

    #[test]
    fn open_spans_and_overlapping_children_stay_sane() {
        let tr = Tracer::new();
        let root = tr.root_span("cod.session", t(0));
        // Child outlives the recorded parent extent.
        let late = tr.child(root, "net.uplink", t(5));
        tr.end(late, t(50));
        tr.end(root, t(20));
        let open = tr.root_span("db.request hang", t(0));
        let _ = open;
        let p = profile_tracer(&tr);
        let nav = p.layers.iter().find(|l| l.layer == "navigator").unwrap();
        assert_eq!(nav.self_us, 0, "clamped, not negative");
        let db = p.layers.iter().find(|l| l.layer == "db").unwrap();
        assert_eq!(db.inclusive_us, 0, "open span contributes nothing");
    }

    #[test]
    fn render_top_is_deterministic_and_ordered_by_self() {
        let tr = Tracer::new();
        let root = tr.root_span("cod.session", t(0));
        let a = tr.child(root, "net.uplink", t(0));
        tr.end(a, t(60));
        let b = tr.child(root, "mheg.run", t(60));
        tr.end(b, t(70));
        tr.end(root, t(100));
        let p = profile_tracer(&tr);
        assert_eq!(p.layers[0].layer, "atm", "most self time first");
        let r1 = p.render_top(8);
        let r2 = profile_tracer(&tr).render_top(8);
        assert_eq!(r1, r2);
        assert!(r1.contains("top spans by self time:"), "{r1}");
        assert!(r1.contains("net.uplink [atm]"), "{r1}");
        let first = r1.lines().next().unwrap();
        assert!(
            first.contains("layer") && first.contains("self%"),
            "{first}"
        );
    }
}
