//! The future event list and the simulation executor.
//!
//! MITS experiments (network delivery, client-server scalability, facilitator
//! queueing) are all event-driven: "cell arrives at switch", "server finishes
//! request", "student clicks choice1". Events are closures over a mutable
//! world `W`; during execution they receive a [`Scheduler`] handle to post
//! follow-up events. Simultaneous events run in the order they were
//! scheduled (FIFO tie-break on a monotonically increasing sequence number),
//! which keeps runs bit-for-bit deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A boxed event callback: receives the world and a scheduler for follow-ups.
pub type Event<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    run: Event<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // entry is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of pending events.
pub struct EventQueue<W> {
    heap: BinaryHeap<Entry<W>>,
    next_seq: u64,
}

impl<W> Default for EventQueue<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> EventQueue<W> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to run at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event<W>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            run: event,
        });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event<W>)> {
        self.heap.pop().map(|e| (e.at, e.run))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Handle given to running events so they can schedule follow-up work.
///
/// Also exposes the current virtual time, so events do not need to close
/// over it.
pub struct Scheduler<W> {
    now: SimTime,
    pending: Vec<(SimTime, Event<W>)>,
}

impl<W> Scheduler<W> {
    /// Current virtual time (the timestamp of the running event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — a DES must never travel backwards.
    pub fn at(&mut self, at: SimTime, event: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        self.pending.push((at, Box::new(event)));
    }

    /// Schedule `event` after a delay from now.
    pub fn after(
        &mut self,
        delay: crate::time::SimDuration,
        event: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        let at = self.now + delay;
        self.pending.push((at, Box::new(event)));
    }
}

/// A complete simulation: a world, a clock, and a future event list.
pub struct Simulation<W> {
    world: W,
    now: SimTime,
    queue: EventQueue<W>,
    executed: u64,
}

impl<W> Simulation<W> {
    /// Create a simulation owning `world`, with the clock at zero.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedule an event at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock.
    pub fn schedule(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        assert!(at >= self.now, "event scheduled in the past");
        self.queue.push(at, Box::new(event));
    }

    /// Schedule an event after `delay` from the current clock.
    pub fn schedule_after(
        &mut self,
        delay: crate::time::SimDuration,
        event: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        let at = self.now + delay;
        self.queue.push(at, Box::new(event));
    }

    /// Run until the event list is empty. Returns the final clock value.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run until the event list is empty or the next event is after
    /// `deadline`. Events *at* the deadline still run. Returns the clock.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked entry vanished");
            self.now = at;
            let mut sched = Scheduler {
                now: at,
                pending: Vec::new(),
            };
            event(&mut self.world, &mut sched);
            self.executed += 1;
            for (t, e) in sched.pending {
                self.queue.push(t, e);
            }
        }
        // If we stopped on the deadline with events remaining, advance the
        // clock to the deadline so repeated run_until calls observe
        // monotonically increasing time.
        if self.queue.peek_time().is_some() && deadline != SimTime::MAX && self.now < deadline {
            self.now = deadline;
        }
        self.now
    }

    /// Run exactly one event, if any. Returns its timestamp.
    pub fn step(&mut self) -> Option<SimTime> {
        let (at, event) = self.queue.pop()?;
        self.now = at;
        let mut sched = Scheduler {
            now: at,
            pending: Vec::new(),
        };
        event(&mut self.world, &mut sched);
        self.executed += 1;
        for (t, e) in sched.pending {
            self.queue.push(t, e);
        }
        Some(at)
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for &t in &[30u64, 10, 20] {
            sim.schedule(SimTime::from_micros(t), move |w: &mut Vec<u64>, _| {
                w.push(t)
            });
        }
        sim.run();
        assert_eq!(*sim.world(), vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        for i in 0..100u32 {
            sim.schedule(SimTime::from_micros(5), move |w: &mut Vec<u32>, _| {
                w.push(i)
            });
        }
        sim.run();
        assert_eq!(*sim.world(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_followups() {
        // Chain: event at t schedules another at t+1, five deep.
        let mut sim = Simulation::new(Vec::<u64>::new());
        fn chain(depth: u32) -> impl FnOnce(&mut Vec<u64>, &mut Scheduler<Vec<u64>>) {
            move |w, s| {
                w.push(s.now().as_micros());
                if depth > 0 {
                    s.after(SimDuration::from_micros(1), chain(depth - 1));
                }
            }
        }
        sim.schedule(SimTime::ZERO, chain(4));
        let end = sim.run();
        assert_eq!(*sim.world(), vec![0, 1, 2, 3, 4]);
        assert_eq!(end, SimTime::from_micros(4));
        assert_eq!(sim.executed(), 5);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(0u32);
        sim.schedule(SimTime::from_micros(10), |w: &mut u32, _| *w += 1);
        sim.schedule(SimTime::from_micros(20), |w: &mut u32, _| *w += 1);
        sim.schedule(SimTime::from_micros(30), |w: &mut u32, _| *w += 1);
        let t = sim.run_until(SimTime::from_micros(20));
        assert_eq!(*sim.world(), 2, "events at and before deadline ran");
        assert_eq!(t, SimTime::from_micros(20));
        assert_eq!(sim.pending(), 1);
        sim.run();
        assert_eq!(*sim.world(), 3);
    }

    #[test]
    fn step_runs_single_event() {
        let mut sim = Simulation::new(0u32);
        sim.schedule(SimTime::from_micros(1), |w: &mut u32, _| *w += 1);
        sim.schedule(SimTime::from_micros(2), |w: &mut u32, _| *w += 10);
        assert_eq!(sim.step(), Some(SimTime::from_micros(1)));
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.step(), Some(SimTime::from_micros(2)));
        assert_eq!(*sim.world(), 11);
        assert_eq!(sim.step(), None);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new(());
        sim.schedule(SimTime::from_micros(10), |_, s| {
            // now = 10; scheduling at 5 must panic.
            s.at(SimTime::from_micros(5), |_, _| {});
        });
        sim.run();
    }

    #[test]
    fn clock_is_monotone_across_run_until_calls() {
        let mut sim = Simulation::new(());
        sim.schedule(SimTime::from_micros(100), |_, _| {});
        sim.run_until(SimTime::from_micros(50));
        assert_eq!(sim.now(), SimTime::from_micros(50));
        sim.run_until(SimTime::from_micros(150));
        assert_eq!(sim.now(), SimTime::from_micros(100), "clock at last event");
    }
}
