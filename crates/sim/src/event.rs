//! The future event list and the simulation executor.
//!
//! MITS experiments (network delivery, client-server scalability, facilitator
//! queueing) are all event-driven: "cell arrives at switch", "server finishes
//! request", "student clicks choice1". Events are closures over a mutable
//! world `W`; during execution they receive a [`Scheduler`] handle to post
//! follow-up events. Simultaneous events run in the order they were
//! scheduled (FIFO tie-break on a monotonically increasing sequence number),
//! which keeps runs bit-for-bit deterministic.
//!
//! ## The timing wheel
//!
//! [`EventQueue`] is a four-level hierarchical timing wheel rather than a
//! binary heap. Each level has 256 slots; level `l` buckets events by bits
//! `8l..8(l+1)` of their microsecond timestamp, so together the wheel spans
//! a 2³² µs (~71 min) horizon with O(1) insert and O(1) amortized extract
//! — no `log n` sift and no per-operation comparisons against boxed
//! closures. Events beyond the horizon wait in a `BTreeMap` overflow and
//! migrate into the wheel when the clock reaches their epoch. Nodes live in
//! a slab arena threaded into per-slot intrusive FIFO lists; slot occupancy
//! is tracked in 256-bit bitmaps scanned with `trailing_zeros`. Slots are
//! cascaded to lower levels strictly in list order, which preserves the
//! exact (time, seq) extraction order of the original heap — golden traces
//! are byte-identical across the swap.

use crate::time::SimTime;
use std::collections::BTreeMap;

/// A boxed event callback: receives the world and a scheduler for follow-ups.
pub type Event<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

const NIL: u32 = u32::MAX;
const SLOTS: usize = 256;
const LEVELS: usize = 4;

/// Arena node: timestamp, FIFO tie-break, intrusive slot-list link, payload.
struct Node<W> {
    at: u64,
    seq: u64,
    next: u32,
    run: Option<Event<W>>,
}

/// One wheel level: 256 intrusive FIFO lists plus an occupancy bitmap.
struct Level {
    head: [u32; SLOTS],
    tail: [u32; SLOTS],
    bits: [u64; SLOTS / 64],
}

impl Level {
    fn new() -> Self {
        Level {
            head: [NIL; SLOTS],
            tail: [NIL; SLOTS],
            bits: [0; SLOTS / 64],
        }
    }

    /// Lowest occupied slot index `>= from`, if any.
    fn first_set(&self, from: usize) -> Option<usize> {
        let mut word = from / 64;
        let mut mask = !0u64 << (from % 64);
        while word < SLOTS / 64 {
            let b = self.bits[word] & mask;
            if b != 0 {
                return Some(word * 64 + b.trailing_zeros() as usize);
            }
            word += 1;
            mask = !0;
        }
        None
    }
}

/// A time-ordered queue of pending events.
///
/// Extraction order is exactly ascending `(time, seq)` where `seq` is the
/// push order — identical to the binary-heap implementation it replaced.
pub struct EventQueue<W> {
    nodes: Vec<Node<W>>,
    free: Vec<u32>,
    levels: [Level; LEVELS],
    /// Events beyond the 2³² µs wheel horizon, keyed by (time, seq).
    overflow: BTreeMap<(u64, u64), u32>,
    /// Events pushed with a timestamp before the wheel cursor (possible only
    /// through direct `EventQueue` use — `Simulation` forbids it).
    overdue: BTreeMap<(u64, u64), u32>,
    /// Wheel cursor: no event in the wheel levels is earlier than this.
    cur: u64,
    /// Cached earliest wheel-resident timestamp (excludes overflow/overdue).
    wheel_min: Option<u64>,
    len: usize,
    next_seq: u64,
}

impl<W> Default for EventQueue<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> EventQueue<W> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            nodes: Vec::new(),
            free: Vec::new(),
            levels: [Level::new(), Level::new(), Level::new(), Level::new()],
            overflow: BTreeMap::new(),
            overdue: BTreeMap::new(),
            cur: 0,
            wheel_min: None,
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedule `event` to run at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event<W>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.alloc(at.as_micros(), seq, event);
        self.place(idx);
        self.len += 1;
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event<W>)> {
        // Overdue events are strictly earlier than the wheel cursor, and
        // everything in the wheel is at or after it.
        if let Some((_, idx)) = self.overdue.pop_first() {
            return Some(self.detach(idx));
        }
        self.settle();
        let min = self.wheel_min?;
        let slot = (min & 0xFF) as usize;
        let idx = self.pop_slot_head(slot);
        self.cur = min;
        let out = self.detach(idx);
        self.settle();
        Some(out)
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut best = self.wheel_min;
        if let Some((&(t, _), _)) = self.overflow.first_key_value() {
            best = Some(best.map_or(t, |b| b.min(t)));
        }
        if let Some((&(t, _), _)) = self.overdue.first_key_value() {
            best = Some(best.map_or(t, |b| b.min(t)));
        }
        best.map(SimTime::from_micros)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, at: u64, seq: u64, run: Event<W>) -> u32 {
        let node = Node {
            at,
            seq,
            next: NIL,
            run: Some(run),
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Remove a node from the arena, returning its timestamp and callback.
    fn detach(&mut self, idx: u32) -> (SimTime, Event<W>) {
        let node = &mut self.nodes[idx as usize];
        debug_assert_eq!(node.next, NIL);
        let at = node.at;
        let run = node.run.take().expect("event node already detached");
        self.free.push(idx);
        self.len -= 1;
        (SimTime::from_micros(at), run)
    }

    /// File a node into the level (or map) its distance from the cursor
    /// selects. Within a slot, nodes are appended FIFO, so equal-time
    /// events keep push order.
    fn place(&mut self, idx: u32) {
        let t = self.nodes[idx as usize].at;
        let seq = self.nodes[idx as usize].seq;
        if t < self.cur {
            self.overdue.insert((t, seq), idx);
            return;
        }
        // Shared high bits decide the level: events whose timestamp agrees
        // with the cursor down to bit 8(l+1) belong on level l.
        let d = t ^ self.cur;
        let level = if d < 1 << 8 {
            0
        } else if d < 1 << 16 {
            1
        } else if d < 1 << 24 {
            2
        } else if d < 1 << 32 {
            3
        } else {
            self.overflow.insert((t, seq), idx);
            return;
        };
        let slot = ((t >> (8 * level)) & 0xFF) as usize;
        let lv = &mut self.levels[level];
        if lv.head[slot] == NIL {
            lv.head[slot] = idx;
            lv.bits[slot / 64] |= 1 << (slot % 64);
        } else {
            self.nodes[lv.tail[slot] as usize].next = idx;
        }
        lv.tail[slot] = idx;
        self.wheel_min = Some(self.wheel_min.map_or(t, |m| m.min(t)));
    }

    /// Unlink and return the head node of a level-0 slot.
    fn pop_slot_head(&mut self, slot: usize) -> u32 {
        let lv = &mut self.levels[0];
        let idx = lv.head[slot];
        debug_assert_ne!(idx, NIL, "pop from empty slot");
        let next = self.nodes[idx as usize].next;
        self.nodes[idx as usize].next = NIL;
        lv.head[slot] = next;
        if next == NIL {
            lv.tail[slot] = NIL;
            lv.bits[slot / 64] &= !(1 << (slot % 64));
        }
        idx
    }

    /// Detach an entire slot list, clearing its occupancy bit.
    fn take_slot(&mut self, level: usize, slot: usize) -> u32 {
        let lv = &mut self.levels[level];
        let head = lv.head[slot];
        lv.head[slot] = NIL;
        lv.tail[slot] = NIL;
        lv.bits[slot / 64] &= !(1 << (slot % 64));
        head
    }

    /// Cascade until the earliest wheel event sits in level 0 (caching its
    /// time in `wheel_min`), migrating overflow epochs as the cursor
    /// reaches them. Leaves `wheel_min` as `None` only when the wheel and
    /// overflow are both empty.
    fn settle(&mut self) {
        'outer: loop {
            // Earliest level-0 slot in the current 256 µs window is the
            // global wheel minimum: every higher-level event differs from
            // the cursor in some bit above bit 7, hence lies beyond it.
            if let Some(slot) = self.levels[0].first_set((self.cur & 0xFF) as usize) {
                self.wheel_min = Some((self.cur & !0xFF) | slot as u64);
                return;
            }
            for level in 1..LEVELS {
                let shift = 8 * level;
                let from = ((self.cur >> shift) & 0xFF) as usize;
                if let Some(slot) = self.levels[level].first_set(from) {
                    // Advance the cursor to the slot's window and deal its
                    // list (in FIFO order) down to lower levels.
                    let span_mask = (1u64 << (8 * (level + 1))) - 1;
                    let slot_start = (self.cur & !span_mask) | ((slot as u64) << shift);
                    debug_assert!(slot_start >= self.cur, "cascade moved cursor backwards");
                    self.cur = self.cur.max(slot_start);
                    let mut walk = self.take_slot(level, slot);
                    while walk != NIL {
                        let next = self.nodes[walk as usize].next;
                        self.nodes[walk as usize].next = NIL;
                        self.place(walk);
                        walk = next;
                    }
                    continue 'outer;
                }
            }
            // Wheel empty: pull the next overflow epoch into it, if any.
            if let Some((&(t, _), _)) = self.overflow.first_key_value() {
                self.cur = t;
                while let Some((&(t2, _), _)) = self.overflow.first_key_value() {
                    if t2 >> 32 != self.cur >> 32 {
                        break;
                    }
                    let (_, idx) = self.overflow.pop_first().expect("checked non-empty");
                    self.place(idx);
                }
                continue;
            }
            self.wheel_min = None;
            return;
        }
    }
}

/// Handle given to running events so they can schedule follow-up work.
///
/// Also exposes the current virtual time, so events do not need to close
/// over it.
pub struct Scheduler<W> {
    now: SimTime,
    pending: Vec<(SimTime, Event<W>)>,
}

impl<W> Scheduler<W> {
    /// Current virtual time (the timestamp of the running event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — a DES must never travel backwards.
    pub fn at(&mut self, at: SimTime, event: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        self.pending.push((at, Box::new(event)));
    }

    /// Schedule `event` after a delay from now.
    pub fn after(
        &mut self,
        delay: crate::time::SimDuration,
        event: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        let at = self.now + delay;
        self.pending.push((at, Box::new(event)));
    }
}

/// A complete simulation: a world, a clock, and a future event list.
pub struct Simulation<W> {
    world: W,
    now: SimTime,
    queue: EventQueue<W>,
    executed: u64,
}

impl<W> Simulation<W> {
    /// Create a simulation owning `world`, with the clock at zero.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedule an event at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock.
    pub fn schedule(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        assert!(at >= self.now, "event scheduled in the past");
        self.queue.push(at, Box::new(event));
    }

    /// Schedule an event after `delay` from the current clock.
    pub fn schedule_after(
        &mut self,
        delay: crate::time::SimDuration,
        event: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        let at = self.now + delay;
        self.queue.push(at, Box::new(event));
    }

    /// Run until the event list is empty. Returns the final clock value.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run until the event list is empty or the next event is after
    /// `deadline`. Events *at* the deadline still run. Returns the clock.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked entry vanished");
            self.now = at;
            let mut sched = Scheduler {
                now: at,
                pending: Vec::new(),
            };
            event(&mut self.world, &mut sched);
            self.executed += 1;
            for (t, e) in sched.pending {
                self.queue.push(t, e);
            }
        }
        // If we stopped on the deadline with events remaining, advance the
        // clock to the deadline so repeated run_until calls observe
        // monotonically increasing time.
        if self.queue.peek_time().is_some() && deadline != SimTime::MAX && self.now < deadline {
            self.now = deadline;
        }
        self.now
    }

    /// Run exactly one event, if any. Returns its timestamp.
    pub fn step(&mut self) -> Option<SimTime> {
        let (at, event) = self.queue.pop()?;
        self.now = at;
        let mut sched = Scheduler {
            now: at,
            pending: Vec::new(),
        };
        event(&mut self.world, &mut sched);
        self.executed += 1;
        for (t, e) in sched.pending {
            self.queue.push(t, e);
        }
        Some(at)
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for &t in &[30u64, 10, 20] {
            sim.schedule(SimTime::from_micros(t), move |w: &mut Vec<u64>, _| {
                w.push(t)
            });
        }
        sim.run();
        assert_eq!(*sim.world(), vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        for i in 0..100u32 {
            sim.schedule(SimTime::from_micros(5), move |w: &mut Vec<u32>, _| {
                w.push(i)
            });
        }
        sim.run();
        assert_eq!(*sim.world(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_followups() {
        // Chain: event at t schedules another at t+1, five deep.
        let mut sim = Simulation::new(Vec::<u64>::new());
        fn chain(depth: u32) -> impl FnOnce(&mut Vec<u64>, &mut Scheduler<Vec<u64>>) {
            move |w, s| {
                w.push(s.now().as_micros());
                if depth > 0 {
                    s.after(SimDuration::from_micros(1), chain(depth - 1));
                }
            }
        }
        sim.schedule(SimTime::ZERO, chain(4));
        let end = sim.run();
        assert_eq!(*sim.world(), vec![0, 1, 2, 3, 4]);
        assert_eq!(end, SimTime::from_micros(4));
        assert_eq!(sim.executed(), 5);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(0u32);
        sim.schedule(SimTime::from_micros(10), |w: &mut u32, _| *w += 1);
        sim.schedule(SimTime::from_micros(20), |w: &mut u32, _| *w += 1);
        sim.schedule(SimTime::from_micros(30), |w: &mut u32, _| *w += 1);
        let t = sim.run_until(SimTime::from_micros(20));
        assert_eq!(*sim.world(), 2, "events at and before deadline ran");
        assert_eq!(t, SimTime::from_micros(20));
        assert_eq!(sim.pending(), 1);
        sim.run();
        assert_eq!(*sim.world(), 3);
    }

    #[test]
    fn step_runs_single_event() {
        let mut sim = Simulation::new(0u32);
        sim.schedule(SimTime::from_micros(1), |w: &mut u32, _| *w += 1);
        sim.schedule(SimTime::from_micros(2), |w: &mut u32, _| *w += 10);
        assert_eq!(sim.step(), Some(SimTime::from_micros(1)));
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.step(), Some(SimTime::from_micros(2)));
        assert_eq!(*sim.world(), 11);
        assert_eq!(sim.step(), None);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new(());
        sim.schedule(SimTime::from_micros(10), |_, s| {
            // now = 10; scheduling at 5 must panic.
            s.at(SimTime::from_micros(5), |_, _| {});
        });
        sim.run();
    }

    #[test]
    fn clock_is_monotone_across_run_until_calls() {
        let mut sim = Simulation::new(());
        sim.schedule(SimTime::from_micros(100), |_, _| {});
        sim.run_until(SimTime::from_micros(50));
        assert_eq!(sim.now(), SimTime::from_micros(50));
        sim.run_until(SimTime::from_micros(150));
        assert_eq!(sim.now(), SimTime::from_micros(100), "clock at last event");
    }

    #[test]
    fn order_preserved_across_level_boundaries() {
        // Times straddling every wheel-level boundary, plus duplicates; the
        // pop order must be ascending time with FIFO among equals.
        let times: Vec<u64> = vec![
            300,
            255,
            256,
            257,
            300, // duplicate, pushed later — must pop after the first 300
            65_535,
            65_536,
            65_537,
            1 << 24,
            (1 << 24) - 1,
            (1 << 32) + 5, // beyond the wheel horizon → overflow map
            (1 << 32) + 5,
            1,
            0,
        ];
        let mut q: EventQueue<Vec<usize>> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), Box::new(move |w, _| w.push(i)));
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, i)| (t, i));
        let mut got = Vec::new();
        let mut last = 0u64;
        while let Some((at, _ev)) = q.pop() {
            assert!(at.as_micros() >= last, "time went backwards");
            last = at.as_micros();
            got.push(at.as_micros());
        }
        assert_eq!(
            got,
            expect.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            "pop times ascending with ties in push order"
        );
    }

    #[test]
    fn late_push_of_equal_time_pops_after_earlier_push() {
        // An event far ahead lands on a high wheel level; after the cursor
        // advances, a second event at the *same* time goes straight to level
        // 0. The earlier push must still pop first.
        let mut q: EventQueue<Vec<&'static str>> = EventQueue::new();
        q.push(SimTime::from_micros(300), Box::new(|w, _| w.push("early")));
        q.push(SimTime::from_micros(290), Box::new(|w, _| w.push("pre")));
        // Pop the 290 event: the cursor moves into 300's window.
        let (at, _) = q.pop().unwrap();
        assert_eq!(at.as_micros(), 290);
        q.push(SimTime::from_micros(300), Box::new(|w, _| w.push("late")));
        let mut world = Vec::new();
        while let Some((at2, ev)) = q.pop() {
            assert_eq!(at2.as_micros(), 300);
            let mut sched = Scheduler {
                now: at2,
                pending: Vec::new(),
            };
            ev(&mut world, &mut sched);
        }
        assert_eq!(world, vec!["early", "late"]);
    }

    #[test]
    fn wheel_matches_reference_order_under_random_churn() {
        use crate::rng::SimRng;
        // Interleave pushes and pops; verify extraction matches a stable
        // sort by (time, push-seq) — the binary-heap contract.
        let mut rng = SimRng::seed_from_u64(0xC0FF_EE00);
        let mut q: EventQueue<()> = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (time, seq) pending
        let mut popped: Vec<u64> = Vec::new();
        let mut expected: Vec<u64> = Vec::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..5_000 {
            if rng.chance(0.6) || reference.is_empty() {
                // Push at now + skewed delta, crossing all level widths.
                let delta = match rng.below(5) {
                    0 => rng.below(64),
                    1 => rng.below(1 << 10),
                    2 => rng.below(1 << 18),
                    3 => rng.below(1 << 26),
                    _ => rng.below(1u64 << 34),
                };
                let t = now + delta;
                q.push(SimTime::from_micros(t), Box::new(|_, _| {}));
                reference.push((t, seq));
                seq += 1;
            } else {
                let (at, _) = q.pop().expect("reference says non-empty");
                popped.push(at.as_micros());
                let best = reference
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &k)| k)
                    .map(|(i, _)| i)
                    .expect("non-empty");
                expected.push(reference.remove(best).0);
                now = at.as_micros();
            }
        }
        while let Some((at, _)) = q.pop() {
            popped.push(at.as_micros());
        }
        reference.sort_unstable();
        expected.extend(reference.iter().map(|&(t, _)| t));
        assert_eq!(popped, expected);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
