//! Declarative service-level objectives evaluated against a metrics
//! snapshot.
//!
//! A campus run produces one merged [`MetricsSnapshot`] — thousands of
//! counters and histograms. An operator does not read those raw; they
//! ask four questions: is the p99 session under budget, is the retry
//! rate sane, is the database shedding load, did anyone's playout
//! degrade? An [`Slo`] names one such question as data — an input
//! expression over the snapshot plus warn/breach thresholds — and
//! [`SloReport::evaluate`] turns a set of them into machine-readable
//! pass/warn/breach verdicts.
//!
//! Objectives are *upper bounds* (less is better) by default, matching
//! the USE-style latency/error/saturation checks the campus needs;
//! [`Slo::lower`] declares the dual (more is better) for quantities
//! like a cache hit rate that must stay *above* a floor.
//! Evaluation is pure and deterministic: the same snapshot and the same
//! objective list always render the same report bytes, so the JSON
//! output can be asserted in CI the same way trace goldens are.

use crate::registry::{write_json_f64, MetricsSnapshot};
use crate::trace::json_escape;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What a single objective measures, resolved against the merged
/// snapshot (plus a side table of externally computed values for
/// quantities the snapshot cannot hold, such as a cross-shard session
/// percentile).
#[derive(Debug, Clone)]
pub enum SloInput {
    /// A raw counter value.
    Counter(String),
    /// A raw gauge value.
    Gauge(String),
    /// A quantile (0.0..=1.0) of a histogram.
    HistogramQuantile {
        /// Histogram metric name.
        name: String,
        /// Quantile to read, e.g. `0.99`.
        q: f64,
    },
    /// `numerator / denominator` over two counters; `0/0` reads as 0.0
    /// (no events means no violation, not a division error).
    Ratio {
        /// Counter divided.
        numerator: String,
        /// Counter divided by.
        denominator: String,
    },
    /// A named externally computed value (e.g. `session.p99_secs`).
    Value(String),
}

impl SloInput {
    /// Resolve the input to a number. Metrics missing from the snapshot
    /// read as 0.0: a layer that never retried simply never exported a
    /// non-zero retry counter, and absence must not manufacture a
    /// breach.
    pub fn resolve(&self, snapshot: &MetricsSnapshot, values: &BTreeMap<String, f64>) -> f64 {
        match self {
            SloInput::Counter(name) => snapshot.counter(name).unwrap_or(0) as f64,
            SloInput::Gauge(name) => snapshot.gauge(name).unwrap_or(0.0),
            SloInput::HistogramQuantile { name, q } => snapshot
                .histogram(name)
                .and_then(|h| h.quantile(*q))
                .unwrap_or(0.0),
            SloInput::Ratio {
                numerator,
                denominator,
            } => {
                let d = snapshot.counter(denominator).unwrap_or(0);
                if d == 0 {
                    0.0
                } else {
                    snapshot.counter(numerator).unwrap_or(0) as f64 / d as f64
                }
            }
            SloInput::Value(name) => values.get(name).copied().unwrap_or(0.0),
        }
    }
}

/// Which side of its thresholds an objective must stay on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// Less is better: crossing above `warn`/`breach` degrades.
    Upper,
    /// More is better: falling below `warn`/`breach` degrades.
    Lower,
}

/// One declarative objective: keep `input` on the right side of `warn`
/// (ideally) and never past `breach`.
#[derive(Debug, Clone)]
pub struct Slo {
    /// Objective name, e.g. `session_p99_wall`.
    pub name: String,
    /// What to measure.
    pub input: SloInput,
    /// Bound direction.
    pub kind: SloKind,
    /// Crossing this (strictly) is a warning.
    pub warn: f64,
    /// Crossing this (strictly) is a breach.
    pub breach: f64,
}

impl Slo {
    /// An upper-bound objective (`observed <= warn` passes,
    /// `observed <= breach` warns, above that breaches).
    pub fn upper(name: &str, input: SloInput, warn: f64, breach: f64) -> Slo {
        debug_assert!(warn <= breach, "warn threshold above breach threshold");
        Slo {
            name: name.to_string(),
            input,
            kind: SloKind::Upper,
            warn,
            breach,
        }
    }

    /// A lower-bound objective (`observed >= warn` passes,
    /// `observed >= breach` warns, below that breaches) — for
    /// quantities like a cache hit rate that must not *fall*.
    pub fn lower(name: &str, input: SloInput, warn: f64, breach: f64) -> Slo {
        debug_assert!(warn >= breach, "warn floor below breach floor");
        Slo {
            name: name.to_string(),
            input,
            kind: SloKind::Lower,
            warn,
            breach,
        }
    }

    /// Evaluate this objective against a snapshot and side values.
    pub fn evaluate(
        &self,
        snapshot: &MetricsSnapshot,
        values: &BTreeMap<String, f64>,
    ) -> SloOutcome {
        let observed = self.input.resolve(snapshot, values);
        // NaN compares false everywhere, which would silently pass — an
        // undefined measurement is a breach, not a clean bill.
        let crossed = |threshold: f64| match self.kind {
            SloKind::Upper => observed > threshold,
            SloKind::Lower => observed < threshold,
        };
        let verdict = if observed.is_nan() || crossed(self.breach) {
            Verdict::Breach
        } else if crossed(self.warn) {
            Verdict::Warn
        } else {
            Verdict::Pass
        };
        SloOutcome {
            name: self.name.clone(),
            observed,
            warn: self.warn,
            breach: self.breach,
            verdict,
        }
    }
}

/// Evaluation result tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// At or under the warn threshold.
    Pass,
    /// Over warn, at or under breach.
    Warn,
    /// Over breach (or undefined).
    Breach,
}

impl Verdict {
    /// Stable lowercase label for JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Warn => "warn",
            Verdict::Breach => "breach",
        }
    }
}

/// One evaluated objective.
#[derive(Debug, Clone)]
pub struct SloOutcome {
    /// Objective name.
    pub name: String,
    /// The measured value.
    pub observed: f64,
    /// Warn threshold it was judged against.
    pub warn: f64,
    /// Breach threshold it was judged against.
    pub breach: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// All objectives evaluated against one snapshot, in declaration order.
#[derive(Debug, Clone, Default)]
pub struct SloReport {
    /// Per-objective outcomes, in the order the objectives were given.
    pub outcomes: Vec<SloOutcome>,
}

impl SloReport {
    /// Evaluate every objective against `snapshot` (+ side `values`).
    pub fn evaluate(
        slos: &[Slo],
        snapshot: &MetricsSnapshot,
        values: &BTreeMap<String, f64>,
    ) -> SloReport {
        SloReport {
            outcomes: slos.iter().map(|s| s.evaluate(snapshot, values)).collect(),
        }
    }

    /// Number of warnings.
    pub fn warns(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.verdict == Verdict::Warn)
            .count()
    }

    /// Number of breaches.
    pub fn breaches(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.verdict == Verdict::Breach)
            .count()
    }

    /// Whether every objective passed or merely warned.
    pub fn healthy(&self) -> bool {
        self.breaches() == 0
    }

    /// Machine-readable JSON:
    /// `{"slos":[{"name":..,"observed":..,"warn":..,"breach":..,"verdict":".."}],"warns":N,"breaches":N}`.
    /// Deterministic byte for byte for a given report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"slos\":[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"observed\":", json_escape(&o.name));
            write_json_f64(&mut out, o.observed);
            out.push_str(",\"warn\":");
            write_json_f64(&mut out, o.warn);
            out.push_str(",\"breach\":");
            write_json_f64(&mut out, o.breach);
            let _ = write!(out, ",\"verdict\":\"{}\"}}", o.verdict.as_str());
        }
        let _ = write!(
            out,
            "],\"warns\":{},\"breaches\":{}}}",
            self.warns(),
            self.breaches()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.inc("client.retries", 5);
        reg.inc("client.attempts", 100);
        reg.inc("db.shed", 0);
        reg.inc("db.served", 40);
        reg.gauge_set("queue.depth", 3.0);
        for x in [1.0, 2.0, 3.0, 50.0] {
            reg.observe("lat", x, 0.0, 60.0, 600);
        }
        reg.snapshot()
    }

    #[test]
    fn inputs_resolve_against_snapshot_and_values() {
        let snap = snapshot();
        let mut values = BTreeMap::new();
        values.insert("session.p99_secs".to_string(), 4.5);
        assert_eq!(
            SloInput::Counter("client.retries".into()).resolve(&snap, &values),
            5.0
        );
        assert_eq!(
            SloInput::Gauge("queue.depth".into()).resolve(&snap, &values),
            3.0
        );
        let ratio = SloInput::Ratio {
            numerator: "client.retries".into(),
            denominator: "client.attempts".into(),
        }
        .resolve(&snap, &values);
        assert!((ratio - 0.05).abs() < 1e-12);
        assert_eq!(
            SloInput::Value("session.p99_secs".into()).resolve(&snap, &values),
            4.5
        );
        let p99 = SloInput::HistogramQuantile {
            name: "lat".into(),
            q: 0.99,
        }
        .resolve(&snap, &values);
        assert!(p99 > 3.0, "p99 {p99} reflects the 50s outlier");
    }

    #[test]
    fn missing_metrics_read_as_zero_not_breach() {
        let snap = MetricsSnapshot::new();
        let values = BTreeMap::new();
        let slo = Slo::upper("quiet", SloInput::Counter("nope".into()), 1.0, 2.0);
        assert_eq!(slo.evaluate(&snap, &values).verdict, Verdict::Pass);
        let ratio = Slo::upper(
            "zero_over_zero",
            SloInput::Ratio {
                numerator: "a".into(),
                denominator: "b".into(),
            },
            0.1,
            0.2,
        );
        assert_eq!(ratio.evaluate(&snap, &values).verdict, Verdict::Pass);
    }

    #[test]
    fn thresholds_tier_pass_warn_breach() {
        let snap = snapshot();
        let values = BTreeMap::new();
        let mk = |warn, breach| {
            Slo::upper(
                "retries",
                SloInput::Counter("client.retries".into()),
                warn,
                breach,
            )
            .evaluate(&snap, &values)
            .verdict
        };
        assert_eq!(mk(5.0, 10.0), Verdict::Pass, "at warn is still a pass");
        assert_eq!(mk(4.0, 10.0), Verdict::Warn);
        assert_eq!(mk(1.0, 4.0), Verdict::Breach);
    }

    #[test]
    fn lower_bound_tiers_invert() {
        let snap = snapshot();
        let values = BTreeMap::new();
        let mk = |warn, breach| {
            Slo::lower(
                "hit_rate_floor",
                SloInput::Counter("client.retries".into()), // reads 5
                warn,
                breach,
            )
            .evaluate(&snap, &values)
            .verdict
        };
        assert_eq!(mk(5.0, 2.0), Verdict::Pass, "at the warn floor passes");
        assert_eq!(mk(6.0, 2.0), Verdict::Warn, "below warn, above breach");
        assert_eq!(mk(10.0, 6.0), Verdict::Breach, "below the breach floor");
        // A missing metric reads 0.0, which for a lower bound *is* a
        // breach — silence cannot satisfy a floor.
        let missing = Slo::lower("floor", SloInput::Counter("nope".into()), 0.5, 0.1)
            .evaluate(&MetricsSnapshot::new(), &values);
        assert_eq!(missing.verdict, Verdict::Breach);
    }

    #[test]
    fn nan_observation_breaches() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("bad", f64::NAN);
        let slo = Slo::upper("bad", SloInput::Gauge("bad".into()), 1.0, 2.0);
        let out = slo.evaluate(&reg.snapshot(), &BTreeMap::new());
        assert_eq!(out.verdict, Verdict::Breach);
    }

    #[test]
    fn report_json_is_deterministic_and_machine_readable() {
        let snap = snapshot();
        let values = BTreeMap::new();
        let slos = vec![
            Slo::upper(
                "retry_rate",
                SloInput::Ratio {
                    numerator: "client.retries".into(),
                    denominator: "client.attempts".into(),
                },
                0.10,
                0.25,
            ),
            Slo::upper("shed", SloInput::Counter("db.shed".into()), 0.0, 5.0),
        ];
        let report = SloReport::evaluate(&slos, &snap, &values);
        assert_eq!(report.breaches(), 0);
        assert!(report.healthy());
        let json = report.to_json();
        assert_eq!(
            json,
            "{\"slos\":[{\"name\":\"retry_rate\",\"observed\":0.050000,\"warn\":0.100000,\
             \"breach\":0.250000,\"verdict\":\"pass\"},{\"name\":\"shed\",\"observed\":0.000000,\
             \"warn\":0.000000,\"breach\":5.000000,\"verdict\":\"pass\"}],\"warns\":0,\"breaches\":0}"
        );
        assert_eq!(json, report.to_json(), "stable bytes");
    }
}
