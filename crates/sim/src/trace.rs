//! Deterministic hierarchical tracing stamped with virtual time.
//!
//! The MITS evaluation needs to explain *where* a slow or degraded
//! playback spent its deadline: which query attempt died on the lossy
//! uplink, how long the server's service centre held a request, what a
//! restarted server replayed before it answered. This module provides
//! spans (named intervals with a parent) and events (named instants),
//! all stamped with [`SimTime`] — never a wall clock — so that **two
//! runs with the same seed produce byte-identical trace output**. A
//! trace is therefore usable as a regression witness: `scripts/check.sh`
//! diffs the example trace against a checked-in golden file.
//!
//! Span ids are assigned sequentially in creation order, which in a
//! deterministic simulation is itself deterministic. The id of a span
//! doubles as the trace context that rides the DB wire protocol
//! (`mits-db` reserves `0` for "no trace"), so the server side of a
//! request can parent its own spans under the client's request span —
//! client, network and server all share one process here, and one
//! [`Tracer`].
//!
//! Exports: [`Tracer::to_jsonl`] (one JSON object per line; spans in id
//! order, then events in record order) and [`Tracer::waterfall`] (a
//! text span-tree with offset/duration bars for one root span). JSON is
//! hand-written: the workspace deliberately vendors no JSON crate, and
//! the subset needed here — objects of strings and integers — is tiny.

use crate::time::SimTime;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::Arc;

/// Identifies one span in a [`Tracer`]. Ids start at 1; the raw value
/// `0` is reserved on the wire for "no trace context".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw id, as carried in protocol headers.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuild a span id from a wire value; `0` means no context.
    pub fn from_wire(raw: u64) -> Option<SpanId> {
        (raw != 0).then_some(SpanId(raw))
    }
}

/// A read-only copy of one span's record (introspection and tests).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanInfo {
    /// The span's id.
    pub id: SpanId,
    /// Parent span, if any.
    pub parent: Option<SpanId>,
    /// Span name.
    pub name: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant; `None` while the span is open.
    pub end: Option<SimTime>,
    /// Attributes in record order (export sorts and dedups them).
    pub attrs: Vec<(String, String)>,
}

struct SpanRec {
    parent: Option<u64>,
    name: String,
    start: SimTime,
    end: Option<SimTime>,
    attrs: Vec<(String, String)>,
}

struct EventRec {
    span: Option<u64>,
    name: String,
    at: SimTime,
    attrs: Vec<(String, String)>,
}

#[derive(Default)]
struct TraceBuf {
    spans: Vec<SpanRec>,
    events: Vec<EventRec>,
    /// Current-parent stack for implicit nesting (e.g. a Course-On-Demand
    /// stage pushes itself so the DB requests it triggers nest under it).
    stack: Vec<u64>,
}

/// A shared, cloneable collector of spans and events.
///
/// All mutation goes through a mutex, so one `Tracer` can be cloned into
/// every layer of the system (client, network pump, server, session)
/// without borrow gymnastics. The simulation is single-threaded, so the
/// lock is uncontended and ordering is deterministic.
#[derive(Clone, Default)]
pub struct Tracer {
    buf: Arc<Mutex<TraceBuf>>,
}

impl Tracer {
    /// An empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    fn push_span(&self, parent: Option<u64>, name: &str, at: SimTime) -> SpanId {
        let mut buf = self.buf.lock();
        buf.spans.push(SpanRec {
            parent,
            name: name.to_string(),
            start: at,
            end: None,
            attrs: Vec::new(),
        });
        SpanId(buf.spans.len() as u64)
    }

    /// Open a span nested under the current context (see
    /// [`Tracer::push_context`]), or at the root when no context is set.
    pub fn span(&self, name: &str, at: SimTime) -> SpanId {
        let parent = self.buf.lock().stack.last().copied();
        self.push_span(parent, name, at)
    }

    /// Open a span with an explicit parent.
    pub fn child(&self, parent: SpanId, name: &str, at: SimTime) -> SpanId {
        self.push_span(Some(parent.0), name, at)
    }

    /// Open a root span (no parent, regardless of context).
    pub fn root_span(&self, name: &str, at: SimTime) -> SpanId {
        self.push_span(None, name, at)
    }

    /// Close a span. Closing an already-closed span moves its end (the
    /// last close wins); spans never closed export with `"end_us":null`.
    pub fn end(&self, id: SpanId, at: SimTime) {
        let mut buf = self.buf.lock();
        if let Some(rec) = buf.spans.get_mut(id.0 as usize - 1) {
            rec.end = Some(at);
        }
    }

    /// Attach a string attribute to a span (appended; keys are sorted at
    /// export time, and a later duplicate key overrides an earlier one).
    pub fn attr(&self, id: SpanId, key: &str, value: &str) {
        let mut buf = self.buf.lock();
        if let Some(rec) = buf.spans.get_mut(id.0 as usize - 1) {
            rec.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Attach an integer attribute to a span.
    pub fn attr_u64(&self, id: SpanId, key: &str, value: u64) {
        self.attr(id, key, &value.to_string());
    }

    /// Record an instantaneous event, optionally tied to a span.
    pub fn event(&self, span: Option<SpanId>, name: &str, at: SimTime) {
        self.event_with(span, name, at, &[]);
    }

    /// Record an event carrying attributes.
    pub fn event_with(
        &self,
        span: Option<SpanId>,
        name: &str,
        at: SimTime,
        attrs: &[(&str, String)],
    ) {
        let mut buf = self.buf.lock();
        buf.events.push(EventRec {
            span: span.map(|s| s.0),
            name: name.to_string(),
            at,
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Push a span onto the context stack: spans opened with
    /// [`Tracer::span`] nest under it until the matching
    /// [`Tracer::pop_context`].
    pub fn push_context(&self, id: SpanId) {
        self.buf.lock().stack.push(id.0);
    }

    /// Pop the innermost context span.
    pub fn pop_context(&self) {
        self.buf.lock().stack.pop();
    }

    /// The current context span, if any.
    pub fn context(&self) -> Option<SpanId> {
        self.buf.lock().stack.last().map(|&id| SpanId(id))
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.buf.lock().spans.len()
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        self.buf.lock().events.len()
    }

    /// Read-only copies of every span, in id order.
    pub fn spans(&self) -> Vec<SpanInfo> {
        let buf = self.buf.lock();
        buf.spans
            .iter()
            .enumerate()
            .map(|(i, s)| SpanInfo {
                id: SpanId(i as u64 + 1),
                parent: s.parent.map(SpanId),
                name: s.name.clone(),
                start: s.start,
                end: s.end,
                attrs: s.attrs.clone(),
            })
            .collect()
    }

    // ---------- exporters ----------

    /// Serialize the whole trace as JSON Lines: every span (in id order),
    /// then every event (in record order). Deterministic byte for byte
    /// for a given sequence of calls — the regression-witness property.
    pub fn to_jsonl(&self) -> String {
        let buf = self.buf.lock();
        let mut out = String::new();
        for (i, s) in buf.spans.iter().enumerate() {
            let _ = write!(out, "{{\"t\":\"span\",\"id\":{}", i + 1);
            match s.parent {
                Some(p) => {
                    let _ = write!(out, ",\"parent\":{p}");
                }
                None => out.push_str(",\"parent\":null"),
            }
            let _ = write!(out, ",\"name\":\"{}\"", json_escape(&s.name));
            let _ = write!(out, ",\"start_us\":{}", s.start.as_micros());
            match s.end {
                Some(e) => {
                    let _ = write!(out, ",\"end_us\":{}", e.as_micros());
                }
                None => out.push_str(",\"end_us\":null"),
            }
            write_attrs(&mut out, &s.attrs);
            out.push_str("}\n");
        }
        for e in &buf.events {
            out.push_str("{\"t\":\"event\"");
            match e.span {
                Some(s) => {
                    let _ = write!(out, ",\"span\":{s}");
                }
                None => out.push_str(",\"span\":null"),
            }
            let _ = write!(out, ",\"name\":\"{}\"", json_escape(&e.name));
            let _ = write!(out, ",\"at_us\":{}", e.at.as_micros());
            write_attrs(&mut out, &e.attrs);
            out.push_str("}\n");
        }
        out
    }

    /// Render the span tree under `root` as a text "latency waterfall":
    /// one line per span with its offset from the root, its duration,
    /// and a bar showing where in the root's lifetime it ran. Children
    /// print in id (creation) order, depth first. Open spans render with
    /// a `+` after the offset and a zero-length bar.
    pub fn waterfall(&self, root: SpanId) -> String {
        let spans = self.spans();
        let Some(root_info) = spans.iter().find(|s| s.id == root) else {
            return String::new();
        };
        let t0 = root_info.start;
        // The root's extent: its own end, or the latest end among spans
        // (an unfinished session still renders meaningfully).
        let t1 = root_info
            .end
            .or_else(|| spans.iter().filter_map(|s| s.end).max())
            .unwrap_or(t0);
        let total_us = t1.since(t0).as_micros().max(1);
        let mut out = String::new();
        let mut stack = vec![(root, 0usize)];
        while let Some((id, depth)) = stack.pop() {
            let s = spans
                .iter()
                .find(|s| s.id == id)
                .expect("ids come from the span list");
            let off_us = s.start.since(t0).as_micros();
            let (dur_us, open) = match s.end {
                Some(e) => (e.since(s.start).as_micros(), false),
                None => (0, true),
            };
            const BAR: u64 = 32;
            let bar_start = (off_us.min(total_us) * BAR) / total_us;
            let bar_len = ((dur_us * BAR) / total_us).max(u64::from(dur_us > 0));
            let bar_len = bar_len.min(BAR - bar_start.min(BAR));
            let mut bar = String::with_capacity(BAR as usize);
            for i in 0..BAR {
                bar.push(if i >= bar_start && i < bar_start + bar_len {
                    '#'
                } else {
                    '.'
                });
            }
            let _ = writeln!(
                out,
                "{:>10}{} {:>9} |{}| {:indent$}{}",
                fmt_ms(off_us),
                if open { '+' } else { ' ' },
                fmt_ms(dur_us),
                bar,
                "",
                s.name,
                indent = depth * 2,
            );
            // Push children in reverse id order so they pop in id order.
            let mut children: Vec<SpanId> = spans
                .iter()
                .filter(|c| c.parent == Some(id))
                .map(|c| c.id)
                .collect();
            children.reverse();
            for c in children {
                stack.push((c, depth + 1));
            }
        }
        out
    }
}

/// Milliseconds with fixed microsecond precision — integer math only,
/// so the rendering is deterministic.
fn fmt_ms(us: u64) -> String {
    format!("{}.{:03}ms", us / 1000, us % 1000)
}

fn write_attrs(out: &mut String, attrs: &[(String, String)]) {
    out.push_str(",\"attrs\":{");
    // Sort keys for canonical output; the last write of a key wins.
    let mut sorted: Vec<&(String, String)> = attrs.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut prev: Option<&str> = None;
    let mut first = true;
    let mut i = 0;
    while i < sorted.len() {
        // Skip all but the last occurrence of a key.
        if i + 1 < sorted.len() && sorted[i + 1].0 == sorted[i].0 {
            i += 1;
            continue;
        }
        let (k, v) = sorted[i];
        if prev != Some(k.as_str()) {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
            first = false;
            prev = Some(k.as_str());
        }
        i += 1;
    }
    out.push('}');
}

/// Escape a string for a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn span_ids_are_sequential_and_nonzero() {
        let tr = Tracer::new();
        let a = tr.span("a", SimTime::ZERO);
        let b = tr.span("b", SimTime::ZERO);
        assert_eq!(a.as_u64(), 1);
        assert_eq!(b.as_u64(), 2);
        assert_eq!(SpanId::from_wire(0), None);
        assert_eq!(SpanId::from_wire(2), Some(b));
    }

    #[test]
    fn context_stack_nests_spans() {
        let tr = Tracer::new();
        let root = tr.root_span("session", SimTime::ZERO);
        tr.push_context(root);
        let child = tr.span("request", SimTime::from_millis(1));
        tr.pop_context();
        let orphan = tr.span("later", SimTime::from_millis(2));
        let spans = tr.spans();
        assert_eq!(spans[child.as_u64() as usize - 1].parent, Some(root));
        assert_eq!(spans[orphan.as_u64() as usize - 1].parent, None);
    }

    #[test]
    fn jsonl_is_deterministic_and_escaped() {
        let build = || {
            let tr = Tracer::new();
            let s = tr.root_span("say \"hi\"\n", SimTime::from_micros(5));
            tr.attr(s, "kind", "demo");
            tr.attr_u64(s, "bytes", 42);
            tr.end(s, SimTime::from_micros(9));
            tr.event_with(
                Some(s),
                "tick",
                SimTime::from_micros(7),
                &[("n", "1".into())],
            );
            tr.to_jsonl()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "byte-identical across runs");
        assert_eq!(
            a,
            "{\"t\":\"span\",\"id\":1,\"parent\":null,\"name\":\"say \\\"hi\\\"\\n\",\
             \"start_us\":5,\"end_us\":9,\"attrs\":{\"bytes\":\"42\",\"kind\":\"demo\"}}\n\
             {\"t\":\"event\",\"span\":1,\"name\":\"tick\",\"at_us\":7,\"attrs\":{\"n\":\"1\"}}\n"
        );
    }

    #[test]
    fn duplicate_attr_keys_last_write_wins() {
        let tr = Tracer::new();
        let s = tr.root_span("s", SimTime::ZERO);
        tr.attr(s, "outcome", "pending");
        tr.attr(s, "outcome", "ok");
        tr.end(s, SimTime::ZERO);
        let line = tr.to_jsonl();
        assert!(line.contains("\"outcome\":\"ok\""), "{line}");
        assert!(!line.contains("pending"), "{line}");
    }

    #[test]
    fn waterfall_renders_tree_in_creation_order() {
        let tr = Tracer::new();
        let root = tr.root_span("session", SimTime::ZERO);
        let a = tr.child(root, "first", SimTime::from_millis(0));
        tr.end(a, SimTime::from_millis(40));
        let b = tr.child(root, "second", SimTime::from_millis(60));
        let ba = tr.child(b, "nested", SimTime::from_millis(70));
        tr.end(ba, SimTime::from_millis(80));
        tr.end(b, SimTime::from_millis(100));
        tr.end(root, SimTime::from_millis(100));
        let w = tr.waterfall(root);
        let lines: Vec<&str> = w.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with("session"));
        assert!(lines[1].ends_with("  first"));
        assert!(lines[2].ends_with("  second"));
        assert!(lines[3].ends_with("    nested"));
        // The first child's bar starts at the left edge, the second's
        // past the middle.
        assert!(lines[1].contains("|#"));
        assert!(lines[2].contains("....#"), "{w}");
    }

    #[test]
    fn open_spans_export_null_end() {
        let tr = Tracer::new();
        let s = tr.root_span("open", SimTime::from_secs(1) + SimDuration::ZERO);
        let _ = s;
        assert!(tr.to_jsonl().contains("\"end_us\":null"));
        let w = tr.waterfall(s);
        assert!(w.contains('+'), "open marker: {w}");
    }
}
