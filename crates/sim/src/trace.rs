//! Deterministic hierarchical tracing stamped with virtual time.
//!
//! The MITS evaluation needs to explain *where* a slow or degraded
//! playback spent its deadline: which query attempt died on the lossy
//! uplink, how long the server's service centre held a request, what a
//! restarted server replayed before it answered. This module provides
//! spans (named intervals with a parent) and events (named instants),
//! all stamped with [`SimTime`] — never a wall clock — so that **two
//! runs with the same seed produce byte-identical trace output**. A
//! trace is therefore usable as a regression witness: `scripts/check.sh`
//! diffs the example trace against a checked-in golden file.
//!
//! Span ids are assigned sequentially in creation order, which in a
//! deterministic simulation is itself deterministic. The id of a span
//! doubles as the trace context that rides the DB wire protocol
//! (`mits-db` reserves `0` for "no trace"), so the server side of a
//! request can parent its own spans under the client's request span —
//! client, network and server all share one process here, and one
//! [`Tracer`].
//!
//! Exports: [`Tracer::to_jsonl`] (one JSON object per line; spans in id
//! order, then events in record order) and [`Tracer::waterfall`] (a
//! text span-tree with offset/duration bars for one root span). JSON is
//! hand-written: the workspace deliberately vendors no JSON crate, and
//! the subset needed here — objects of strings and integers — is tiny.

use crate::time::SimTime;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::Arc;

/// Identifies one span in a [`Tracer`]. Ids start at 1; the raw value
/// `0` is reserved on the wire for "no trace context".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw id, as carried in protocol headers.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuild a span id from a wire value; `0` means no context.
    pub fn from_wire(raw: u64) -> Option<SpanId> {
        (raw != 0).then_some(SpanId(raw))
    }
}

/// A read-only copy of one span's record (introspection and tests).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanInfo {
    /// The span's id.
    pub id: SpanId,
    /// Parent span, if any.
    pub parent: Option<SpanId>,
    /// Span name.
    pub name: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant; `None` while the span is open.
    pub end: Option<SimTime>,
    /// Attributes in record order (export sorts and dedups them).
    pub attrs: Vec<(String, String)>,
}

struct SpanRec {
    parent: Option<u64>,
    name: String,
    start: SimTime,
    end: Option<SimTime>,
    attrs: Vec<(String, String)>,
}

struct EventRec {
    span: Option<u64>,
    name: String,
    at: SimTime,
    attrs: Vec<(String, String)>,
}

#[derive(Default)]
struct TraceBuf {
    spans: Vec<SpanRec>,
    events: Vec<EventRec>,
    /// Current-parent stack for implicit nesting (e.g. a Course-On-Demand
    /// stage pushes itself so the DB requests it triggers nest under it).
    stack: Vec<u64>,
}

/// A shared, cloneable collector of spans and events.
///
/// All mutation goes through a mutex, so one `Tracer` can be cloned into
/// every layer of the system (client, network pump, server, session)
/// without borrow gymnastics. The simulation is single-threaded, so the
/// lock is uncontended and ordering is deterministic.
#[derive(Clone, Default)]
pub struct Tracer {
    buf: Arc<Mutex<TraceBuf>>,
}

impl Tracer {
    /// An empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    fn push_span(&self, parent: Option<u64>, name: &str, at: SimTime) -> SpanId {
        let mut buf = self.buf.lock();
        buf.spans.push(SpanRec {
            parent,
            name: name.to_string(),
            start: at,
            end: None,
            attrs: Vec::new(),
        });
        SpanId(buf.spans.len() as u64)
    }

    /// Open a span nested under the current context (see
    /// [`Tracer::push_context`]), or at the root when no context is set.
    pub fn span(&self, name: &str, at: SimTime) -> SpanId {
        let parent = self.buf.lock().stack.last().copied();
        self.push_span(parent, name, at)
    }

    /// Open a span with an explicit parent.
    pub fn child(&self, parent: SpanId, name: &str, at: SimTime) -> SpanId {
        self.push_span(Some(parent.0), name, at)
    }

    /// Open a root span (no parent, regardless of context).
    pub fn root_span(&self, name: &str, at: SimTime) -> SpanId {
        self.push_span(None, name, at)
    }

    /// Close a span. Closing an already-closed span moves its end (the
    /// last close wins); spans never closed export with `"end_us":null`.
    pub fn end(&self, id: SpanId, at: SimTime) {
        let mut buf = self.buf.lock();
        if let Some(rec) = buf.spans.get_mut(id.0 as usize - 1) {
            rec.end = Some(at);
        }
    }

    /// Attach a string attribute to a span (appended; keys are sorted at
    /// export time, and a later duplicate key overrides an earlier one).
    pub fn attr(&self, id: SpanId, key: &str, value: &str) {
        let mut buf = self.buf.lock();
        if let Some(rec) = buf.spans.get_mut(id.0 as usize - 1) {
            rec.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Attach an integer attribute to a span.
    pub fn attr_u64(&self, id: SpanId, key: &str, value: u64) {
        self.attr(id, key, &value.to_string());
    }

    /// Record an instantaneous event, optionally tied to a span.
    pub fn event(&self, span: Option<SpanId>, name: &str, at: SimTime) {
        self.event_with(span, name, at, &[]);
    }

    /// Record an event carrying attributes.
    pub fn event_with(
        &self,
        span: Option<SpanId>,
        name: &str,
        at: SimTime,
        attrs: &[(&str, String)],
    ) {
        let mut buf = self.buf.lock();
        buf.events.push(EventRec {
            span: span.map(|s| s.0),
            name: name.to_string(),
            at,
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Push a span onto the context stack: spans opened with
    /// [`Tracer::span`] nest under it until the matching
    /// [`Tracer::pop_context`].
    pub fn push_context(&self, id: SpanId) {
        self.buf.lock().stack.push(id.0);
    }

    /// Pop the innermost context span.
    pub fn pop_context(&self) {
        self.buf.lock().stack.pop();
    }

    /// The current context span, if any.
    pub fn context(&self) -> Option<SpanId> {
        self.buf.lock().stack.last().map(|&id| SpanId(id))
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.buf.lock().spans.len()
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        self.buf.lock().events.len()
    }

    /// Read-only copies of every span, in id order.
    pub fn spans(&self) -> Vec<SpanInfo> {
        let buf = self.buf.lock();
        buf.spans
            .iter()
            .enumerate()
            .map(|(i, s)| SpanInfo {
                id: SpanId(i as u64 + 1),
                parent: s.parent.map(SpanId),
                name: s.name.clone(),
                start: s.start,
                end: s.end,
                attrs: s.attrs.clone(),
            })
            .collect()
    }

    // ---------- exporters ----------

    /// Serialize the whole trace as JSON Lines: every span (in id order),
    /// then every event (in record order). Deterministic byte for byte
    /// for a given sequence of calls — the regression-witness property.
    pub fn to_jsonl(&self) -> String {
        let buf = self.buf.lock();
        let mut out = String::new();
        for (i, s) in buf.spans.iter().enumerate() {
            let _ = write!(out, "{{\"t\":\"span\",\"id\":{}", i + 1);
            match s.parent {
                Some(p) => {
                    let _ = write!(out, ",\"parent\":{p}");
                }
                None => out.push_str(",\"parent\":null"),
            }
            let _ = write!(out, ",\"name\":\"{}\"", json_escape(&s.name));
            let _ = write!(out, ",\"start_us\":{}", s.start.as_micros());
            match s.end {
                Some(e) => {
                    let _ = write!(out, ",\"end_us\":{}", e.as_micros());
                }
                None => out.push_str(",\"end_us\":null"),
            }
            write_attrs(&mut out, &s.attrs);
            out.push_str("}\n");
        }
        for e in &buf.events {
            out.push_str("{\"t\":\"event\"");
            match e.span {
                Some(s) => {
                    let _ = write!(out, ",\"span\":{s}");
                }
                None => out.push_str(",\"span\":null"),
            }
            let _ = write!(out, ",\"name\":\"{}\"", json_escape(&e.name));
            let _ = write!(out, ",\"at_us\":{}", e.at.as_micros());
            write_attrs(&mut out, &e.attrs);
            out.push_str("}\n");
        }
        out
    }

    /// Render the span tree under `root` as a text "latency waterfall":
    /// one line per span with its offset from the root, its duration,
    /// and a bar showing where in the root's lifetime it ran. Children
    /// print in id (creation) order, depth first. Open spans render with
    /// a `+` after the offset and a zero-length bar.
    pub fn waterfall(&self, root: SpanId) -> String {
        let spans = self.spans();
        let Some(root_info) = spans.iter().find(|s| s.id == root) else {
            return String::new();
        };
        let t0 = root_info.start;
        // The root's extent: its own end, or the latest end among spans
        // (an unfinished session still renders meaningfully).
        let t1 = root_info
            .end
            .or_else(|| spans.iter().filter_map(|s| s.end).max())
            .unwrap_or(t0);
        let total_us = t1.since(t0).as_micros().max(1);
        let mut out = String::new();
        let mut stack = vec![(root, 0usize)];
        while let Some((id, depth)) = stack.pop() {
            let s = spans
                .iter()
                .find(|s| s.id == id)
                .expect("ids come from the span list");
            let off_us = s.start.since(t0).as_micros();
            let (dur_us, open) = match s.end {
                Some(e) => (e.since(s.start).as_micros(), false),
                None => (0, true),
            };
            const BAR: u64 = 32;
            let bar_start = (off_us.min(total_us) * BAR) / total_us;
            let bar_len = ((dur_us * BAR) / total_us).max(u64::from(dur_us > 0));
            let bar_len = bar_len.min(BAR - bar_start.min(BAR));
            let mut bar = String::with_capacity(BAR as usize);
            for i in 0..BAR {
                bar.push(if i >= bar_start && i < bar_start + bar_len {
                    '#'
                } else {
                    '.'
                });
            }
            let _ = writeln!(
                out,
                "{:>10}{} {:>9} |{}| {:indent$}{}",
                fmt_ms(off_us),
                if open { '+' } else { ' ' },
                fmt_ms(dur_us),
                bar,
                "",
                s.name,
                indent = depth * 2,
            );
            // Push children in reverse id order so they pop in id order.
            let mut children: Vec<SpanId> = spans
                .iter()
                .filter(|c| c.parent == Some(id))
                .map(|c| c.id)
                .collect();
            children.reverse();
            for c in children {
                stack.push((c, depth + 1));
            }
        }
        out
    }
}

// ---------- sampling ----------

/// Why a session's trace was kept by a [`TraceSampler`].
///
/// Ordered by precedence: when several reasons apply the sampler reports
/// the first in this order, so the recorded reason is itself
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleReason {
    /// The session ended degraded (placeholders served, stalled playout).
    Degraded,
    /// The session drove a database failover.
    Failover,
    /// Simulated session time exceeded the sampler's latency threshold.
    Slow,
    /// Won the deterministic per-student head-sampling lottery.
    Head,
}

impl SampleReason {
    /// Stable lowercase label for JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            SampleReason::Degraded => "degraded",
            SampleReason::Failover => "failover",
            SampleReason::Slow => "slow",
            SampleReason::Head => "head",
        }
    }
}

/// Per-session anomaly signals feeding the sampler's tail decision.
#[derive(Debug, Clone, Copy, Default)]
pub struct TailSignals {
    /// The session completed degraded.
    pub degraded: bool,
    /// The session's client failed over between database servers.
    pub failed_over: bool,
    /// Simulated end-to-end session time.
    pub session: crate::time::SimDuration,
}

/// Deterministic Dapper-style trace sampler for campus runs.
///
/// A thousand-student campus cannot keep every shard's full trace (the
/// JSONL would dwarf the simulation), and keeping none would blind the
/// very runs where something went wrong. The sampler makes two kinds of
/// decisions, both pure functions of its inputs:
///
/// * **Head sampling** — a fixed fraction of students, chosen by hashing
///   `(base_seed, student)` through the SplitMix64 finalizer. The choice
///   is independent of thread count and of every other student, so the
///   sampled set is byte-stable across runs and schedules.
/// * **Tail sampling** — always-on retention for anomalous sessions:
///   degraded playout, a database failover, or simulated session time
///   over a configurable threshold. Anomalies are exactly the traces an
///   operator needs, so they bypass the lottery.
#[derive(Debug, Clone, Copy)]
pub struct TraceSampler {
    base_seed: u64,
    /// Head-sampling acceptance bound on a 2^64 scale (u128 so a rate of
    /// 1.0 can admit every hash value).
    head_bound: u128,
    latency_threshold: Option<crate::time::SimDuration>,
}

impl TraceSampler {
    /// Stream label mixed into the per-student hash so the sampling
    /// lottery is decorrelated from the shard's own seed derivation.
    const STREAM: u64 = 0xA24B_AED4_963E_E407;

    /// A sampler keeping roughly `head_rate` (clamped to `[0, 1]`) of
    /// students by lottery, with tail sampling always on.
    pub fn new(base_seed: u64, head_rate: f64) -> Self {
        let head_bound = (head_rate.clamp(0.0, 1.0) * (1u128 << 64) as f64) as u128;
        TraceSampler {
            base_seed,
            head_bound,
            latency_threshold: None,
        }
    }

    /// Also tail-sample any session whose simulated time exceeds `d`.
    pub fn with_latency_threshold(mut self, d: crate::time::SimDuration) -> Self {
        self.latency_threshold = Some(d);
        self
    }

    /// The deterministic head-sampling lottery for `student`.
    pub fn head_sampled(&self, student: u64) -> bool {
        let h =
            crate::rng::splitmix64_mix(self.base_seed ^ student.wrapping_mul(TraceSampler::STREAM));
        (h as u128) < self.head_bound
    }

    /// Full decision for one finished session: `Some(reason)` keeps the
    /// trace, `None` drops it. Tail reasons take precedence over the
    /// head lottery so the export records *why* an anomaly was kept.
    pub fn decide(&self, student: u64, signals: &TailSignals) -> Option<SampleReason> {
        if signals.degraded {
            return Some(SampleReason::Degraded);
        }
        if signals.failed_over {
            return Some(SampleReason::Failover);
        }
        if let Some(limit) = self.latency_threshold {
            if signals.session > limit {
                return Some(SampleReason::Slow);
            }
        }
        self.head_sampled(student).then_some(SampleReason::Head)
    }
}

/// Milliseconds with fixed microsecond precision — integer math only,
/// so the rendering is deterministic.
fn fmt_ms(us: u64) -> String {
    format!("{}.{:03}ms", us / 1000, us % 1000)
}

fn write_attrs(out: &mut String, attrs: &[(String, String)]) {
    out.push_str(",\"attrs\":{");
    // Sort keys for canonical output; the last write of a key wins.
    let mut sorted: Vec<&(String, String)> = attrs.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut prev: Option<&str> = None;
    let mut first = true;
    let mut i = 0;
    while i < sorted.len() {
        // Skip all but the last occurrence of a key.
        if i + 1 < sorted.len() && sorted[i + 1].0 == sorted[i].0 {
            i += 1;
            continue;
        }
        let (k, v) = sorted[i];
        if prev != Some(k.as_str()) {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
            first = false;
            prev = Some(k.as_str());
        }
        i += 1;
    }
    out.push('}');
}

/// Escape a string for a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn span_ids_are_sequential_and_nonzero() {
        let tr = Tracer::new();
        let a = tr.span("a", SimTime::ZERO);
        let b = tr.span("b", SimTime::ZERO);
        assert_eq!(a.as_u64(), 1);
        assert_eq!(b.as_u64(), 2);
        assert_eq!(SpanId::from_wire(0), None);
        assert_eq!(SpanId::from_wire(2), Some(b));
    }

    #[test]
    fn context_stack_nests_spans() {
        let tr = Tracer::new();
        let root = tr.root_span("session", SimTime::ZERO);
        tr.push_context(root);
        let child = tr.span("request", SimTime::from_millis(1));
        tr.pop_context();
        let orphan = tr.span("later", SimTime::from_millis(2));
        let spans = tr.spans();
        assert_eq!(spans[child.as_u64() as usize - 1].parent, Some(root));
        assert_eq!(spans[orphan.as_u64() as usize - 1].parent, None);
    }

    #[test]
    fn jsonl_is_deterministic_and_escaped() {
        let build = || {
            let tr = Tracer::new();
            let s = tr.root_span("say \"hi\"\n", SimTime::from_micros(5));
            tr.attr(s, "kind", "demo");
            tr.attr_u64(s, "bytes", 42);
            tr.end(s, SimTime::from_micros(9));
            tr.event_with(
                Some(s),
                "tick",
                SimTime::from_micros(7),
                &[("n", "1".into())],
            );
            tr.to_jsonl()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "byte-identical across runs");
        assert_eq!(
            a,
            "{\"t\":\"span\",\"id\":1,\"parent\":null,\"name\":\"say \\\"hi\\\"\\n\",\
             \"start_us\":5,\"end_us\":9,\"attrs\":{\"bytes\":\"42\",\"kind\":\"demo\"}}\n\
             {\"t\":\"event\",\"span\":1,\"name\":\"tick\",\"at_us\":7,\"attrs\":{\"n\":\"1\"}}\n"
        );
    }

    #[test]
    fn duplicate_attr_keys_last_write_wins() {
        let tr = Tracer::new();
        let s = tr.root_span("s", SimTime::ZERO);
        tr.attr(s, "outcome", "pending");
        tr.attr(s, "outcome", "ok");
        tr.end(s, SimTime::ZERO);
        let line = tr.to_jsonl();
        assert!(line.contains("\"outcome\":\"ok\""), "{line}");
        assert!(!line.contains("pending"), "{line}");
    }

    #[test]
    fn waterfall_renders_tree_in_creation_order() {
        let tr = Tracer::new();
        let root = tr.root_span("session", SimTime::ZERO);
        let a = tr.child(root, "first", SimTime::from_millis(0));
        tr.end(a, SimTime::from_millis(40));
        let b = tr.child(root, "second", SimTime::from_millis(60));
        let ba = tr.child(b, "nested", SimTime::from_millis(70));
        tr.end(ba, SimTime::from_millis(80));
        tr.end(b, SimTime::from_millis(100));
        tr.end(root, SimTime::from_millis(100));
        let w = tr.waterfall(root);
        let lines: Vec<&str> = w.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with("session"));
        assert!(lines[1].ends_with("  first"));
        assert!(lines[2].ends_with("  second"));
        assert!(lines[3].ends_with("    nested"));
        // The first child's bar starts at the left edge, the second's
        // past the middle.
        assert!(lines[1].contains("|#"));
        assert!(lines[2].contains("....#"), "{w}");
    }

    /// Minimal JSON-line validity scanner: balanced braces/brackets
    /// outside string literals, only legal escape sequences inside them,
    /// no raw control characters. Enough to catch broken escaping
    /// without vendoring a JSON parser.
    fn assert_valid_json_line(line: &str) {
        let mut depth = 0i32;
        let mut in_string = false;
        let mut chars = line.chars();
        while let Some(c) = chars.next() {
            if in_string {
                match c {
                    '"' => in_string = false,
                    '\\' => {
                        let e = chars.next().expect("escape has a follow-up");
                        match e {
                            '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' => {}
                            'u' => {
                                for _ in 0..4 {
                                    let h = chars.next().expect("four hex digits");
                                    assert!(h.is_ascii_hexdigit(), "bad \\u escape in {line}");
                                }
                            }
                            other => panic!("illegal escape \\{other} in {line}"),
                        }
                    }
                    c if (c as u32) < 0x20 => panic!("raw control char in string: {line}"),
                    _ => {}
                }
            } else {
                match c {
                    '"' => in_string = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0, "unbalanced close in {line}");
            }
        }
        assert!(!in_string, "unterminated string in {line}");
        assert_eq!(depth, 0, "unbalanced braces in {line}");
    }

    #[test]
    fn hostile_labels_export_as_valid_json() {
        let tr = Tracer::new();
        let s = tr.root_span("evil \"name\" \\ with \u{1} ctrl", SimTime::ZERO);
        tr.attr(s, "path\\key", "C:\\media\\\"clip\".mpg");
        tr.attr(s, "multi\nline", "tab\there\r\n");
        tr.end(s, SimTime::from_micros(3));
        tr.event_with(
            Some(s),
            "drop \"burst\"\\",
            SimTime::from_micros(2),
            &[("why\"", "loss\\burst\u{7f}".into())],
        );
        let out = tr.to_jsonl();
        for line in out.lines() {
            assert_valid_json_line(line);
        }
        assert!(
            out.contains("\"name\":\"evil \\\"name\\\" \\\\ with \\u0001 ctrl\""),
            "{out}"
        );
        assert!(
            out.contains("\"path\\\\key\":\"C:\\\\media\\\\\\\"clip\\\".mpg\""),
            "{out}"
        );
        assert!(
            out.contains("\"multi\\nline\":\"tab\\there\\r\\n\""),
            "{out}"
        );
        assert!(out.contains("\"name\":\"drop \\\"burst\\\"\\\\\""), "{out}");
        // Same hostile input, same bytes: escaping must not destabilise
        // the regression-witness property.
        let again = {
            let tr2 = Tracer::new();
            let s2 = tr2.root_span("evil \"name\" \\ with \u{1} ctrl", SimTime::ZERO);
            tr2.attr(s2, "path\\key", "C:\\media\\\"clip\".mpg");
            tr2.attr(s2, "multi\nline", "tab\there\r\n");
            tr2.end(s2, SimTime::from_micros(3));
            tr2.event_with(
                Some(s2),
                "drop \"burst\"\\",
                SimTime::from_micros(2),
                &[("why\"", "loss\\burst\u{7f}".into())],
            );
            tr2.to_jsonl()
        };
        assert_eq!(out, again);
    }

    #[test]
    fn sampler_head_decision_is_deterministic_and_rate_shaped() {
        let s = TraceSampler::new(42, 0.1);
        let kept: Vec<u64> = (0..10_000).filter(|&i| s.head_sampled(i)).collect();
        let again: Vec<u64> = (0..10_000).filter(|&i| s.head_sampled(i)).collect();
        assert_eq!(kept, again, "pure function of (seed, student)");
        // 10% of 10k: expect ~1000, allow wide slack (binomial ±5σ).
        assert!(
            (850..1150).contains(&kept.len()),
            "kept {} of 10000",
            kept.len()
        );
        // Different base seeds choose different students.
        let other = TraceSampler::new(43, 0.1);
        let kept_other: Vec<u64> = (0..10_000).filter(|&i| other.head_sampled(i)).collect();
        assert_ne!(kept, kept_other);
        // Rate extremes.
        let none = TraceSampler::new(42, 0.0);
        let all = TraceSampler::new(42, 1.0);
        assert!((0..1000).all(|i| !none.head_sampled(i)));
        assert!((0..1000).all(|i| all.head_sampled(i)));
    }

    #[test]
    fn sampler_tail_reasons_take_precedence() {
        use crate::time::SimDuration;
        let s = TraceSampler::new(7, 0.0).with_latency_threshold(SimDuration::from_secs(10));
        let calm = TailSignals {
            session: SimDuration::from_secs(1),
            ..TailSignals::default()
        };
        assert_eq!(s.decide(3, &calm), None, "rate 0, no anomaly, dropped");
        let slow = TailSignals {
            session: SimDuration::from_secs(11),
            ..TailSignals::default()
        };
        assert_eq!(s.decide(3, &slow), Some(SampleReason::Slow));
        let failed = TailSignals {
            failed_over: true,
            session: SimDuration::from_secs(11),
            ..TailSignals::default()
        };
        assert_eq!(s.decide(3, &failed), Some(SampleReason::Failover));
        let degraded = TailSignals {
            degraded: true,
            failed_over: true,
            session: SimDuration::from_secs(11),
        };
        assert_eq!(s.decide(3, &degraded), Some(SampleReason::Degraded));
        // Head winners report Head when calm.
        let all = TraceSampler::new(7, 1.0);
        assert_eq!(all.decide(3, &calm), Some(SampleReason::Head));
    }

    #[test]
    fn open_spans_export_null_end() {
        let tr = Tracer::new();
        let s = tr.root_span("open", SimTime::from_secs(1) + SimDuration::ZERO);
        let _ = s;
        assert!(tr.to_jsonl().contains("\"end_us\":null"));
        let w = tr.waterfall(s);
        assert!(w.contains('+'), "open marker: {w}");
    }
}
