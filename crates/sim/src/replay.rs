//! Session replay: capture one victim session as a [`ReplayBundle`]
//! and prove a standalone re-run is the *same execution*.
//!
//! Forensics (PR 8) can name a victim session and the fault window
//! that killed it; this module makes the incident reproducible. A
//! bundle captures everything a session's execution is a function of —
//! the derived seed, the workload id, the shard/replica topology and
//! the fault-schedule slice intersecting the session — plus the campus
//! run's layered digest checkpoints. The campus runner re-runs the
//! session solo with instrumentation forced to maximum (trace sample
//! rate 1.0, unbounded flight ring, link telemetry rendered) and
//! compares the replayed [`DigestTrace`] layer by layer: a mismatch is
//! a hard error naming the first divergent layer, not a silent wrong
//! answer.
//!
//! The faithfulness invariant that makes "max instrumentation" safe:
//! neither the trace sampler (post-hoc keep/drop of an always-on
//! tracer) nor the flight-ring capacity (events never reach the
//! digest) influences the simulation, so cranking both is
//! digest-neutral by construction.

use crate::forensics::FaultWindow;
use std::fmt::Write as _;

/// SplitMix64 finalizer deriving student `i`'s session seed from the
/// campus base seed — the canonical definition, shared by the campus
/// runner and by forensic replay handles so a bundle's `(student,
/// seed)` pair can be recomputed anywhere.
pub fn derive_seed(base: u64, student: u64) -> u64 {
    let mut z = base ^ student.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The first layer at which a replayed session's digest left the
/// campus-recorded one. Layers are compared in fold order, so the
/// named layer is where the executions first disagree — everything
/// before it matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Name of the first divergent digest layer.
    pub layer: String,
    /// The campus-recorded checkpoint at that layer.
    pub expected: u64,
    /// What the replay produced instead.
    pub got: u64,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay diverged at layer `{}`: expected {:#018x}, got {:#018x}",
            self.layer, self.expected, self.got
        )
    }
}

impl std::error::Error for Divergence {}

/// Ordered digest checkpoints, one per fold layer of a session digest
/// (`seed → courseware → media.N… → failure → bytes → session_us →
/// db_state`). Recording them costs one `(name, u64)` push per fold;
/// comparing two traces names the first divergent layer instead of
/// reporting an opaque final-digest mismatch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DigestTrace {
    layers: Vec<(String, u64)>,
}

impl DigestTrace {
    /// An empty trace.
    pub fn new() -> Self {
        DigestTrace::default()
    }

    /// Record the digest checkpoint after folding `layer`.
    pub fn record(&mut self, layer: impl Into<String>, digest: u64) {
        self.layers.push((layer.into(), digest));
    }

    /// The recorded layers, in fold order.
    pub fn layers(&self) -> &[(String, u64)] {
        &self.layers
    }

    /// The final checkpoint — the session digest itself, when the
    /// trace covers the whole fold.
    pub fn final_digest(&self) -> Option<u64> {
        self.layers.last().map(|(_, d)| *d)
    }

    /// Compare a replayed trace (`self`) against the campus-recorded
    /// `expected`, in layer order. On mismatch, names the first layer
    /// whose name or checkpoint differs; a layer-count mismatch (one
    /// execution folded more layers) is reported as `layer_count`.
    pub fn compare(&self, expected: &DigestTrace) -> Result<(), Divergence> {
        for (mine, theirs) in self.layers.iter().zip(&expected.layers) {
            if mine.0 != theirs.0 || mine.1 != theirs.1 {
                return Err(Divergence {
                    layer: theirs.0.clone(),
                    expected: theirs.1,
                    got: mine.1,
                });
            }
        }
        if self.layers.len() != expected.layers.len() {
            return Err(Divergence {
                layer: "layer_count".to_string(),
                expected: expected.layers.len() as u64,
                got: self.layers.len() as u64,
            });
        }
        Ok(())
    }

    /// The layers as a byte-stable JSON array:
    /// `[{"layer":"seed","digest":N},…]`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, (name, digest)) in self.layers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"layer\":\"{}\",\"digest\":{}}}",
                crate::trace::json_escape(name),
                digest
            );
        }
        out.push(']');
        out
    }
}

/// Everything needed to reconstruct one session out of a campus run:
/// the session spec, which workload it fetched, the shard/replica
/// topology it ran against, the fault-schedule slice intersecting it,
/// and the campus-recorded digest checkpoints the replay must
/// reproduce byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayBundle {
    /// Student index in the campus run.
    pub student: usize,
    /// The derived seed the session ran with.
    pub seed: u64,
    /// Workload id (index into the campus workload rotation).
    pub workload: usize,
    /// Shard groups in the session's store.
    pub shards: usize,
    /// Whether every shard ran a hot-standby replica.
    pub replica: bool,
    /// The campus-recorded session digest (final fold).
    pub digest: u64,
    /// Layer-by-layer digest checkpoints from the campus run.
    pub layers: DigestTrace,
    /// Whether the campus run retired the session anomalous.
    pub anomalous: bool,
    /// Whether the campus run retired the session failed.
    pub failed: bool,
    /// Declared fault windows intersecting the session's virtual span.
    pub faults: Vec<FaultWindow>,
}

impl ReplayBundle {
    /// Render the bundle as one versioned JSON object — the ready-to-
    /// run replay handle forensic bundles embed:
    /// `{"t":"replay","v":1,…}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"t\":\"replay\",\"v\":1,\"student\":{},\"seed\":{},\"workload\":{},\
             \"shards\":{},\"replica\":{},\"digest\":{},\"anomalous\":{},\"failed\":{},\
             \"layers\":{},\"faults\":[",
            self.student,
            self.seed,
            self.workload,
            self.shards,
            self.replica,
            self.digest,
            self.anomalous,
            self.failed,
            self.layers.to_json()
        );
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            f.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn derive_seed_is_stable_and_decorrelated() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
    }

    #[test]
    fn matching_traces_compare_clean() {
        let mut a = DigestTrace::new();
        a.record("seed", 1);
        a.record("bytes", 2);
        let b = a.clone();
        assert_eq!(a.compare(&b), Ok(()));
        assert_eq!(a.final_digest(), Some(2));
    }

    #[test]
    fn divergence_names_the_first_bad_layer() {
        let mut campus = DigestTrace::new();
        campus.record("seed", 1);
        campus.record("courseware", 2);
        campus.record("bytes", 3);
        let mut replay = DigestTrace::new();
        replay.record("seed", 1);
        replay.record("courseware", 9);
        replay.record("bytes", 3);
        let d = replay.compare(&campus).unwrap_err();
        assert_eq!(d.layer, "courseware");
        assert_eq!(d.expected, 2);
        assert_eq!(d.got, 9);
        assert!(d.to_string().contains("courseware"));
    }

    #[test]
    fn layer_count_mismatch_is_named() {
        let mut campus = DigestTrace::new();
        campus.record("seed", 1);
        campus.record("bytes", 2);
        let mut replay = DigestTrace::new();
        replay.record("seed", 1);
        let d = replay.compare(&campus).unwrap_err();
        assert_eq!(d.layer, "layer_count");
    }

    #[test]
    fn bundle_json_is_versioned_and_deterministic() {
        let mut layers = DigestTrace::new();
        layers.record("seed", 11);
        let b = ReplayBundle {
            student: 4,
            seed: derive_seed(42, 4),
            workload: 1,
            shards: 3,
            replica: true,
            digest: 11,
            layers,
            anomalous: true,
            failed: true,
            faults: vec![FaultWindow {
                label: "fault_storm.shard1".to_string(),
                shard: 1,
                onset: SimTime::from_millis(2),
                clear: None,
            }],
        };
        let json = b.to_json();
        assert_eq!(json, b.to_json());
        assert!(json.starts_with("{\"t\":\"replay\",\"v\":1,"));
        assert!(json.contains("\"student\":4"));
        assert!(json.contains("fault_storm.shard1"));
        assert!(json.contains("\"clear_us\":null"));
    }
}
