//! Zero-copy shared payload buffer.
//!
//! [`Payload`] is an immutable byte buffer backed by an `Arc<[u8]>` plus a
//! `[start, end)` window: cloning or slicing one is a reference-count bump
//! and two integer assignments, never a byte copy. The ATM layer uses it so
//! that a 200 KB MPEG PDU segmented into ~4 300 cells shares one backing
//! allocation across every cell, every retransmit, and every replica ship
//! instead of being copied at each hop.
//!
//! Equality, ordering and hashing are by content (like `&[u8]`), not by
//! backing identity, so swapping a deep copy for a `Payload` view is
//! observationally transparent to any code that only reads bytes.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply-cloneable immutable byte buffer: `Arc<[u8]>` + range view.
#[derive(Clone)]
pub struct Payload {
    buf: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Payload {
    /// Empty payload.
    pub fn new() -> Self {
        Payload::from_arc(Arc::from(&[][..]))
    }

    /// Payload holding a copy of `data` (the one unavoidable copy when the
    /// source is a borrowed slice).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Payload::from_arc(Arc::from(data))
    }

    /// Payload viewing an entire shared allocation — no copy.
    pub fn from_arc(buf: Arc<[u8]>) -> Self {
        let end = buf.len();
        Payload { buf, start: 0, end }
    }

    /// Payload viewing `[start, end)` of a shared allocation — no copy.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn from_arc_range(buf: Arc<[u8]>, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= buf.len(), "range out of bounds");
        Payload { buf, start, end }
    }

    /// The shared backing allocation. May be larger than `self` when this
    /// payload is a window into a bigger buffer.
    pub fn backing(&self) -> &Arc<[u8]> {
        &self.buf
    }

    /// This payload's `[start, end)` window within [`Payload::backing`].
    pub fn range(&self) -> (usize, usize) {
        (self.start, self.end)
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-view sharing the same storage — no copy.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Payload {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Payload {
            buf: Arc::clone(&self.buf),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// True when `other` views the same allocation and `self`'s window ends
    /// exactly where `other`'s begins — the zero-copy reassembly test.
    pub fn is_contiguous_with(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf) && self.end == other.start
    }

    /// Mutable access to the bytes, copy-on-write: when the backing
    /// allocation is shared (or this is a window into a larger buffer) the
    /// viewed bytes are first copied into a private allocation. Fault
    /// injection uses this to corrupt cells without disturbing siblings
    /// that share the same storage.
    pub fn make_mut(&mut self) -> &mut [u8] {
        let private =
            self.start == 0 && self.end == self.buf.len() && Arc::get_mut(&mut self.buf).is_some();
        if !private {
            let copy: Arc<[u8]> = Arc::from(&self.buf[self.start..self.end]);
            self.start = 0;
            self.end = copy.len();
            self.buf = copy;
        }
        Arc::get_mut(&mut self.buf).expect("payload buffer just privatized")
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::new()
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Payload {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.len())
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl PartialOrd for Payload {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Payload {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Payload {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::from_arc(Arc::from(v.into_boxed_slice()))
    }
}

impl From<Box<[u8]>> for Payload {
    fn from(v: Box<[u8]>) -> Self {
        Payload::from_arc(Arc::from(v))
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload::copy_from_slice(v)
    }
}

impl<'a> IntoIterator for &'a Payload {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_storage() {
        let p = Payload::from(vec![1u8, 2, 3, 4, 5, 6]);
        let c = p.clone();
        assert!(Arc::ptr_eq(p.backing(), c.backing()));
        let s = p.slice(2..5);
        assert_eq!(&s[..], &[3, 4, 5]);
        assert!(Arc::ptr_eq(p.backing(), s.backing()));
        assert_eq!(s.range(), (2, 5));
        let ss = s.slice(1..3);
        assert_eq!(&ss[..], &[4, 5]);
        assert_eq!(ss.range(), (3, 5));
    }

    #[test]
    fn contiguity_detects_adjacent_windows() {
        let p = Payload::from(vec![0u8; 96]);
        let a = p.slice(0..48);
        let b = p.slice(48..96);
        assert!(a.is_contiguous_with(&b));
        assert!(!b.is_contiguous_with(&a));
        let other = Payload::from(vec![0u8; 96]).slice(48..96);
        assert!(!a.is_contiguous_with(&other), "different allocations");
    }

    #[test]
    fn make_mut_is_copy_on_write() {
        let p = Payload::from(vec![9u8; 8]);
        let mut view = p.slice(2..6);
        view.make_mut()[0] = 0;
        assert_eq!(&view[..], &[0, 9, 9, 9]);
        assert_eq!(&p[..], &[9u8; 8][..], "original untouched");
        assert!(!Arc::ptr_eq(p.backing(), view.backing()));
    }

    #[test]
    fn make_mut_in_place_when_unshared() {
        let mut p = Payload::from(vec![1u8, 2, 3]);
        let before = Arc::as_ptr(p.backing());
        p.make_mut()[1] = 7;
        assert_eq!(&p[..], &[1, 7, 3]);
        assert_eq!(Arc::as_ptr(p.backing()), before, "no copy when private");
    }

    #[test]
    fn equality_is_by_content() {
        let a = Payload::from(vec![1u8, 2, 3]);
        let b = Payload::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a, [1u8, 2, 3][..]);
        let w = Payload::from(vec![0u8, 1, 2, 3, 0]).slice(1..4);
        assert_eq!(a, w);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let p = Payload::from(vec![0u8; 4]);
        let _ = p.slice(1..6);
    }
}
