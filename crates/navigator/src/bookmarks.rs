//! Bookmarks (§5.2.1): "Bookmarks, which save the location of the
//! interesting topics or media objects found during browsing, can be
//! used." Stored per student, ordered by creation.
//!
//! [`DurableBookmarks`] wraps the store in the database crate's
//! journal-before-apply discipline: every add/remove is appended to a
//! write-ahead log before the in-memory state changes, and
//! [`DurableBookmarks::recover`] rebuilds the store from that log —
//! tolerating a torn final record — so a student's bookmarks survive a
//! navigator crash.

use mits_db::{LogDevice, ReplayReport, Wal, WalRecord};
use mits_mheg::MhegId;
use mits_school::StudentNumber;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One saved location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bookmark {
    /// Bookmark id (per student).
    pub id: u32,
    /// The document bookmarked.
    pub document: MhegId,
    /// Unit (scene/page) within it, if any.
    pub unit: Option<u32>,
    /// Student's note.
    pub note: String,
}

/// Per-student bookmark store.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct BookmarkStore {
    by_student: BTreeMap<StudentNumber, Vec<Bookmark>>,
    next_id: u32,
}

impl BookmarkStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Save a bookmark; returns its id.
    pub fn add(
        &mut self,
        student: StudentNumber,
        document: MhegId,
        unit: Option<u32>,
        note: &str,
    ) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.by_student.entry(student).or_default().push(Bookmark {
            id,
            document,
            unit,
            note: note.to_string(),
        });
        id
    }

    /// A student's bookmarks, oldest first.
    pub fn list(&self, student: StudentNumber) -> &[Bookmark] {
        self.by_student
            .get(&student)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Remove a bookmark; returns whether it existed.
    pub fn remove(&mut self, student: StudentNumber, id: u32) -> bool {
        if let Some(list) = self.by_student.get_mut(&student) {
            let before = list.len();
            list.retain(|b| b.id != id);
            return list.len() != before;
        }
        false
    }

    /// Bookmarks pointing at a document (any student) — used when a
    /// course is withdrawn.
    pub fn referencing(&self, document: MhegId) -> usize {
        self.by_student
            .values()
            .flat_map(|v| v.iter())
            .filter(|b| b.document == document)
            .count()
    }

    /// The id the next [`BookmarkStore::add`] will hand out — what a
    /// journal-first wrapper writes to the log before applying.
    pub fn next_id(&self) -> u32 {
        self.next_id
    }

    /// Re-insert a bookmark with its recorded id (journal replay). The
    /// id counter advances past it so later adds never collide.
    pub fn restore(&mut self, student: StudentNumber, bookmark: Bookmark) {
        self.next_id = self.next_id.max(bookmark.id + 1);
        self.by_student.entry(student).or_default().push(bookmark);
    }
}

/// A [`BookmarkStore`] behind a write-ahead log: adds and removes are
/// journaled before they apply, so the store can be rebuilt after a
/// crash by replaying the log.
pub struct DurableBookmarks {
    store: BookmarkStore,
    wal: Wal,
}

impl DurableBookmarks {
    /// An empty durable store journaling to `dev`.
    pub fn new(dev: Box<dyn LogDevice>) -> Self {
        DurableBookmarks {
            store: BookmarkStore::new(),
            wal: Wal::create(dev, 0),
        }
    }

    /// Rebuild a store from a surviving log device, tolerating (and
    /// truncating) a torn final record.
    pub fn recover(dev: Box<dyn LogDevice>) -> (Self, ReplayReport) {
        let (wal, records, report) = Wal::recover(dev);
        let mut store = BookmarkStore::new();
        for (_, rec) in records {
            match rec {
                WalRecord::BookmarkAdd {
                    student,
                    id,
                    document,
                    unit,
                    note,
                } => store.restore(
                    StudentNumber(student),
                    Bookmark {
                        id,
                        document,
                        unit,
                        note,
                    },
                ),
                WalRecord::BookmarkRemove { student, id } => {
                    store.remove(StudentNumber(student), id);
                }
                _ => {}
            }
        }
        (DurableBookmarks { store, wal }, report)
    }

    /// Save a bookmark (journal first); returns its id.
    pub fn add(
        &mut self,
        student: StudentNumber,
        document: MhegId,
        unit: Option<u32>,
        note: &str,
    ) -> u32 {
        let id = self.store.next_id();
        self.wal.append(&WalRecord::BookmarkAdd {
            student: student.0,
            id,
            document,
            unit,
            note: note.to_string(),
        });
        self.store.add(student, document, unit, note)
    }

    /// Remove a bookmark (journal first); returns whether it existed.
    pub fn remove(&mut self, student: StudentNumber, id: u32) -> bool {
        self.wal.append(&WalRecord::BookmarkRemove {
            student: student.0,
            id,
        });
        self.store.remove(student, id)
    }

    /// The underlying store (listing, reference counts).
    pub fn store(&self) -> &BookmarkStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_list_remove() {
        let mut store = BookmarkStore::new();
        let alice = StudentNumber(1);
        let doc = MhegId::new(1, 1);
        let id1 = store.add(alice, doc, Some(3), "great QoS diagram");
        let id2 = store.add(alice, doc, None, "whole course");
        assert_eq!(store.list(alice).len(), 2);
        assert_eq!(store.list(alice)[0].note, "great QoS diagram");
        assert!(store.remove(alice, id1));
        assert!(!store.remove(alice, id1), "already gone");
        assert_eq!(store.list(alice)[0].id, id2);
        assert!(store.list(StudentNumber(2)).is_empty());
    }

    #[test]
    fn ids_unique_across_students() {
        let mut store = BookmarkStore::new();
        let a = store.add(StudentNumber(1), MhegId::new(1, 1), None, "");
        let b = store.add(StudentNumber(2), MhegId::new(1, 1), None, "");
        assert_ne!(a, b);
        assert_eq!(store.referencing(MhegId::new(1, 1)), 2);
        assert_eq!(store.referencing(MhegId::new(9, 9)), 0);
    }

    #[test]
    fn remove_nonexistent_id_is_a_clean_no_op() {
        let mut store = BookmarkStore::new();
        let alice = StudentNumber(1);
        // Unknown student and unknown id both report false, change nothing.
        assert!(!store.remove(alice, 0));
        let id = store.add(alice, MhegId::new(1, 1), None, "keep");
        assert!(!store.remove(alice, id + 1000));
        assert!(!store.remove(StudentNumber(99), id), "wrong student");
        assert_eq!(store.list(alice).len(), 1, "survivor untouched");
    }

    #[test]
    fn referencing_counts_track_removal() {
        let mut store = BookmarkStore::new();
        let doc = MhegId::new(2, 2);
        let a = store.add(StudentNumber(1), doc, Some(1), "");
        let _b = store.add(StudentNumber(2), doc, None, "");
        assert_eq!(store.referencing(doc), 2);
        assert!(store.remove(StudentNumber(1), a));
        assert_eq!(store.referencing(doc), 1, "one reference released");
        // Removing it again must not double-decrement anything.
        assert!(!store.remove(StudentNumber(1), a));
        assert_eq!(store.referencing(doc), 1);
    }

    #[test]
    fn duplicate_add_same_student_and_document_keeps_both() {
        let mut store = BookmarkStore::new();
        let alice = StudentNumber(1);
        let doc = MhegId::new(3, 3);
        let a = store.add(alice, doc, Some(1), "scene one");
        let b = store.add(alice, doc, Some(1), "scene one again");
        assert_ne!(a, b, "duplicates get distinct ids");
        assert_eq!(store.list(alice).len(), 2);
        assert_eq!(store.referencing(doc), 2);
        // Removing one leaves the other.
        assert!(store.remove(alice, a));
        assert_eq!(
            store.list(alice),
            &[Bookmark {
                id: b,
                document: doc,
                unit: Some(1),
                note: "scene one again".into(),
            }]
        );
    }

    #[test]
    fn durable_bookmarks_survive_recovery() {
        use mits_db::SharedLogDevice;
        let dev = SharedLogDevice::new();
        let alice = StudentNumber(7);
        let doc = MhegId::new(4, 4);
        {
            let mut bm = DurableBookmarks::new(Box::new(dev.clone()));
            let a = bm.add(alice, doc, Some(2), "before the crash");
            bm.add(alice, doc, None, "also kept");
            bm.remove(alice, a);
        }
        // "Crash": only the device's bytes survive.
        let (bm, report) = DurableBookmarks::recover(Box::new(dev.clone()));
        assert!(!report.torn_tail);
        assert_eq!(bm.store().list(alice).len(), 1);
        assert_eq!(bm.store().list(alice)[0].note, "also kept");
        assert_eq!(bm.store().referencing(doc), 1);
        // Recovered ids continue past the replayed ones.
        let mut bm = bm;
        let c = bm.add(alice, doc, None, "after recovery");
        assert_eq!(c, 2, "next_id advanced past replayed bookmarks");
    }

    #[test]
    fn durable_recovery_tolerates_torn_tail() {
        use mits_db::SharedLogDevice;
        let dev = SharedLogDevice::new();
        let alice = StudentNumber(1);
        {
            let mut bm = DurableBookmarks::new(Box::new(dev.clone()));
            bm.add(alice, MhegId::new(1, 1), None, "intact");
            bm.add(alice, MhegId::new(1, 2), None, "torn off");
        }
        let mut bytes = dev.snapshot();
        bytes.truncate(bytes.len() - 2);
        let (bm, report) = DurableBookmarks::recover(Box::new(SharedLogDevice::with_data(bytes)));
        assert!(report.torn_tail);
        assert_eq!(bm.store().list(alice).len(), 1);
        assert_eq!(bm.store().list(alice)[0].note, "intact");
    }
}
