//! Bookmarks (§5.2.1): "Bookmarks, which save the location of the
//! interesting topics or media objects found during browsing, can be
//! used." Stored per student, ordered by creation.

use mits_mheg::MhegId;
use mits_school::StudentNumber;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One saved location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bookmark {
    /// Bookmark id (per student).
    pub id: u32,
    /// The document bookmarked.
    pub document: MhegId,
    /// Unit (scene/page) within it, if any.
    pub unit: Option<u32>,
    /// Student's note.
    pub note: String,
}

/// Per-student bookmark store.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct BookmarkStore {
    by_student: BTreeMap<StudentNumber, Vec<Bookmark>>,
    next_id: u32,
}

impl BookmarkStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Save a bookmark; returns its id.
    pub fn add(
        &mut self,
        student: StudentNumber,
        document: MhegId,
        unit: Option<u32>,
        note: &str,
    ) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.by_student.entry(student).or_default().push(Bookmark {
            id,
            document,
            unit,
            note: note.to_string(),
        });
        id
    }

    /// A student's bookmarks, oldest first.
    pub fn list(&self, student: StudentNumber) -> &[Bookmark] {
        self.by_student
            .get(&student)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Remove a bookmark; returns whether it existed.
    pub fn remove(&mut self, student: StudentNumber, id: u32) -> bool {
        if let Some(list) = self.by_student.get_mut(&student) {
            let before = list.len();
            list.retain(|b| b.id != id);
            return list.len() != before;
        }
        false
    }

    /// Bookmarks pointing at a document (any student) — used when a
    /// course is withdrawn.
    pub fn referencing(&self, document: MhegId) -> usize {
        self.by_student
            .values()
            .flat_map(|v| v.iter())
            .filter(|b| b.document == document)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_list_remove() {
        let mut store = BookmarkStore::new();
        let alice = StudentNumber(1);
        let doc = MhegId::new(1, 1);
        let id1 = store.add(alice, doc, Some(3), "great QoS diagram");
        let id2 = store.add(alice, doc, None, "whole course");
        assert_eq!(store.list(alice).len(), 2);
        assert_eq!(store.list(alice)[0].note, "great QoS diagram");
        assert!(store.remove(alice, id1));
        assert!(!store.remove(alice, id1), "already gone");
        assert_eq!(store.list(alice)[0].id, id2);
        assert!(store.list(StudentNumber(2)).is_empty());
    }

    #[test]
    fn ids_unique_across_students() {
        let mut store = BookmarkStore::new();
        let a = store.add(StudentNumber(1), MhegId::new(1, 1), None, "");
        let b = store.add(StudentNumber(2), MhegId::new(1, 1), None, "");
        assert_ne!(a, b);
        assert_eq!(store.referencing(MhegId::new(1, 1)), 2);
        assert_eq!(store.referencing(MhegId::new(9, 9)), 0);
    }
}
