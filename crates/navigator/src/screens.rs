//! The navigator dialog flow (Figures 5.3–5.7) as a state machine.
//!
//! "A student starts the learning session by running a navigator
//! application ... A dialog [Fig 5.3] will be displayed ... The student
//! need to type in his student number to access the virtual school, while
//! a new student ... will have to register first." Once inside, "all the
//! facilities, including administration, classroom presentation, digital
//! library, on-line help, can be accessed by the student through the main
//! window."

use mits_school::{CourseCode, StudentNumber, StudentRegistry};
use serde::{Deserialize, Serialize};

/// Which screen is on display.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Screen {
    /// Fig 5.3: welcome video, student-number field, Register Now,
    /// introduction and about buttons.
    Welcome,
    /// Fig 5.4a–c: general information dialogs.
    RegisterGeneral,
    /// Fig 5.4d: program/course selection.
    RegisterCourses,
    /// The main window: administration / classroom / library / help.
    Main,
    /// Fig 5.5: course presentation.
    Classroom {
        /// The course being presented.
        course: CourseCode,
    },
    /// Fig 5.6: profile update.
    ProfileUpdate,
    /// Fig 5.7: library browsing.
    Library,
    /// Watching the welcome/introduction video clip.
    IntroductionVideo,
    /// Session terminated ("exit" clicked); state saved.
    Exited,
}

/// User interface events the student can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UiEvent {
    /// Typed a student number on the welcome screen.
    EnterStudentNumber(StudentNumber),
    /// Clicked "Register Now".
    ClickRegister,
    /// Clicked "Introduction".
    ClickIntroduction,
    /// Filled the general-information dialogs.
    SubmitGeneralInfo {
        /// Student name.
        name: String,
        /// Mailing address.
        address: String,
        /// E-mail.
        email: String,
    },
    /// Selected a course to register for (Fig 5.4d "select").
    SelectCourse(CourseCode),
    /// Finished course registration ("continue").
    FinishRegistration,
    /// Main-window navigation.
    OpenClassroom(CourseCode),
    /// Open the profile-update screen.
    OpenAdministration,
    /// Open the library.
    OpenLibrary,
    /// Update profile fields (Fig 5.6).
    SubmitProfile {
        /// New address, if changed.
        address: Option<String>,
        /// New e-mail, if changed.
        email: Option<String>,
    },
    /// Return to the main window.
    Back,
    /// Exit the navigator.
    Exit,
}

/// What an event produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UiOutcome {
    /// Moved to a new screen.
    Moved,
    /// Registration completed; the school issued this number.
    Registered(StudentNumber),
    /// Event rejected with a reason (stays on the current screen).
    Rejected(String),
}

/// The navigator UI shell.
#[derive(Debug)]
pub struct NavigatorUi {
    screen: Screen,
    student: Option<StudentNumber>,
    pending_registration: Option<StudentNumber>,
    /// Step log: (screen left, event description) — the F5.x trace.
    pub log: Vec<String>,
}

impl Default for NavigatorUi {
    fn default() -> Self {
        Self::new()
    }
}

impl NavigatorUi {
    /// A navigator showing the welcome screen.
    pub fn new() -> Self {
        NavigatorUi {
            screen: Screen::Welcome,
            student: None,
            pending_registration: None,
            log: vec!["navigator started: welcome screen".to_string()],
        }
    }

    /// The screen on display.
    pub fn screen(&self) -> &Screen {
        &self.screen
    }

    /// The authenticated student, if any.
    pub fn student(&self) -> Option<StudentNumber> {
        self.student
    }

    fn goto(&mut self, s: Screen, note: &str) -> UiOutcome {
        self.log.push(note.to_string());
        self.screen = s;
        UiOutcome::Moved
    }

    fn reject(&mut self, why: &str) -> UiOutcome {
        self.log.push(format!("rejected: {why}"));
        UiOutcome::Rejected(why.to_string())
    }

    /// Feed one UI event, mutating school state where the dialogs do.
    pub fn handle(&mut self, event: UiEvent, school: &mut StudentRegistry) -> UiOutcome {
        match (&self.screen.clone(), event) {
            // ---- welcome (Fig 5.3) ----
            (Screen::Welcome, UiEvent::EnterStudentNumber(n)) => {
                if school.lookup(n).is_some() {
                    self.student = Some(n);
                    self.goto(Screen::Main, &format!("{n} entered the TeleSchool"))
                } else {
                    self.reject("unknown student number")
                }
            }
            (Screen::Welcome, UiEvent::ClickRegister) => {
                self.goto(Screen::RegisterGeneral, "registration started")
            }
            (Screen::Welcome, UiEvent::ClickIntroduction) => {
                self.goto(Screen::IntroductionVideo, "watching introduction video")
            }
            (Screen::IntroductionVideo, UiEvent::Back) => {
                self.goto(Screen::Welcome, "introduction finished")
            }
            // ---- registration (Fig 5.4) ----
            (
                Screen::RegisterGeneral,
                UiEvent::SubmitGeneralInfo {
                    name,
                    address,
                    email,
                },
            ) => {
                if name.trim().is_empty() {
                    return self.reject("name is required");
                }
                let number = school.register(&name, &address, &email);
                self.pending_registration = Some(number);
                self.goto(
                    Screen::RegisterCourses,
                    &format!("profile stored; provisional number {number}"),
                )
            }
            (Screen::RegisterCourses, UiEvent::SelectCourse(code)) => {
                let Some(number) = self.pending_registration else {
                    return self.reject("no registration in progress");
                };
                match school.enroll(number, &code) {
                    Ok(()) => {
                        self.log.push(format!("enrolled in {}", code.0));
                        UiOutcome::Moved
                    }
                    Err(e) => self.reject(&e.to_string()),
                }
            }
            (Screen::RegisterCourses, UiEvent::FinishRegistration) => {
                let Some(number) = self.pending_registration.take() else {
                    return self.reject("no registration in progress");
                };
                self.student = Some(number);
                self.log
                    .push(format!("registration finished: student number {number}"));
                self.screen = Screen::Main;
                UiOutcome::Registered(number)
            }
            // ---- main window ----
            (Screen::Main, UiEvent::OpenClassroom(code)) => {
                let Some(student) = self.student else {
                    return self.reject("not authenticated");
                };
                let enrolled = school
                    .lookup(student)
                    .is_some_and(|s| s.enrollment(&code).is_some());
                if !enrolled {
                    return self.reject("not enrolled in this course");
                }
                self.goto(
                    Screen::Classroom {
                        course: code.clone(),
                    },
                    &format!("classroom opened for {}", code.0),
                )
            }
            (Screen::Main, UiEvent::OpenAdministration) => {
                self.goto(Screen::ProfileUpdate, "administration opened")
            }
            (Screen::Main, UiEvent::OpenLibrary) => self.goto(Screen::Library, "library opened"),
            (Screen::Main, UiEvent::Exit) => self.goto(Screen::Exited, "session ended"),
            // ---- profile update (Fig 5.6) ----
            (Screen::ProfileUpdate, UiEvent::SubmitProfile { address, email }) => {
                let Some(student) = self.student else {
                    return self.reject("not authenticated");
                };
                match school.update_profile(student, address.as_deref(), email.as_deref()) {
                    Ok(()) => self.goto(Screen::Main, "profile updated"),
                    Err(e) => self.reject(&e.to_string()),
                }
            }
            // ---- generic back/exit ----
            (Screen::Classroom { .. }, UiEvent::Back)
            | (Screen::Library, UiEvent::Back)
            | (Screen::ProfileUpdate, UiEvent::Back) => self.goto(Screen::Main, "back to main"),
            (Screen::Classroom { .. }, UiEvent::Exit)
            | (Screen::Library, UiEvent::Exit)
            | (Screen::ProfileUpdate, UiEvent::Exit) => {
                self.goto(Screen::Exited, "session ended from inner screen")
            }
            // Anything else is not wired on that screen.
            (s, e) => self.reject(&format!("event {e:?} not available on {s:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mits_school::Course;

    fn school() -> StudentRegistry {
        let mut reg = StudentRegistry::new();
        reg.add_program("Telecom");
        reg.add_course(Course {
            code: CourseCode("TEL101".into()),
            name: "ATM Networks".into(),
            program: "Telecom".into(),
            planned_sessions: 10,
            courseware: None,
        })
        .unwrap();
        reg
    }

    #[test]
    fn full_registration_flow() {
        let mut reg = school();
        let mut ui = NavigatorUi::new();
        assert_eq!(ui.screen(), &Screen::Welcome);
        ui.handle(UiEvent::ClickRegister, &mut reg);
        assert_eq!(ui.screen(), &Screen::RegisterGeneral);
        ui.handle(
            UiEvent::SubmitGeneralInfo {
                name: "Alice".into(),
                address: "1 Main".into(),
                email: "a@x".into(),
            },
            &mut reg,
        );
        assert_eq!(ui.screen(), &Screen::RegisterCourses);
        assert_eq!(
            ui.handle(UiEvent::SelectCourse(CourseCode("TEL101".into())), &mut reg),
            UiOutcome::Moved
        );
        let outcome = ui.handle(UiEvent::FinishRegistration, &mut reg);
        let UiOutcome::Registered(number) = outcome else {
            panic!("{outcome:?}")
        };
        assert_eq!(ui.screen(), &Screen::Main);
        assert_eq!(ui.student(), Some(number));
        assert_eq!(reg.lookup(number).unwrap().find_number_of_course(), 1);
    }

    #[test]
    fn returning_student_enters_directly() {
        let mut reg = school();
        let n = reg.register("Bob", "", "");
        let mut ui = NavigatorUi::new();
        ui.handle(UiEvent::EnterStudentNumber(n), &mut reg);
        assert_eq!(ui.screen(), &Screen::Main);
        let mut ui2 = NavigatorUi::new();
        let out = ui2.handle(UiEvent::EnterStudentNumber(StudentNumber(999)), &mut reg);
        assert!(matches!(out, UiOutcome::Rejected(_)));
        assert_eq!(ui2.screen(), &Screen::Welcome, "stays on welcome");
    }

    #[test]
    fn classroom_requires_enrollment() {
        let mut reg = school();
        let n = reg.register("Bob", "", "");
        let mut ui = NavigatorUi::new();
        ui.handle(UiEvent::EnterStudentNumber(n), &mut reg);
        let out = ui.handle(
            UiEvent::OpenClassroom(CourseCode("TEL101".into())),
            &mut reg,
        );
        assert!(matches!(out, UiOutcome::Rejected(_)), "not enrolled");
        reg.enroll(n, &CourseCode("TEL101".into())).unwrap();
        let out = ui.handle(
            UiEvent::OpenClassroom(CourseCode("TEL101".into())),
            &mut reg,
        );
        assert_eq!(out, UiOutcome::Moved);
        assert!(matches!(ui.screen(), Screen::Classroom { .. }));
    }

    #[test]
    fn profile_update_round_trip() {
        let mut reg = school();
        let n = reg.register("Bob", "old", "old@x");
        let mut ui = NavigatorUi::new();
        ui.handle(UiEvent::EnterStudentNumber(n), &mut reg);
        ui.handle(UiEvent::OpenAdministration, &mut reg);
        assert_eq!(ui.screen(), &Screen::ProfileUpdate);
        ui.handle(
            UiEvent::SubmitProfile {
                address: Some("new".into()),
                email: None,
            },
            &mut reg,
        );
        assert_eq!(ui.screen(), &Screen::Main);
        assert_eq!(reg.lookup(n).unwrap().address, "new");
    }

    #[test]
    fn empty_name_rejected_at_registration() {
        let mut reg = school();
        let mut ui = NavigatorUi::new();
        ui.handle(UiEvent::ClickRegister, &mut reg);
        let out = ui.handle(
            UiEvent::SubmitGeneralInfo {
                name: "  ".into(),
                address: "".into(),
                email: "".into(),
            },
            &mut reg,
        );
        assert!(matches!(out, UiOutcome::Rejected(_)));
        assert_eq!(reg.student_count(), 0, "nothing stored");
    }

    #[test]
    fn introduction_video_and_back() {
        let mut reg = school();
        let mut ui = NavigatorUi::new();
        ui.handle(UiEvent::ClickIntroduction, &mut reg);
        assert_eq!(ui.screen(), &Screen::IntroductionVideo);
        ui.handle(UiEvent::Back, &mut reg);
        assert_eq!(ui.screen(), &Screen::Welcome);
    }

    #[test]
    fn exit_from_anywhere_saves_log() {
        let mut reg = school();
        let n = reg.register("Bob", "", "");
        let mut ui = NavigatorUi::new();
        ui.handle(UiEvent::EnterStudentNumber(n), &mut reg);
        ui.handle(UiEvent::OpenLibrary, &mut reg);
        ui.handle(UiEvent::Exit, &mut reg);
        assert_eq!(ui.screen(), &Screen::Exited);
        assert!(ui.log.iter().any(|l| l.contains("library opened")));
        assert!(ui.log.iter().any(|l| l.contains("session ended")));
    }

    #[test]
    fn wrong_screen_events_rejected() {
        let mut reg = school();
        let mut ui = NavigatorUi::new();
        let out = ui.handle(UiEvent::OpenLibrary, &mut reg);
        assert!(matches!(out, UiOutcome::Rejected(_)), "not on main screen");
    }
}
