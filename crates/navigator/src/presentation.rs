//! The classroom presentation (§3.4.3, Fig 5.5).
//!
//! "The courseware navigator controls the presentation process according
//! to a scenario pre-defined by an author. Meanwhile it handles the
//! users' interaction through a GUI." A [`PresentationSession`] owns one
//! MHEG engine, loads a fetched object set, and exposes exactly what a
//! renderer needs: the visible elements, the clickable elements, the
//! current unit (scene/page) and completion state — plus resume-position
//! support (§5.4: "the courseware can automatically start the course
//! presentation at the right place when a student enters again").

use mits_mheg::action::{ActionEntry, ElementaryAction, TargetRef};
use mits_mheg::{
    EngineError, GenericValue, MhegEngine, MhegId, MhegObject, ObjectBody, PresentationEvent,
    RtState,
};
use mits_sim::SimTime;
use std::collections::HashMap;
use std::fmt;

/// Errors from the presentation session.
#[derive(Debug, Clone, PartialEq)]
pub enum NavError {
    /// No entry composite matching the course name was found.
    NoEntryPoint(String),
    /// Named element not found / not clickable right now.
    NoSuchElement(String),
    /// Underlying engine error.
    Engine(EngineError),
    /// Resume unit out of range.
    BadResumeUnit(usize),
}

impl fmt::Display for NavError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NavError::NoEntryPoint(n) => write!(f, "courseware '{n}' has no entry composite"),
            NavError::NoSuchElement(n) => write!(f, "no clickable element '{n}'"),
            NavError::Engine(e) => write!(f, "engine: {e}"),
            NavError::BadResumeUnit(u) => write!(f, "resume unit {u} out of range"),
        }
    }
}

impl std::error::Error for NavError {}

impl From<EngineError> for NavError {
    fn from(e: EngineError) -> Self {
        NavError::Engine(e)
    }
}

/// One element the renderer would draw right now.
#[derive(Debug, Clone, PartialEq)]
pub struct VisibleElement {
    /// Object name (from the interchanged object info).
    pub name: String,
    /// Screen position.
    pub position: (i32, i32),
    /// Display size.
    pub size: (u32, u32),
    /// Is it clickable right now?
    pub interactive: bool,
    /// Is the element running at reduced fidelity (placeholder or
    /// cached stand-in because its bulk content never arrived)?
    pub degraded: bool,
}

/// A classroom presentation of one courseware.
pub struct PresentationSession {
    engine: MhegEngine,
    course: String,
    entry: MhegId,
    units: Vec<MhegId>,
    position_flag: Option<MhegId>,
    completion_flag: Option<MhegId>,
    names: HashMap<MhegId, String>,
    degraded: std::collections::BTreeSet<String>,
}

impl PresentationSession {
    /// Load a fetched object set for the course named `course`.
    ///
    /// The entry composite is located by the shared naming convention
    /// (composite named like the course); its components are the units
    /// (scenes/pages) in document order.
    pub fn load(objects: Vec<MhegObject>, course: &str) -> Result<Self, NavError> {
        let mut engine = MhegEngine::new();
        let mut entry = None;
        let mut position_flag = None;
        let mut completion_flag = None;
        let mut names = HashMap::new();
        let mut units = Vec::new();
        for obj in &objects {
            names.insert(obj.id, obj.info.name.clone());
            match &obj.body {
                ObjectBody::Composite(c) if obj.info.name == course => {
                    entry = Some(obj.id);
                    units = c.components.clone();
                }
                ObjectBody::Content(_) if obj.info.name == "position-flag" => {
                    position_flag = Some(obj.id);
                }
                ObjectBody::Content(_) if obj.info.name == "completion-flag" => {
                    completion_flag = Some(obj.id);
                }
                _ => {}
            }
        }
        let entry = entry.ok_or_else(|| NavError::NoEntryPoint(course.to_string()))?;
        for obj in objects {
            engine.ingest(obj);
        }
        Ok(PresentationSession {
            engine,
            course: course.to_string(),
            entry,
            units,
            position_flag,
            completion_flag,
            names,
            degraded: std::collections::BTreeSet::new(),
        })
    }

    /// Course name.
    pub fn course(&self) -> &str {
        &self.course
    }

    /// Number of units (scenes/pages).
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Begin presentation from the first unit.
    pub fn start(&mut self) -> Result<(), NavError> {
        self.engine.new_rt(self.entry)?;
        self.engine.apply_entry(&ActionEntry::now(
            TargetRef::Model(self.entry),
            vec![ElementaryAction::Run],
        ))?;
        Ok(())
    }

    /// Begin presentation at unit `unit` — the resume path. The unit's
    /// own start-up records the position flag, so resuming is exactly
    /// "run scene k".
    pub fn resume(&mut self, unit: usize) -> Result<(), NavError> {
        if unit >= self.units.len() {
            return Err(NavError::BadResumeUnit(unit));
        }
        if unit == 0 {
            return self.start();
        }
        self.engine.new_rt(self.entry)?;
        // Run the document composite but immediately redirect: stop the
        // auto-started first unit, run the saved one.
        self.engine.apply_entry(&ActionEntry::now(
            TargetRef::Model(self.entry),
            vec![ElementaryAction::Run],
        ))?;
        self.engine.apply_entry(&ActionEntry::now(
            TargetRef::Model(self.units[0]),
            vec![ElementaryAction::Stop],
        ))?;
        self.engine.apply_entry(&ActionEntry::now(
            TargetRef::Model(self.units[unit]),
            vec![ElementaryAction::Run],
        ))?;
        Ok(())
    }

    /// Advance the presentation clock.
    pub fn advance(&mut self, to: SimTime) -> Result<(), NavError> {
        self.engine.advance(to)?;
        Ok(())
    }

    /// Engine clock.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Current unit index, from the position flag.
    pub fn current_unit(&self) -> Option<usize> {
        let flag = self.position_flag?;
        let rt = self.engine.rt_of_model(flag)?;
        match &self.engine.rt(rt)?.attrs.data {
            GenericValue::Int(i) if *i >= 0 => Some(*i as usize),
            _ => None,
        }
    }

    /// Mark the element named `name` as degraded: its bulk content could
    /// not be fetched, so the renderer shows a placeholder (or a cached
    /// lower-fidelity copy) instead of failing the whole presentation.
    pub fn mark_degraded(&mut self, name: &str) {
        self.degraded.insert(name.to_string());
    }

    /// Names of every element currently running at reduced fidelity.
    pub fn degraded_elements(&self) -> impl Iterator<Item = &str> {
        self.degraded.iter().map(String::as_str)
    }

    /// Is any element degraded?
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }

    /// Has the course completed?
    pub fn completed(&self) -> bool {
        let Some(flag) = self.completion_flag else {
            return false;
        };
        let Some(rt) = self.engine.rt_of_model(flag) else {
            return false;
        };
        matches!(
            self.engine.rt(rt).map(|r| &r.attrs.data),
            Some(GenericValue::Int(1))
        )
    }

    /// Click the element whose object name is `name`, or whose
    /// `button:`/`choice:` label is `name`. Only interactive, live
    /// elements accept clicks.
    pub fn click(&mut self, name: &str) -> Result<(), NavError> {
        let target = self
            .find_live(name, true)
            .ok_or_else(|| NavError::NoSuchElement(name.to_string()))?;
        let accepted = self.engine.user_select(target)?;
        if !accepted {
            return Err(NavError::NoSuchElement(name.to_string()));
        }
        Ok(())
    }

    /// Type text into a live entry field named `name`.
    pub fn type_into(&mut self, name: &str, text: &str) -> Result<(), NavError> {
        let target = self
            .find_live(name, true)
            .ok_or_else(|| NavError::NoSuchElement(name.to_string()))?;
        let accepted = self
            .engine
            .user_input(target, GenericValue::Str(text.to_string()))?;
        if !accepted {
            return Err(NavError::NoSuchElement(name.to_string()));
        }
        Ok(())
    }

    fn matches_name(stored: &str, wanted: &str) -> bool {
        stored == wanted
            || stored.strip_prefix("button:") == Some(wanted)
            || stored.strip_prefix("choice:") == Some(wanted)
            || stored.strip_prefix("menu-item:") == Some(wanted)
            || stored.strip_prefix("word:") == Some(wanted)
    }

    /// Find a live (running) rt by object name; `need_interactive`
    /// restricts to clickable ones.
    fn find_live(&self, name: &str, need_interactive: bool) -> Option<mits_mheg::RtId> {
        // Prefer the running, interactive instance among same-named
        // objects (different scenes may reuse labels).
        let mut fallback = None;
        for (model, stored) in &self.names {
            if !Self::matches_name(stored, name) {
                continue;
            }
            let Some(rt_id) = self.engine.rt_of_model(*model) else {
                continue;
            };
            let Some(rt) = self.engine.rt(rt_id) else {
                continue;
            };
            if need_interactive && !rt.attrs.interactive {
                continue;
            }
            if rt.state == RtState::Running {
                return Some(rt_id);
            }
            fallback = Some(rt_id);
        }
        fallback
    }

    /// What a renderer would draw right now (running, visible content).
    pub fn visible(&self) -> Vec<VisibleElement> {
        let mut out = Vec::new();
        for (model, name) in &self.names {
            let Some(rt_id) = self.engine.rt_of_model(*model) else {
                continue;
            };
            let Some(rt) = self.engine.rt(rt_id) else {
                continue;
            };
            if rt.state != RtState::Running || !rt.attrs.visible || !rt.is_presentable() {
                continue;
            }
            if name == "position-flag" || name == "completion-flag" || name == "scene-timer" {
                continue; // infrastructure objects are not rendered
            }
            out.push(VisibleElement {
                name: name.clone(),
                position: rt.attrs.position,
                size: rt.attrs.size,
                interactive: rt.attrs.interactive,
                degraded: self.degraded.contains(name),
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Build an MCI player positioned to mirror a live media element —
    /// the §5.2.2 bridge: the navigator hands each visible time-based
    /// medium to its OLE-registered player. The player is opened and, if
    /// the element is running, started at the element's current media
    /// position.
    pub fn mci_player(
        &self,
        name: &str,
        media: &mits_media::MediaObject,
    ) -> Result<mits_media::MciPlayer, NavError> {
        use mits_media::MciCommand;
        let rt_id = self
            .find_live(name, false)
            .ok_or_else(|| NavError::NoSuchElement(name.to_string()))?;
        let rt = self.engine.rt(rt_id).expect("live rt");
        let mut player = mits_media::MciPlayer::new(media);
        let now = self.engine.now();
        player
            .command(now, MciCommand::Open)
            .expect("open never fails");
        if rt.state == RtState::Running {
            let pos_ms = rt.progress(now).as_millis();
            player
                .command(
                    now,
                    MciCommand::Play {
                        from: Some(pos_ms.min(media.duration.as_millis())),
                        to: None,
                    },
                )
                .map_err(|e| NavError::NoSuchElement(e.to_string()))?;
        }
        Ok(player)
    }

    /// Drain presentation events (for logging / rendering).
    pub fn events(&mut self) -> Vec<PresentationEvent> {
        self.engine.take_events()
    }

    /// Engine statistics (for the experiment tables).
    pub fn engine_stats(&self) -> mits_mheg::engine::EngineStats {
        self.engine.stats
    }

    /// Snapshot the session's MHEG engine counters and degradation state
    /// into `reg`: engine action rates under `mheg.*`, plus the number
    /// of degraded elements and completion under `presentation.*`.
    pub fn export_metrics(&self, reg: &mits_sim::MetricsRegistry) {
        self.engine.stats.export_metrics(reg, "mheg");
        reg.counter_set("presentation.degraded_elements", self.degraded.len() as u64);
        reg.gauge_set(
            "presentation.completed",
            if self.completed() { 1.0 } else { 0.0 },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mits_author::compile_hyperdoc;
    use mits_author::{
        compile_imd, Behavior, BehaviorAction, BehaviorCondition, ElementKind, HyperDocument,
        ImDocument, MediaHandle, Scene, Section, Subsection, TimelineEntry,
    };
    use mits_media::{MediaFormat, MediaId, VideoDims};
    use mits_sim::SimDuration;

    fn video(id: u64, secs: u64) -> MediaHandle {
        MediaHandle {
            media: MediaId(id),
            format: MediaFormat::Mpeg,
            duration: SimDuration::from_secs(secs),
            dims: VideoDims::new(320, 240),
            name: format!("video{id}.mpg"),
        }
    }

    fn course() -> (Vec<MhegObject>, String) {
        let mut doc = ImDocument::new("ATM Course");
        doc.sections.push(Section {
            title: "intro".into(),
            subsections: vec![Subsection {
                title: "basics".into(),
                scenes: vec![
                    Scene::new("welcome")
                        .element("video1", ElementKind::Media(video(1, 3)))
                        .element("skip", ElementKind::Button("Skip".into()))
                        .entry(TimelineEntry::at_start("video1"))
                        .entry(TimelineEntry::at_start("skip").at(10, 200))
                        .behavior(Behavior::when(
                            BehaviorCondition::Clicked("skip".into()),
                            vec![BehaviorAction::NextScene],
                        )),
                    Scene::new("lesson")
                        .element("text1", ElementKind::Caption("cells are 53 bytes".into()))
                        .entry(
                            TimelineEntry::at_start("text1")
                                .for_duration(SimDuration::from_secs(2)),
                        ),
                ],
            }],
        });
        let compiled = compile_imd(30, &doc);
        (compiled.objects, "ATM Course".into())
    }

    #[test]
    fn load_start_and_observe() {
        let (objects, name) = course();
        let mut p = PresentationSession::load(objects, &name).unwrap();
        assert_eq!(p.unit_count(), 2);
        p.start().unwrap();
        assert_eq!(p.current_unit(), Some(0));
        let visible = p.visible();
        assert!(visible.iter().any(|v| v.name == "video1.mpg"));
        assert!(visible
            .iter()
            .any(|v| v.name.contains("Skip") && v.interactive));
        assert!(!p.completed());
    }

    #[test]
    fn serial_playback_completes() {
        let (objects, name) = course();
        let mut p = PresentationSession::load(objects, &name).unwrap();
        p.start().unwrap();
        p.advance(SimTime::from_secs(10)).unwrap();
        assert_eq!(p.current_unit(), Some(1));
        assert!(p.completed(), "3 s video + 2 s caption < 10 s");
    }

    #[test]
    fn click_skips_ahead() {
        let (objects, name) = course();
        let mut p = PresentationSession::load(objects, &name).unwrap();
        p.start().unwrap();
        p.advance(SimTime::from_secs(1)).unwrap();
        p.click("Skip").unwrap();
        assert_eq!(p.current_unit(), Some(1), "behavior jumped to lesson");
        // Clicking again fails: the button's scene stopped.
        assert!(p.click("Skip").is_err());
    }

    #[test]
    fn resume_at_saved_unit() {
        let (objects, name) = course();
        let mut p = PresentationSession::load(objects, &name).unwrap();
        p.resume(1).unwrap();
        assert_eq!(p.current_unit(), Some(1));
        // The lesson caption is on screen without playing the intro.
        assert!(p.visible().iter().any(|v| v.name == "caption"));
        assert!(matches!(
            PresentationSession::load(course().0, "ATM Course")
                .unwrap()
                .resume(9),
            Err(NavError::BadResumeUnit(9))
        ));
    }

    #[test]
    fn missing_entry_point_rejected() {
        let (objects, _) = course();
        assert!(matches!(
            PresentationSession::load(objects, "Wrong Name"),
            Err(NavError::NoEntryPoint(_))
        ));
    }

    #[test]
    fn unknown_click_rejected() {
        let (objects, name) = course();
        let mut p = PresentationSession::load(objects, &name).unwrap();
        p.start().unwrap();
        assert!(matches!(
            p.click("No Such Button"),
            Err(NavError::NoSuchElement(_))
        ));
    }

    #[test]
    fn hyperdoc_presentation_navigates() {
        let doc = HyperDocument::figure_4_3_example();
        let compiled = compile_hyperdoc(31, &doc);
        let mut p =
            PresentationSession::load(compiled.objects, "Fig 4.3 navigation example").unwrap();
        p.start().unwrap();
        assert_eq!(p.current_unit(), Some(0));
        p.click("Test Your Knowledge").unwrap();
        assert_eq!(p.current_unit(), Some(2));
        p.click("53 bytes").unwrap();
        assert_eq!(p.current_unit(), Some(4), "correct answer page");
    }

    #[test]
    fn mci_player_mirrors_presentation_position() {
        use mits_media::{CaptureSpec, PlayerState, ProductionCenter};
        let mut studio = ProductionCenter::new(77);
        let clip = studio.capture(&CaptureSpec::video(
            "video1.mpg",
            MediaFormat::Mpeg,
            SimDuration::from_secs(5),
            VideoDims::new(160, 120),
        ));
        let mut doc = ImDocument::new("MCI Course");
        doc.sections.push(Section {
            title: "s".into(),
            subsections: vec![Subsection {
                title: "ss".into(),
                scenes: vec![Scene::new("only")
                    .element("v", ElementKind::Media((&clip).into()))
                    .entry(TimelineEntry::at_start("v"))],
            }],
        });
        let compiled = compile_imd(32, &doc);
        let mut p = PresentationSession::load(compiled.objects, "MCI Course").unwrap();
        p.start().unwrap();
        p.advance(mits_sim::SimTime::from_millis(1_500)).unwrap();
        let player = p.mci_player("video1.mpg", &clip).unwrap();
        assert_eq!(player.state(), PlayerState::Playing);
        assert_eq!(
            player.position_ms(p.now()),
            1_500,
            "player tracks engine progress"
        );
        // A missing element has no player.
        assert!(p.mci_player("ghost.mpg", &clip).is_err());
    }

    #[test]
    fn degraded_elements_surface_to_the_renderer() {
        let (objects, name) = course();
        let mut p = PresentationSession::load(objects, &name).unwrap();
        p.start().unwrap();
        assert!(!p.is_degraded());
        p.mark_degraded("video1.mpg");
        assert!(p.is_degraded());
        assert_eq!(
            p.degraded_elements().collect::<Vec<_>>(),
            vec!["video1.mpg"]
        );
        let visible = p.visible();
        let video = visible.iter().find(|v| v.name == "video1.mpg").unwrap();
        assert!(video.degraded, "renderer sees the placeholder flag");
        assert!(visible
            .iter()
            .filter(|v| v.name != "video1.mpg")
            .all(|v| !v.degraded));
    }

    #[test]
    fn infrastructure_objects_hidden_from_renderer() {
        let (objects, name) = course();
        let mut p = PresentationSession::load(objects, &name).unwrap();
        p.start().unwrap();
        let names: Vec<String> = p.visible().iter().map(|v| v.name.clone()).collect();
        assert!(
            !names
                .iter()
                .any(|n| n.contains("flag") || n.contains("timer")),
            "{names:?}"
        );
    }
}
