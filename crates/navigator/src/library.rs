//! Library browsing (Fig 5.7): "textbooks, reference books, and other
//! related documents in any kinds of media types should be provided for
//! the students to browse. ... new areas of interests may be found and
//! explored provided with the strong cross-reference capability of the
//! hypermedia information structure."
//!
//! The browser walks the database's keyword tree, narrowing or widening
//! the current path, and resolves documents through the `Get_List_Doc` /
//! `GetDocByKeyword` responses it is fed.

use mits_db::KeywordTree;
use mits_mheg::MhegId;

/// A headless library browser over a fetched keyword tree + doc list.
#[derive(Debug, Clone)]
pub struct LibraryBrowser {
    tree: KeywordTree,
    docs: Vec<(MhegId, String)>,
    path: Vec<String>,
}

impl LibraryBrowser {
    /// A browser over the given taxonomy and document list.
    pub fn new(tree: KeywordTree, docs: Vec<(MhegId, String)>) -> Self {
        LibraryBrowser {
            tree,
            docs,
            path: Vec::new(),
        }
    }

    /// Current keyword path as a string ("telecom/atm"; empty at root).
    pub fn current_path(&self) -> String {
        self.path.join("/")
    }

    /// Child keywords under the current path, with subtree document
    /// counts — the shelf listing.
    pub fn shelves(&self) -> Vec<(String, usize)> {
        let prefix = self.current_path();
        self.tree
            .outline()
            .into_iter()
            .filter_map(|(path, _)| {
                let rest = if prefix.is_empty() {
                    path.as_str()
                } else {
                    path.strip_prefix(&format!("{prefix}/"))?
                };
                if rest.contains('/') || rest.is_empty() {
                    return None;
                }
                let count = self.tree.lookup_subtree(&path).len();
                Some((rest.to_string(), count))
            })
            .collect()
    }

    /// Descend into a child keyword. Returns false if no such shelf.
    pub fn enter(&mut self, keyword: &str) -> bool {
        if self
            .shelves()
            .iter()
            .any(|(k, _)| k.eq_ignore_ascii_case(keyword))
        {
            self.path.push(keyword.to_ascii_lowercase());
            true
        } else {
            false
        }
    }

    /// Go up one level. Returns false at the root.
    pub fn up(&mut self) -> bool {
        self.path.pop().is_some()
    }

    /// Documents on the current shelf and below, resolved to names.
    pub fn documents(&self) -> Vec<(MhegId, String)> {
        let ids = self.tree.lookup_subtree(&self.current_path());
        ids.into_iter()
            .map(|id| {
                let name = self
                    .docs
                    .iter()
                    .find(|(d, _)| *d == id)
                    .map(|(_, n)| n.clone())
                    .unwrap_or_else(|| id.to_string());
                (id, name)
            })
            .collect()
    }

    /// Find a document id by (case-insensitive) name anywhere in the
    /// library.
    pub fn find_by_name(&self, name: &str) -> Option<MhegId> {
        self.docs
            .iter()
            .find(|(_, n)| n.eq_ignore_ascii_case(name))
            .map(|(id, _)| *id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn browser() -> LibraryBrowser {
        let mut tree = KeywordTree::new();
        let atm_course = MhegId::new(1, 1);
        let qos_notes = MhegId::new(1, 2);
        let bio = MhegId::new(1, 3);
        tree.insert("telecom/atm", atm_course);
        tree.insert("telecom/atm/qos", qos_notes);
        tree.insert("biology", bio);
        LibraryBrowser::new(
            tree,
            vec![
                (atm_course, "ATM Course".into()),
                (qos_notes, "QoS Notes".into()),
                (bio, "Cell Biology".into()),
            ],
        )
    }

    #[test]
    fn shelves_at_root() {
        let b = browser();
        let shelves = b.shelves();
        assert_eq!(shelves.len(), 2);
        assert!(shelves.contains(&("biology".to_string(), 1)));
        assert!(shelves.contains(&("telecom".to_string(), 2)));
    }

    #[test]
    fn walk_down_and_up() {
        let mut b = browser();
        assert!(b.enter("telecom"));
        assert_eq!(b.current_path(), "telecom");
        assert_eq!(b.shelves(), vec![("atm".to_string(), 2)]);
        assert!(b.enter("atm"));
        assert_eq!(b.shelves(), vec![("qos".to_string(), 1)]);
        assert!(!b.enter("nothing"));
        assert!(b.up());
        assert_eq!(b.current_path(), "telecom");
        assert!(b.up());
        assert!(!b.up(), "already at root");
    }

    #[test]
    fn documents_gather_subtree() {
        let mut b = browser();
        b.enter("telecom");
        let docs = b.documents();
        assert_eq!(docs.len(), 2);
        assert!(docs.iter().any(|(_, n)| n == "ATM Course"));
        assert!(docs.iter().any(|(_, n)| n == "QoS Notes"));
    }

    #[test]
    fn find_by_name_case_insensitive() {
        let b = browser();
        assert_eq!(b.find_by_name("atm course"), Some(MhegId::new(1, 1)));
        assert_eq!(b.find_by_name("missing"), None);
    }

    #[test]
    fn unknown_docs_render_as_ids() {
        let mut tree = KeywordTree::new();
        tree.insert("x", MhegId::new(9, 9));
        let b = LibraryBrowser::new(tree, vec![]);
        let docs = b.documents();
        assert_eq!(docs[0].1, "mheg:9/9");
    }
}
