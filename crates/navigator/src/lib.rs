//! # mits-navigator — the courseware navigator (Chapter 5)
//!
//! "The courseware navigator at each user site handles the access to the
//! courseware stored in the database in accordance with pre-defined
//! scenario or user interactions. Through a well-designed GUI, it
//! provides various kinds of learning services to the students in a
//! seamless integrated environment" (§3.2).
//!
//! The prototype's GUI was MFC dialogs on Windows 95; this reproduction
//! is *headless but behaviourally identical*:
//!
//! * [`screens`] — the dialog state machine of Figures 5.3–5.7: welcome
//!   (student number or registration), the registration dialogs, the main
//!   window with administration / classroom / library / help, profile
//!   update, and exit with saved state.
//! * [`presentation`] — the classroom: an MHEG engine loaded with a
//!   fetched courseware, driven by the virtual clock and user clicks;
//!   exposes the visible scene the way a renderer would consume it.
//! * [`library`] — library browsing over the database's keyword tree and
//!   document list (Fig 5.7).
//! * [`bookmarks`] — "bookmarks, which save the location of the
//!   interesting topics or media objects found during browsing" (§5.2.1).
//!
//! Naming convention the compiler and navigator share: a courseware's
//! container and its entry composite carry the course title; the
//! position/completion flags are named `position-flag` and
//! `completion-flag`; buttons are `button:<label>`, choices
//! `choice:<label>`.

pub mod bookmarks;
pub mod library;
pub mod presentation;
pub mod screens;

pub use bookmarks::{Bookmark, BookmarkStore, DurableBookmarks};
pub use library::LibraryBrowser;
pub use presentation::{NavError, PresentationSession, VisibleElement};
pub use screens::{NavigatorUi, Screen, UiEvent, UiOutcome};
