//! Meeting and discussion (§5.2.1): "the students can use this facility
//! to ask questions to the on-line consultants, or discuss or exchange
//! their ideas with other students on a commonly interested topic.
//! E-mail, telephone, and multimedia conferencing facilities are provided
//! for the students to choose from according to the resources available
//! on their platforms."

use crate::records::StudentNumber;
use mits_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A communication facility, ordered by richness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Facility {
    /// Store-and-forward text.
    Email,
    /// Real-time audio.
    Telephone,
    /// Real-time multimedia conferencing.
    Conference,
}

impl Facility {
    /// Pick the richest facility a platform supports, given its access
    /// bandwidth (b/s) and audio hardware — the "according to the
    /// resources available" rule.
    pub fn best_for(bandwidth_bps: u64, has_audio: bool) -> Facility {
        if bandwidth_bps >= 384_000 && has_audio {
            Facility::Conference
        } else if has_audio {
            Facility::Telephone
        } else {
            Facility::Email
        }
    }
}

/// One utterance in a room.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Utterance {
    /// Speaker.
    pub from: StudentNumber,
    /// Time.
    pub at: SimTime,
    /// Text (or a caption of the AV contribution).
    pub text: String,
}

/// A discussion room on a topic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscussionRoom {
    /// Topic under discussion.
    pub topic: String,
    /// Facility in use.
    pub facility: Facility,
    members: BTreeSet<StudentNumber>,
    log: Vec<Utterance>,
}

impl DiscussionRoom {
    /// Open a room.
    pub fn new(topic: &str, facility: Facility) -> Self {
        DiscussionRoom {
            topic: topic.to_string(),
            facility,
            members: BTreeSet::new(),
            log: Vec::new(),
        }
    }

    /// Join; returns false if already present.
    pub fn join(&mut self, s: StudentNumber) -> bool {
        self.members.insert(s)
    }

    /// Leave; returns false if not present.
    pub fn leave(&mut self, s: StudentNumber) -> bool {
        self.members.remove(&s)
    }

    /// Current membership.
    pub fn members(&self) -> impl Iterator<Item = StudentNumber> + '_ {
        self.members.iter().copied()
    }

    /// Say something; only members may speak.
    pub fn say(&mut self, from: StudentNumber, at: SimTime, text: &str) -> bool {
        if !self.members.contains(&from) {
            return false;
        }
        self.log.push(Utterance {
            from,
            at,
            text: text.to_string(),
        });
        true
    }

    /// The transcript.
    pub fn log(&self) -> &[Utterance] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facility_selection_by_resources() {
        assert_eq!(Facility::best_for(155_000_000, true), Facility::Conference);
        assert_eq!(Facility::best_for(128_000, true), Facility::Telephone);
        assert_eq!(Facility::best_for(28_800, false), Facility::Email);
        assert_eq!(
            Facility::best_for(155_000_000, false),
            Facility::Email,
            "no audio, no calls"
        );
    }

    #[test]
    fn membership_gates_speaking() {
        let mut room = DiscussionRoom::new("ATM QoS", Facility::Conference);
        let alice = StudentNumber(1);
        let bob = StudentNumber(2);
        assert!(room.join(alice));
        assert!(!room.join(alice), "double join");
        assert!(room.say(alice, SimTime::ZERO, "what is CDV?"));
        assert!(
            !room.say(bob, SimTime::ZERO, "lurking"),
            "non-members muted"
        );
        room.join(bob);
        assert!(room.say(bob, SimTime::from_secs(5), "delay variation"));
        assert_eq!(room.log().len(), 2);
        assert!(room.leave(bob));
        assert!(!room.leave(bob));
        assert_eq!(room.members().collect::<Vec<_>>(), vec![alice]);
    }
}
