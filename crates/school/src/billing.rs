//! Billing hooks (§5.2.1): registration "leaves some space for the
//! further studying and development of the billing services for the
//! TeleLearning applications". Every billable event lands in a ledger;
//! a simple tariff prices them.

use crate::records::StudentNumber;
use mits_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Billable service kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceKind {
    /// A classroom presentation session (billed per minute).
    Classroom,
    /// Library browsing (per minute).
    Library,
    /// Facilitator consultation (per minute).
    Facilitation,
    /// Flat course registration fee.
    Registration,
}

/// One billing record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BillingRecord {
    /// The student billed.
    pub student: StudentNumber,
    /// Service used.
    pub service: ServiceKind,
    /// When the usage started.
    pub at: SimTime,
    /// Usage length (zero for flat fees).
    pub duration: SimDuration,
}

/// Tariff in millicents to avoid float money.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tariff {
    /// Millicents per minute of classroom.
    pub classroom_per_min: u64,
    /// Millicents per minute of library.
    pub library_per_min: u64,
    /// Millicents per minute of facilitation.
    pub facilitation_per_min: u64,
    /// Flat registration fee, millicents.
    pub registration_flat: u64,
}

impl Default for Tariff {
    fn default() -> Self {
        Tariff {
            classroom_per_min: 5_000,     // 5 ¢/min
            library_per_min: 1_000,       // 1 ¢/min
            facilitation_per_min: 20_000, // 20 ¢/min
            registration_flat: 2_500_000, // $25 flat
        }
    }
}

impl Tariff {
    /// Price one record in millicents.
    pub fn price(&self, r: &BillingRecord) -> u64 {
        let minutes = r.duration.as_micros().div_ceil(60_000_000);
        match r.service {
            ServiceKind::Classroom => self.classroom_per_min * minutes,
            ServiceKind::Library => self.library_per_min * minutes,
            ServiceKind::Facilitation => self.facilitation_per_min * minutes,
            ServiceKind::Registration => self.registration_flat,
        }
    }
}

/// The billing ledger.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct BillingLedger {
    records: Vec<BillingRecord>,
    tariff: Tariff,
}

impl BillingLedger {
    /// A ledger with the default tariff.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a billable usage.
    pub fn record(
        &mut self,
        student: StudentNumber,
        service: ServiceKind,
        at: SimTime,
        duration: SimDuration,
    ) {
        self.records.push(BillingRecord {
            student,
            service,
            at,
            duration,
        });
    }

    /// Total owed by a student, millicents.
    pub fn balance(&self, student: StudentNumber) -> u64 {
        self.records
            .iter()
            .filter(|r| r.student == student)
            .map(|r| self.tariff.price(r))
            .sum()
    }

    /// Itemized statement lines for a student.
    pub fn statement(&self, student: StudentNumber) -> Vec<(ServiceKind, SimTime, u64)> {
        self.records
            .iter()
            .filter(|r| r.student == student)
            .map(|r| (r.service, r.at, self.tariff.price(r)))
            .collect()
    }

    /// All records (administration reporting).
    pub fn records(&self) -> &[BillingRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pricing_rounds_up_to_minutes() {
        let t = Tariff::default();
        let r = BillingRecord {
            student: StudentNumber(1),
            service: ServiceKind::Classroom,
            at: SimTime::ZERO,
            duration: SimDuration::from_secs(61),
        };
        assert_eq!(t.price(&r), 10_000, "61 s bills as 2 minutes");
    }

    #[test]
    fn flat_registration_ignores_duration() {
        let t = Tariff::default();
        let r = BillingRecord {
            student: StudentNumber(1),
            service: ServiceKind::Registration,
            at: SimTime::ZERO,
            duration: SimDuration::ZERO,
        };
        assert_eq!(t.price(&r), 2_500_000);
    }

    #[test]
    fn ledger_balance_and_statement() {
        let mut l = BillingLedger::new();
        let alice = StudentNumber(1);
        let bob = StudentNumber(2);
        l.record(
            alice,
            ServiceKind::Registration,
            SimTime::ZERO,
            SimDuration::ZERO,
        );
        l.record(
            alice,
            ServiceKind::Classroom,
            SimTime::from_secs(100),
            SimDuration::from_secs(600),
        );
        l.record(
            bob,
            ServiceKind::Library,
            SimTime::ZERO,
            SimDuration::from_secs(60),
        );
        assert_eq!(l.balance(alice), 2_500_000 + 50_000);
        assert_eq!(l.balance(bob), 1_000);
        assert_eq!(l.statement(alice).len(), 2);
        assert_eq!(l.records().len(), 3);
    }
}
