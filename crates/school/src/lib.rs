//! # mits-school — the TeleSchool (§5.2, §5.3.3)
//!
//! The navigator's feature set analysis (§5.2.1) lists six service
//! families: administration, classroom presentation, library browsing,
//! meeting & discussing, bulletin board, and exercises. Classroom
//! presentation and the library live with the navigator and database;
//! everything else is school-side state, reproduced here:
//!
//! * [`records`] — the `CStudent` / `CCourse` classes of §5.3.3 and the
//!   registration workflow of Fig 5.4, including program/course catalogs,
//!   profile updates, and the statistics the administration screen shows.
//! * [`facilitator`] — the on-line facilitator service ("when a student
//!   encounters a problem during learning, he can always get facilitation
//!   on demand") and the **SIDL baseline** of §1.3.1: a satellite
//!   broadcast system where "only three calls can be taken at a time,
//!   others will be put into a queue" — experiment E-SIDL contrasts their
//!   waiting-time distributions.
//! * [`bulletin`] — the news-group bulletin board.
//! * [`discussion`] — meeting & discussion rooms (e-mail / telephone /
//!   conferencing choice per available resources).
//! * [`exercise`] — the exercise bank with auto-grading and contests.
//! * [`billing`] — the billing hooks §5.2.1 reserves space for.

pub mod billing;
pub mod bulletin;
pub mod discussion;
pub mod exercise;
pub mod facilitator;
pub mod records;

pub use billing::{BillingLedger, BillingRecord, ServiceKind};
pub use bulletin::BulletinBoard;
pub use discussion::{DiscussionRoom, Facility};
pub use exercise::{Answer, Attempt, ExerciseBank, Grade, Problem, ProblemKind};
pub use facilitator::{simulate_facilitation, FacilitationModel, WaitReport};
pub use records::{Course, CourseCode, Program, Student, StudentNumber, StudentRegistry};
