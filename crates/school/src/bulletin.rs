//! The bulletin board (§5.2.1): "when information is to be published to
//! all the students, bulletin board should be used ... We use news group
//! to achieve this feature." Topics hold posts; per-student read marks
//! give the navigator its "unread" badge.

use crate::records::StudentNumber;
use mits_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// One post in a topic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Post {
    /// Post id within the board.
    pub id: u64,
    /// Author ("administration", or a student number rendered).
    pub author: String,
    /// Posting time.
    pub at: SimTime,
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub body: String,
}

/// The news-group style bulletin board.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct BulletinBoard {
    next_id: u64,
    topics: BTreeMap<String, Vec<Post>>,
    read: BTreeMap<StudentNumber, HashSet<u64>>,
}

impl BulletinBoard {
    /// An empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a post to a topic; returns its id.
    pub fn post(
        &mut self,
        topic: &str,
        author: &str,
        at: SimTime,
        subject: &str,
        body: &str,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.topics
            .entry(topic.to_string())
            .or_default()
            .push(Post {
                id,
                author: author.to_string(),
                at,
                subject: subject.to_string(),
                body: body.to_string(),
            });
        id
    }

    /// Topic names in order.
    pub fn topics(&self) -> Vec<&str> {
        self.topics.keys().map(String::as_str).collect()
    }

    /// Posts in a topic, oldest first.
    pub fn posts(&self, topic: &str) -> &[Post] {
        self.topics.get(topic).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Mark a post read by a student.
    pub fn mark_read(&mut self, student: StudentNumber, post: u64) {
        self.read.entry(student).or_default().insert(post);
    }

    /// Unread posts in a topic for a student.
    pub fn unread(&self, student: StudentNumber, topic: &str) -> Vec<&Post> {
        let read = self.read.get(&student);
        self.posts(topic)
            .iter()
            .filter(|p| read.is_none_or(|r| !r.contains(&p.id)))
            .collect()
    }

    /// Total unread across all topics (the navigator badge).
    pub fn unread_count(&self, student: StudentNumber) -> usize {
        self.topics
            .keys()
            .map(|t| self.unread(student, t).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_list() {
        let mut b = BulletinBoard::new();
        let t0 = SimTime::ZERO;
        b.post(
            "announcements",
            "administration",
            t0,
            "New course",
            "TEL103 opens",
        );
        b.post(
            "announcements",
            "administration",
            t0,
            "Maintenance",
            "offline Sunday",
        );
        b.post(
            "exercise-help",
            "administration",
            t0,
            "Common mistakes",
            "see Q3",
        );
        assert_eq!(b.topics(), vec!["announcements", "exercise-help"]);
        assert_eq!(b.posts("announcements").len(), 2);
        assert_eq!(b.posts("announcements")[0].subject, "New course");
        assert!(b.posts("nothing").is_empty());
    }

    #[test]
    fn read_tracking_per_student() {
        let mut b = BulletinBoard::new();
        let p1 = b.post("news", "admin", SimTime::ZERO, "a", "x");
        let p2 = b.post("news", "admin", SimTime::ZERO, "b", "y");
        let alice = StudentNumber(1);
        let bob = StudentNumber(2);
        assert_eq!(b.unread_count(alice), 2);
        b.mark_read(alice, p1);
        assert_eq!(b.unread_count(alice), 1);
        assert_eq!(b.unread(alice, "news")[0].id, p2);
        assert_eq!(b.unread_count(bob), 2, "bob's marks independent");
    }

    #[test]
    fn ids_are_unique_across_topics() {
        let mut b = BulletinBoard::new();
        let a = b.post("t1", "x", SimTime::ZERO, "s", "b");
        let c = b.post("t2", "x", SimTime::ZERO, "s", "b");
        assert_ne!(a, c);
    }
}
