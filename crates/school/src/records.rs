//! Student and course records (§5.3.3) and the registration workflow
//! (Fig 5.4).
//!
//! "The CStudent class is designed for keep record of all data about a
//! registered student ... The CCourse class is designed to keep record of
//! courses a student has registered for. Course name, planned session to
//! finish a course, course code, as well as the program which provides
//! the courses are member variables."

use mits_mheg::MhegId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A student number — "each time a student accesses a course, it is
/// required that the student number which identifies his registration
/// should be provided".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct StudentNumber(pub u32);

impl std::fmt::Display for StudentNumber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{:06}", self.0)
    }
}

/// A course code within a program.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CourseCode(pub String);

/// A course offered by the school (the catalog side of CCourse).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Course {
    /// Course code ("ELG5378").
    pub code: CourseCode,
    /// Course name.
    pub name: String,
    /// The program offering it.
    pub program: String,
    /// Planned sessions to finish.
    pub planned_sessions: u32,
    /// Courseware root in the database (the multimedia introduction and
    /// content, Fig 5.4d).
    pub courseware: Option<MhegId>,
}

/// A program: a named group of courses (Fig 5.4d lets the student
/// "choose a program, and get a list of courses provided in that
/// program").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Courses in catalog order.
    pub courses: Vec<CourseCode>,
}

/// A student's registration in one course (the per-student CCourse).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Enrollment {
    /// Which course.
    pub code: CourseCode,
    /// Sessions completed so far.
    pub sessions_done: u32,
    /// Saved stop position: (unit index) for course resumption (§5.4).
    pub resume_unit: Option<u32>,
}

/// A registered student (CStudent).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Student {
    /// Registration number.
    pub number: StudentNumber,
    /// Full name.
    pub name: String,
    /// Mailing address (profile data of Fig 5.4b).
    pub address: String,
    /// E-mail.
    pub email: String,
    /// Course enrollments.
    pub enrollments: Vec<Enrollment>,
}

impl Student {
    /// `FindNumberOfCourse()` of §5.3.3.
    pub fn find_number_of_course(&self) -> usize {
        self.enrollments.len()
    }

    /// Enrollment lookup.
    pub fn enrollment(&self, code: &CourseCode) -> Option<&Enrollment> {
        self.enrollments.iter().find(|e| &e.code == code)
    }

    fn enrollment_mut(&mut self, code: &CourseCode) -> Option<&mut Enrollment> {
        self.enrollments.iter_mut().find(|e| &e.code == code)
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Unknown student number.
    UnknownStudent(StudentNumber),
    /// Unknown course code.
    UnknownCourse(String),
    /// Unknown program name.
    UnknownProgram(String),
    /// Student already registered in the course.
    AlreadyEnrolled,
    /// Student not enrolled in the course.
    NotEnrolled,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownStudent(n) => write!(f, "unknown student {n}"),
            RegistryError::UnknownCourse(c) => write!(f, "unknown course {c}"),
            RegistryError::UnknownProgram(p) => write!(f, "unknown program {p}"),
            RegistryError::AlreadyEnrolled => write!(f, "already enrolled"),
            RegistryError::NotEnrolled => write!(f, "not enrolled"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The school's registry: catalog + students + statistics.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct StudentRegistry {
    next_number: u32,
    students: BTreeMap<StudentNumber, Student>,
    courses: BTreeMap<String, Course>,
    programs: BTreeMap<String, Program>,
}

impl StudentRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        StudentRegistry {
            next_number: 1,
            ..Default::default()
        }
    }

    // ---- catalog ----

    /// Add a program.
    pub fn add_program(&mut self, name: &str) {
        self.programs.insert(
            name.to_string(),
            Program {
                name: name.to_string(),
                courses: Vec::new(),
            },
        );
    }

    /// Add a course to a program.
    pub fn add_course(&mut self, course: Course) -> Result<(), RegistryError> {
        let program = self
            .programs
            .get_mut(&course.program)
            .ok_or_else(|| RegistryError::UnknownProgram(course.program.clone()))?;
        program.courses.push(course.code.clone());
        self.courses.insert(course.code.0.clone(), course);
        Ok(())
    }

    /// Courses offered by a program (Fig 5.4d's course list).
    pub fn courses_in_program(&self, program: &str) -> Result<Vec<&Course>, RegistryError> {
        let p = self
            .programs
            .get(program)
            .ok_or_else(|| RegistryError::UnknownProgram(program.to_string()))?;
        Ok(p.courses
            .iter()
            .filter_map(|c| self.courses.get(&c.0))
            .collect())
    }

    /// All program names.
    pub fn programs(&self) -> Vec<&str> {
        self.programs.keys().map(String::as_str).collect()
    }

    /// Course lookup.
    pub fn course(&self, code: &CourseCode) -> Option<&Course> {
        self.courses.get(&code.0)
    }

    // ---- registration (Fig 5.4) ----

    /// Register a new student; "having finished the registration, the
    /// student is given a new student number".
    pub fn register(&mut self, name: &str, address: &str, email: &str) -> StudentNumber {
        let number = StudentNumber(self.next_number);
        self.next_number += 1;
        self.students.insert(
            number,
            Student {
                number,
                name: name.to_string(),
                address: address.to_string(),
                email: email.to_string(),
                enrollments: Vec::new(),
            },
        );
        number
    }

    /// Authenticate an existing student number (the first navigator
    /// screen, Fig 5.3).
    pub fn lookup(&self, number: StudentNumber) -> Option<&Student> {
        self.students.get(&number)
    }

    /// Update profile data (Fig 5.6): "data is updated at the PC side ...
    /// also modified at the database side immediately".
    pub fn update_profile(
        &mut self,
        number: StudentNumber,
        address: Option<&str>,
        email: Option<&str>,
    ) -> Result<(), RegistryError> {
        let s = self
            .students
            .get_mut(&number)
            .ok_or(RegistryError::UnknownStudent(number))?;
        if let Some(a) = address {
            s.address = a.to_string();
        }
        if let Some(e) = email {
            s.email = e.to_string();
        }
        Ok(())
    }

    /// Enroll a student in a course (the "select" button, Fig 5.4d).
    pub fn enroll(
        &mut self,
        number: StudentNumber,
        code: &CourseCode,
    ) -> Result<(), RegistryError> {
        if !self.courses.contains_key(&code.0) {
            return Err(RegistryError::UnknownCourse(code.0.clone()));
        }
        let s = self
            .students
            .get_mut(&number)
            .ok_or(RegistryError::UnknownStudent(number))?;
        if s.enrollment(code).is_some() {
            return Err(RegistryError::AlreadyEnrolled);
        }
        s.enrollments.push(Enrollment {
            code: code.clone(),
            sessions_done: 0,
            resume_unit: None,
        });
        Ok(())
    }

    /// Record a finished session and the stop position for resumption.
    pub fn record_session(
        &mut self,
        number: StudentNumber,
        code: &CourseCode,
        resume_unit: Option<u32>,
    ) -> Result<(), RegistryError> {
        let s = self
            .students
            .get_mut(&number)
            .ok_or(RegistryError::UnknownStudent(number))?;
        let e = s.enrollment_mut(code).ok_or(RegistryError::NotEnrolled)?;
        e.sessions_done += 1;
        e.resume_unit = resume_unit;
        Ok(())
    }

    /// Saved resume position.
    pub fn resume_position(
        &self,
        number: StudentNumber,
        code: &CourseCode,
    ) -> Result<Option<u32>, RegistryError> {
        let s = self
            .students
            .get(&number)
            .ok_or(RegistryError::UnknownStudent(number))?;
        Ok(s.enrollment(code)
            .ok_or(RegistryError::NotEnrolled)?
            .resume_unit)
    }

    // ---- statistics (§5.2.1: "some statistics about the school, the
    // course and the students themselves should also be available") ----

    /// Number of registered students.
    pub fn student_count(&self) -> usize {
        self.students.len()
    }

    /// Enrollment count per course, sorted by code.
    pub fn enrollment_statistics(&self) -> Vec<(CourseCode, usize)> {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for s in self.students.values() {
            for e in &s.enrollments {
                *counts.entry(e.code.0.as_str()).or_default() += 1;
            }
        }
        counts
            .into_iter()
            .map(|(c, n)| (CourseCode(c.to_string()), n))
            .collect()
    }

    /// Mean progress (sessions done / planned) per course.
    pub fn progress_statistics(&self) -> Vec<(CourseCode, f64)> {
        let mut sums: BTreeMap<&str, (u32, u32)> = BTreeMap::new();
        for s in self.students.values() {
            for e in &s.enrollments {
                if let Some(c) = self.courses.get(&e.code.0) {
                    let entry = sums.entry(e.code.0.as_str()).or_default();
                    entry.0 += e.sessions_done.min(c.planned_sessions);
                    entry.1 += c.planned_sessions;
                }
            }
        }
        sums.into_iter()
            .map(|(c, (done, planned))| {
                (
                    CourseCode(c.to_string()),
                    if planned == 0 {
                        0.0
                    } else {
                        done as f64 / planned as f64
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> StudentRegistry {
        let mut reg = StudentRegistry::new();
        reg.add_program("Telecommunications");
        reg.add_course(Course {
            code: CourseCode("TEL101".into()),
            name: "ATM Networks".into(),
            program: "Telecommunications".into(),
            planned_sessions: 10,
            courseware: Some(MhegId::new(1, 1)),
        })
        .unwrap();
        reg.add_course(Course {
            code: CourseCode("TEL102".into()),
            name: "MHEG Systems".into(),
            program: "Telecommunications".into(),
            planned_sessions: 8,
            courseware: None,
        })
        .unwrap();
        reg
    }

    #[test]
    fn registration_allocates_numbers() {
        let mut reg = catalog();
        let a = reg.register("Alice", "1 Main St", "alice@uottawa.ca");
        let b = reg.register("Bob", "2 Side St", "bob@uottawa.ca");
        assert_ne!(a, b);
        assert_eq!(reg.lookup(a).unwrap().name, "Alice");
        assert!(reg.lookup(StudentNumber(999)).is_none());
        assert_eq!(reg.student_count(), 2);
        assert_eq!(a.to_string(), "S000001");
    }

    #[test]
    fn program_course_listing() {
        let reg = catalog();
        let courses = reg.courses_in_program("Telecommunications").unwrap();
        assert_eq!(courses.len(), 2);
        assert_eq!(courses[0].name, "ATM Networks");
        assert!(reg.courses_in_program("Biology").is_err());
        assert_eq!(reg.programs(), vec!["Telecommunications"]);
    }

    #[test]
    fn enrollment_flow_and_count() {
        let mut reg = catalog();
        let alice = reg.register("Alice", "", "");
        reg.enroll(alice, &CourseCode("TEL101".into())).unwrap();
        reg.enroll(alice, &CourseCode("TEL102".into())).unwrap();
        assert_eq!(reg.lookup(alice).unwrap().find_number_of_course(), 2);
        assert_eq!(
            reg.enroll(alice, &CourseCode("TEL101".into())),
            Err(RegistryError::AlreadyEnrolled)
        );
        assert_eq!(
            reg.enroll(alice, &CourseCode("NOPE".into())),
            Err(RegistryError::UnknownCourse("NOPE".into()))
        );
    }

    #[test]
    fn profile_update() {
        let mut reg = catalog();
        let alice = reg.register("Alice", "old", "old@x");
        reg.update_profile(alice, Some("new address"), None)
            .unwrap();
        let s = reg.lookup(alice).unwrap();
        assert_eq!(s.address, "new address");
        assert_eq!(s.email, "old@x", "unspecified fields untouched");
        assert!(reg.update_profile(StudentNumber(42), None, None).is_err());
    }

    #[test]
    fn resume_position_round_trip() {
        let mut reg = catalog();
        let alice = reg.register("Alice", "", "");
        let code = CourseCode("TEL101".into());
        reg.enroll(alice, &code).unwrap();
        assert_eq!(reg.resume_position(alice, &code).unwrap(), None);
        reg.record_session(alice, &code, Some(3)).unwrap();
        assert_eq!(reg.resume_position(alice, &code).unwrap(), Some(3));
        assert_eq!(
            reg.lookup(alice)
                .unwrap()
                .enrollment(&code)
                .unwrap()
                .sessions_done,
            1
        );
        assert_eq!(
            reg.record_session(alice, &CourseCode("TEL102".into()), None),
            Err(RegistryError::NotEnrolled)
        );
    }

    #[test]
    fn statistics() {
        let mut reg = catalog();
        let a = reg.register("A", "", "");
        let b = reg.register("B", "", "");
        let c101 = CourseCode("TEL101".into());
        let c102 = CourseCode("TEL102".into());
        reg.enroll(a, &c101).unwrap();
        reg.enroll(b, &c101).unwrap();
        reg.enroll(b, &c102).unwrap();
        assert_eq!(
            reg.enrollment_statistics(),
            vec![(c101.clone(), 2), (c102.clone(), 1)]
        );
        // Progress: a does 5 of 10 sessions in TEL101.
        for _ in 0..5 {
            reg.record_session(a, &c101, None).unwrap();
        }
        let progress = reg.progress_statistics();
        let tel101 = progress.iter().find(|(c, _)| c == &c101).unwrap();
        assert!((tel101.1 - 0.25).abs() < 1e-9, "5 of 20 pooled sessions");
    }
}
