//! Exercises (§5.2.1): "practicing is the best way to learn ... exercises
//! can be provided as a separate module. Problems designed for the
//! exercises can be in various styles besides the traditional text-based
//! one. Contest can also be organized to stimulate the interests of the
//! students."

use crate::records::StudentNumber;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Problem styles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProblemKind {
    /// Choose one of several options.
    MultipleChoice {
        /// The options.
        options: Vec<String>,
        /// Index of the correct option.
        correct: usize,
    },
    /// A numeric answer with tolerance.
    Numeric {
        /// Expected value.
        answer: f64,
        /// Accepted absolute error.
        tolerance: f64,
    },
    /// Free text graded by required keywords.
    FreeText {
        /// Keywords that must all appear (case-insensitive).
        keywords: Vec<String>,
    },
}

/// One problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    /// Problem id within the bank.
    pub id: u64,
    /// Which course it belongs to.
    pub course: String,
    /// Question text.
    pub question: String,
    /// Style and key.
    pub kind: ProblemKind,
    /// Points awarded when correct.
    pub points: u32,
}

/// A student's answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Answer {
    /// Option index.
    Choice(usize),
    /// Numeric value.
    Number(f64),
    /// Free text.
    Text(String),
}

/// Result of grading one answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Grade {
    /// Full points.
    Correct,
    /// Zero points.
    Incorrect,
    /// Answer style does not match the problem style.
    InvalidAnswer,
}

/// A recorded attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attempt {
    /// Who.
    pub student: StudentNumber,
    /// Which problem.
    pub problem: u64,
    /// Outcome.
    pub grade: Grade,
    /// Points earned.
    pub points: u32,
}

/// Grade an answer against a problem.
pub fn grade(problem: &Problem, answer: &Answer) -> Grade {
    match (&problem.kind, answer) {
        (ProblemKind::MultipleChoice { options, correct }, Answer::Choice(i)) => {
            if i >= &options.len() {
                Grade::InvalidAnswer
            } else if i == correct {
                Grade::Correct
            } else {
                Grade::Incorrect
            }
        }
        (
            ProblemKind::Numeric {
                answer: key,
                tolerance,
            },
            Answer::Number(x),
        ) => {
            if (x - key).abs() <= *tolerance {
                Grade::Correct
            } else {
                Grade::Incorrect
            }
        }
        (ProblemKind::FreeText { keywords }, Answer::Text(t)) => {
            let lower = t.to_lowercase();
            if keywords.iter().all(|k| lower.contains(&k.to_lowercase())) {
                Grade::Correct
            } else {
                Grade::Incorrect
            }
        }
        _ => Grade::InvalidAnswer,
    }
}

/// The exercise bank: problems, attempts, scores, contests.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct ExerciseBank {
    next_id: u64,
    problems: BTreeMap<u64, Problem>,
    attempts: Vec<Attempt>,
}

impl ExerciseBank {
    /// An empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a problem; returns its id.
    pub fn add(&mut self, course: &str, question: &str, kind: ProblemKind, points: u32) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.problems.insert(
            id,
            Problem {
                id,
                course: course.to_string(),
                question: question.to_string(),
                kind,
                points,
            },
        );
        id
    }

    /// Problems for a course.
    pub fn for_course(&self, course: &str) -> Vec<&Problem> {
        self.problems
            .values()
            .filter(|p| p.course == course)
            .collect()
    }

    /// Submit an answer; grades, records, and returns the attempt.
    pub fn submit(
        &mut self,
        student: StudentNumber,
        problem: u64,
        answer: &Answer,
    ) -> Option<Attempt> {
        let p = self.problems.get(&problem)?;
        let g = grade(p, answer);
        let attempt = Attempt {
            student,
            problem,
            grade: g,
            points: if g == Grade::Correct { p.points } else { 0 },
        };
        self.attempts.push(attempt.clone());
        Some(attempt)
    }

    /// Total score of a student in a course (best attempt per problem).
    pub fn score(&self, student: StudentNumber, course: &str) -> u32 {
        let mut best: BTreeMap<u64, u32> = BTreeMap::new();
        for a in &self.attempts {
            if a.student != student {
                continue;
            }
            if let Some(p) = self.problems.get(&a.problem) {
                if p.course == course {
                    let e = best.entry(a.problem).or_default();
                    *e = (*e).max(a.points);
                }
            }
        }
        best.values().sum()
    }

    /// Contest standings for a course: (student, score) sorted descending,
    /// ties by student number.
    pub fn standings(&self, course: &str) -> Vec<(StudentNumber, u32)> {
        let students: std::collections::BTreeSet<StudentNumber> =
            self.attempts.iter().map(|a| a.student).collect();
        let mut rows: Vec<(StudentNumber, u32)> = students
            .into_iter()
            .map(|s| (s, self.score(s, course)))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }

    /// "Analysis of the common mistakes" (§5.2.1 bulletin example): per
    /// problem, fraction of incorrect attempts.
    pub fn mistake_analysis(&self, course: &str) -> Vec<(u64, f64)> {
        let mut counts: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for a in &self.attempts {
            if let Some(p) = self.problems.get(&a.problem) {
                if p.course == course && a.grade != Grade::InvalidAnswer {
                    let e = counts.entry(a.problem).or_default();
                    e.1 += 1;
                    if a.grade == Grade::Incorrect {
                        e.0 += 1;
                    }
                }
            }
        }
        counts
            .into_iter()
            .map(|(id, (wrong, total))| (id, wrong as f64 / total.max(1) as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> (ExerciseBank, u64, u64, u64) {
        let mut b = ExerciseBank::new();
        let mc = b.add(
            "TEL101",
            "ATM cell size?",
            ProblemKind::MultipleChoice {
                options: vec!["48".into(), "53".into(), "64".into()],
                correct: 1,
            },
            10,
        );
        let num = b.add(
            "TEL101",
            "OC-3 rate in Mb/s?",
            ProblemKind::Numeric {
                answer: 155.52,
                tolerance: 0.01,
            },
            5,
        );
        let ft = b.add(
            "TEL101",
            "Explain AAL5 loss behaviour",
            ProblemKind::FreeText {
                keywords: vec!["CRC".into(), "PDU".into()],
            },
            15,
        );
        (b, mc, num, ft)
    }

    #[test]
    fn grading_multiple_choice() {
        let (mut b, mc, _, _) = bank();
        let s = StudentNumber(1);
        assert_eq!(
            b.submit(s, mc, &Answer::Choice(1)).unwrap().grade,
            Grade::Correct
        );
        assert_eq!(
            b.submit(s, mc, &Answer::Choice(0)).unwrap().grade,
            Grade::Incorrect
        );
        assert_eq!(
            b.submit(s, mc, &Answer::Choice(9)).unwrap().grade,
            Grade::InvalidAnswer
        );
        assert_eq!(
            b.submit(s, mc, &Answer::Number(1.0)).unwrap().grade,
            Grade::InvalidAnswer
        );
    }

    #[test]
    fn grading_numeric_tolerance() {
        let (mut b, _, num, _) = bank();
        let s = StudentNumber(1);
        assert_eq!(
            b.submit(s, num, &Answer::Number(155.52)).unwrap().grade,
            Grade::Correct
        );
        assert_eq!(
            b.submit(s, num, &Answer::Number(155.525)).unwrap().grade,
            Grade::Correct
        );
        assert_eq!(
            b.submit(s, num, &Answer::Number(155.6)).unwrap().grade,
            Grade::Incorrect
        );
    }

    #[test]
    fn grading_free_text_keywords() {
        let (mut b, _, _, ft) = bank();
        let s = StudentNumber(1);
        let good = Answer::Text("A lost cell breaks the pdu; the crc catches it".into());
        assert_eq!(b.submit(s, ft, &good).unwrap().grade, Grade::Correct);
        let partial = Answer::Text("the CRC catches it".into());
        assert_eq!(b.submit(s, ft, &partial).unwrap().grade, Grade::Incorrect);
    }

    #[test]
    fn score_takes_best_attempt() {
        let (mut b, mc, num, _) = bank();
        let s = StudentNumber(1);
        b.submit(s, mc, &Answer::Choice(0)); // wrong
        b.submit(s, mc, &Answer::Choice(1)); // right → 10
        b.submit(s, num, &Answer::Number(155.52)); // right → 5
        b.submit(s, num, &Answer::Number(0.0)); // later wrong doesn't reduce
        assert_eq!(b.score(s, "TEL101"), 15);
        assert_eq!(b.score(s, "OTHER"), 0);
    }

    #[test]
    fn standings_and_mistakes() {
        let (mut b, mc, num, _) = bank();
        let a = StudentNumber(1);
        let c = StudentNumber(2);
        b.submit(a, mc, &Answer::Choice(1));
        b.submit(c, mc, &Answer::Choice(0));
        b.submit(c, num, &Answer::Number(155.52));
        let st = b.standings("TEL101");
        assert_eq!(st[0], (a, 10));
        assert_eq!(st[1], (c, 5));
        let mistakes = b.mistake_analysis("TEL101");
        let mc_row = mistakes.iter().find(|(id, _)| *id == mc).unwrap();
        assert!((mc_row.1 - 0.5).abs() < 1e-9, "half the MC attempts wrong");
    }

    #[test]
    fn unknown_problem_rejected() {
        let (mut b, ..) = bank();
        assert!(b
            .submit(StudentNumber(1), 999, &Answer::Choice(0))
            .is_none());
    }
}
