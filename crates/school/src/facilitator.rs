//! On-demand facilitation vs the SIDL telephone baseline (§1.3.1,
//! experiment E-SIDL).
//!
//! The paper's critique of broadcast TeleLearning is concrete: in the
//! Satellite Interactive Distance Learning system "only three calls can
//! be taken at a time, others will be put into a queue. This could be
//! frustrating for a distant student trying to get a word in" — and
//! questions can only be asked *during the broadcast*. MITS instead keeps
//! facilitators on-line on demand.
//!
//! Both services are modelled as multi-server queues over the DES kernel;
//! the SIDL model adds the broadcast window: questions arising outside
//! the window wait for the next scheduled session before they can even
//! join the telephone queue.

use mits_sim::{Histogram, OnlineStats, SimDuration, SimRng, SimTime, Simulation};
use std::collections::VecDeque;

/// Which facilitation service to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FacilitationModel {
    /// MITS: `facilitators` teachers on-line whenever students study.
    MitsOnline {
        /// Number of on-line facilitators.
        facilitators: usize,
    },
    /// SIDL: `lines` telephone lines, usable only during a broadcast
    /// window of `window` every `period` (e.g. 1 h window daily).
    SidlBroadcast {
        /// Telephone lines (the paper: 3).
        lines: usize,
        /// Broadcast window length.
        window: SimDuration,
        /// Schedule period (window starts every `period`).
        period: SimDuration,
    },
}

/// Waiting-time report from a facilitation simulation.
#[derive(Debug, Clone)]
pub struct WaitReport {
    /// Questions asked.
    pub questions: u64,
    /// Questions answered within the horizon.
    pub answered: u64,
    /// Waiting time question-formed → answer-started (seconds).
    pub wait: OnlineStats,
    /// Waiting-time histogram (seconds, 0..24 h, 30 s bins).
    pub histogram: Histogram,
}

struct World {
    model: FacilitationModel,
    busy: usize,
    queue: VecDeque<(u64, SimTime)>, // (question id, formed at)
    service_mean_s: f64,
    rng: SimRng,
    wait: OnlineStats,
    histogram: Histogram,
    answered: u64,
}

impl World {
    fn capacity(&self) -> usize {
        match self.model {
            FacilitationModel::MitsOnline { facilitators } => facilitators,
            FacilitationModel::SidlBroadcast { lines, .. } => lines,
        }
    }

    /// Is the service open at `t`?
    fn open_at(&self, t: SimTime) -> bool {
        match self.model {
            FacilitationModel::MitsOnline { .. } => true,
            FacilitationModel::SidlBroadcast { window, period, .. } => {
                let phase = t.as_micros() % period.as_micros().max(1);
                phase < window.as_micros()
            }
        }
    }

    /// Next instant ≥ `t` when the service is open.
    fn next_open(&self, t: SimTime) -> SimTime {
        if self.open_at(t) {
            return t;
        }
        match self.model {
            FacilitationModel::MitsOnline { .. } => t,
            FacilitationModel::SidlBroadcast { period, .. } => {
                let p = period.as_micros().max(1);
                let cycles = t.as_micros() / p + 1;
                SimTime::from_micros(cycles * p)
            }
        }
    }
}

fn try_serve(world: &mut World, sched: &mut mits_sim::Scheduler<World>) {
    while world.busy < world.capacity() && world.open_at(sched.now()) {
        let Some((_, formed)) = world.queue.pop_front() else {
            break;
        };
        let now = sched.now();
        let waited = now.since(formed).as_secs_f64();
        world.wait.record(waited);
        world.histogram.record(waited);
        world.answered += 1;
        world.busy += 1;
        let service = SimDuration::from_secs_f64(world.rng.exponential(world.service_mean_s));
        sched.after(service, |w: &mut World, s| {
            w.busy -= 1;
            try_serve(w, s);
        });
    }
    // Service closed with questions waiting: wake at next opening.
    if !world.queue.is_empty() && !world.open_at(sched.now()) {
        let reopen = world.next_open(sched.now());
        sched.at(reopen, |w: &mut World, s| try_serve(w, s));
    }
}

/// Simulate `n_questions` Poisson question arrivals (mean interarrival
/// `arrival_mean`) served with exponential service times (`service_mean`).
pub fn simulate_facilitation(
    model: FacilitationModel,
    arrival_mean: SimDuration,
    service_mean: SimDuration,
    n_questions: u64,
    seed: u64,
) -> WaitReport {
    let mut arrival_rng = SimRng::seed_from_u64(seed ^ 0xFAC1_11A7);
    let world = World {
        model,
        busy: 0,
        queue: VecDeque::new(),
        service_mean_s: service_mean.as_secs_f64(),
        rng: SimRng::seed_from_u64(seed ^ 0x5E2C_1CE5),
        wait: OnlineStats::new(),
        histogram: Histogram::new(0.0, 24.0 * 3600.0, 2880),
        answered: 0,
    };
    let mut sim = Simulation::new(world);
    let mut t = SimTime::ZERO;
    for q in 0..n_questions {
        t += SimDuration::from_secs_f64(arrival_rng.exponential(arrival_mean.as_secs_f64()));
        let formed = t;
        sim.schedule(t, move |w: &mut World, s| {
            w.queue.push_back((q, formed));
            try_serve(w, s);
        });
    }
    sim.run();
    let world = sim.into_world();
    WaitReport {
        questions: n_questions,
        answered: world.answered,
        wait: world.wait,
        histogram: world.histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mits(n: usize) -> FacilitationModel {
        FacilitationModel::MitsOnline { facilitators: n }
    }

    fn sidl() -> FacilitationModel {
        // 3 lines, 1-hour broadcast every 24 hours.
        FacilitationModel::SidlBroadcast {
            lines: 3,
            window: SimDuration::from_secs(3600),
            period: SimDuration::from_secs(24 * 3600),
        }
    }

    #[test]
    fn lightly_loaded_mits_answers_immediately() {
        // One question every 10 min, 2-min answers, 3 facilitators.
        let report = simulate_facilitation(
            mits(3),
            SimDuration::from_secs(600),
            SimDuration::from_secs(120),
            500,
            1,
        );
        assert_eq!(report.answered, 500);
        assert!(
            report.wait.mean() < 30.0,
            "mean wait {}s",
            report.wait.mean()
        );
    }

    #[test]
    fn sidl_waits_dwarf_mits_waits() {
        // Same question load against both services.
        let arrival = SimDuration::from_secs(600);
        let service = SimDuration::from_secs(120);
        let m = simulate_facilitation(mits(3), arrival, service, 400, 7);
        let s = simulate_facilitation(sidl(), arrival, service, 400, 7);
        assert_eq!(m.answered, 400);
        assert_eq!(s.answered, 400);
        // SIDL: most questions form outside the 1 h window and wait hours.
        assert!(
            s.wait.mean() > 100.0 * m.wait.mean().max(1.0),
            "SIDL {:.0}s vs MITS {:.0}s",
            s.wait.mean(),
            m.wait.mean()
        );
    }

    #[test]
    fn more_facilitators_cut_waits_under_load() {
        // Heavy load: questions every 30 s, 2-min answers.
        let arrival = SimDuration::from_secs(30);
        let service = SimDuration::from_secs(120);
        let few = simulate_facilitation(mits(2), arrival, service, 1000, 3);
        let many = simulate_facilitation(mits(8), arrival, service, 1000, 3);
        assert!(
            few.wait.mean() > 3.0 * many.wait.mean().max(0.5),
            "2 facilitators {:.0}s vs 8 facilitators {:.0}s",
            few.wait.mean(),
            many.wait.mean()
        );
    }

    #[test]
    fn sidl_serves_during_window_without_extra_delay() {
        // All questions arrive in the first minutes of the window,
        // fewer than the line capacity can't-queue scenario.
        let report = simulate_facilitation(
            FacilitationModel::SidlBroadcast {
                lines: 3,
                window: SimDuration::from_secs(3600),
                period: SimDuration::from_secs(24 * 3600),
            },
            SimDuration::from_secs(400), // ~9 questions in the window
            SimDuration::from_secs(60),
            8,
            11,
        );
        assert_eq!(report.answered, 8);
        // Served either immediately or behind ≤ 2 callers.
        assert!(report.wait.mean() < 600.0, "{}", report.wait.mean());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate_facilitation(
            mits(3),
            SimDuration::from_secs(60),
            SimDuration::from_secs(120),
            200,
            5,
        );
        let b = simulate_facilitation(
            mits(3),
            SimDuration::from_secs(60),
            SimDuration::from_secs(120),
            200,
            5,
        );
        assert_eq!(a.wait.mean(), b.wait.mean());
        assert_eq!(a.wait.std_dev(), b.wait.std_dev());
    }

    #[test]
    fn histogram_populated() {
        let r = simulate_facilitation(
            mits(1),
            SimDuration::from_secs(60),
            SimDuration::from_secs(90),
            300,
            9,
        );
        assert_eq!(r.histogram.count(), 300);
        assert!(r.histogram.median().is_some());
    }
}
