//! The six teaching architectures of Schank that §4.2 adopts, plus the
//! framework skeletons the courseware editor offers for each (§4.5.1:
//! "the chosen of a specific framework will result in a corresponding
//! document model to be selected").

use serde::{Deserialize, Serialize};

/// Which document model a framework produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DocumentModelKind {
    /// Static interaction: the hypermedia model (Fig 4.3).
    Hypermedia,
    /// Dynamic interaction: the interactive multimedia model (Fig 4.4).
    InteractiveMultimedia,
}

/// The six teaching architectures (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TeachingArchitecture {
    /// Simulation-based learning by doing (pilot-training style).
    SimulationBasedLearningByDoing,
    /// Incidental learning ("Road Trip").
    IncidentalLearning,
    /// Learning by reflection ("Movie Reader").
    LearningByReflection,
    /// Case-based teaching ("Creanimate").
    CaseBasedTeaching,
    /// Learning by exploring (experts on demand).
    LearningByExploring,
    /// Goal-directed learning ("Museum visitors as genetic counselors").
    GoalDirectedLearning,
}

impl TeachingArchitecture {
    /// All six, in the paper's order.
    pub const ALL: [TeachingArchitecture; 6] = [
        TeachingArchitecture::SimulationBasedLearningByDoing,
        TeachingArchitecture::IncidentalLearning,
        TeachingArchitecture::LearningByReflection,
        TeachingArchitecture::CaseBasedTeaching,
        TeachingArchitecture::LearningByExploring,
        TeachingArchitecture::GoalDirectedLearning,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TeachingArchitecture::SimulationBasedLearningByDoing => {
                "simulation-based learning by doing"
            }
            TeachingArchitecture::IncidentalLearning => "incidental learning",
            TeachingArchitecture::LearningByReflection => "learning by reflection",
            TeachingArchitecture::CaseBasedTeaching => "case-based teaching",
            TeachingArchitecture::LearningByExploring => "learning by exploring",
            TeachingArchitecture::GoalDirectedLearning => "goal-directed learning",
        }
    }

    /// Which document model its framework uses. Exploration maps onto the
    /// free-navigation hypermedia model; the scenario-driven architectures
    /// map onto the interactive multimedia model.
    pub fn document_model(self) -> DocumentModelKind {
        match self {
            TeachingArchitecture::LearningByExploring
            | TeachingArchitecture::IncidentalLearning => DocumentModelKind::Hypermedia,
            _ => DocumentModelKind::InteractiveMultimedia,
        }
    }

    /// The skeleton stage titles the framework pre-creates. The author
    /// "need only fill the media objects into the frameworks and specify
    /// the scenario" (§4.5.1).
    pub fn framework_stages(self) -> &'static [&'static str] {
        match self {
            TeachingArchitecture::SimulationBasedLearningByDoing => {
                &["briefing", "simulation", "expert stories", "debriefing"]
            }
            TeachingArchitecture::IncidentalLearning => {
                &["destination map", "exploration", "discoveries"]
            }
            TeachingArchitecture::LearningByReflection => {
                &["prompt", "student response", "reflection questions"]
            }
            TeachingArchitecture::CaseBasedTeaching => {
                &["problem", "case library", "expert story", "application"]
            }
            TeachingArchitecture::LearningByExploring => {
                &["topic web", "expert answers", "related topics"]
            }
            TeachingArchitecture::GoalDirectedLearning => {
                &["goal statement", "tools", "task", "assessment"]
            }
        }
    }

    /// When a teacher should pick this architecture (the Analysis step of
    /// Fig 4.1): matches knowledge/acquiror traits to an architecture.
    pub fn suits(self, skill_based: bool, learner_driven: bool) -> bool {
        match self {
            TeachingArchitecture::SimulationBasedLearningByDoing => skill_based,
            TeachingArchitecture::CaseBasedTeaching => skill_based,
            TeachingArchitecture::LearningByExploring => learner_driven,
            TeachingArchitecture::IncidentalLearning => learner_driven,
            TeachingArchitecture::LearningByReflection => !skill_based,
            TeachingArchitecture::GoalDirectedLearning => true,
        }
    }
}

/// A framework-instantiated document skeleton: the editor pre-creates one
/// unit per framework stage; "the courseware authors need only to fill
/// the media objects into the frameworks and specify the scenario"
/// (§4.5.1).
#[derive(Debug, Clone, PartialEq)]
pub enum FrameworkSkeleton {
    /// Scenario-driven architectures get an interactive multimedia
    /// document with one scene per stage.
    Imd(crate::imd::ImDocument),
    /// Exploration architectures get a hypermedia document with one page
    /// per stage, serially linked.
    Hyper(crate::hyperdoc::HyperDocument),
}

/// Instantiate the framework for a teaching architecture.
pub fn framework_document(arch: TeachingArchitecture, title: &str) -> FrameworkSkeleton {
    match arch.document_model() {
        DocumentModelKind::InteractiveMultimedia => {
            let mut doc = crate::imd::ImDocument::new(title);
            doc.sections.push(crate::imd::Section {
                title: arch.name().to_string(),
                subsections: vec![crate::imd::Subsection {
                    title: "stages".into(),
                    scenes: arch
                        .framework_stages()
                        .iter()
                        .map(|stage| crate::imd::Scene::new(stage))
                        .collect(),
                }],
            });
            FrameworkSkeleton::Imd(doc)
        }
        DocumentModelKind::Hypermedia => {
            let mut doc = crate::hyperdoc::HyperDocument::new(title);
            let stages = arch.framework_stages();
            let mut pages = Vec::with_capacity(stages.len());
            for stage in stages {
                pages.push(doc.add_page(crate::hyperdoc::Page::new(stage).choice(
                    "next",
                    "Continue",
                    (0, 200),
                )));
            }
            for pair in pages.windows(2) {
                doc.link_click(pair[0], "next", pair[1]);
            }
            FrameworkSkeleton::Hyper(doc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_architectures_named_uniquely() {
        let names: std::collections::HashSet<_> =
            TeachingArchitecture::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn exploration_architectures_use_hypermedia() {
        assert_eq!(
            TeachingArchitecture::LearningByExploring.document_model(),
            DocumentModelKind::Hypermedia
        );
        assert_eq!(
            TeachingArchitecture::IncidentalLearning.document_model(),
            DocumentModelKind::Hypermedia
        );
        assert_eq!(
            TeachingArchitecture::SimulationBasedLearningByDoing.document_model(),
            DocumentModelKind::InteractiveMultimedia
        );
    }

    #[test]
    fn frameworks_have_stages() {
        for a in TeachingArchitecture::ALL {
            assert!(
                a.framework_stages().len() >= 3,
                "{} has a usable skeleton",
                a.name()
            );
        }
    }

    #[test]
    fn frameworks_instantiate_their_document_model() {
        for arch in TeachingArchitecture::ALL {
            match framework_document(arch, "T") {
                FrameworkSkeleton::Imd(doc) => {
                    assert_eq!(
                        arch.document_model(),
                        DocumentModelKind::InteractiveMultimedia
                    );
                    assert_eq!(doc.scene_count(), arch.framework_stages().len());
                    let titles: Vec<&str> = doc.scenes().map(|s| s.title.as_str()).collect();
                    assert_eq!(titles, arch.framework_stages());
                }
                FrameworkSkeleton::Hyper(doc) => {
                    assert_eq!(arch.document_model(), DocumentModelKind::Hypermedia);
                    assert_eq!(doc.pages.len(), arch.framework_stages().len());
                    assert!(doc.unreachable_pages().is_empty(), "stages serially linked");
                }
            }
        }
    }

    #[test]
    fn hyper_framework_validates_and_compiles() {
        let FrameworkSkeleton::Hyper(doc) =
            framework_document(TeachingArchitecture::LearningByExploring, "Explore")
        else {
            panic!("exploring uses hypermedia");
        };
        assert!(crate::editor::validate_hyperdoc(&doc).is_empty());
        let compiled = crate::compile::compile_hyperdoc(600, &doc);
        assert!(!compiled.objects.is_empty());
    }

    #[test]
    fn suitability_analysis() {
        assert!(TeachingArchitecture::SimulationBasedLearningByDoing.suits(true, false));
        assert!(!TeachingArchitecture::SimulationBasedLearningByDoing.suits(false, true));
        assert!(TeachingArchitecture::LearningByExploring.suits(false, true));
        assert!(
            TeachingArchitecture::GoalDirectedLearning.suits(false, false),
            "always applicable"
        );
    }
}
