//! The courseware class library (§4.4.2, Fig 4.6) — templates over the
//! basic MHEG library "so that courseware authors can easily create
//! objects by instantiating them directly without any deep understanding
//! of the MHEG concepts".
//!
//! Three courseware object types: **Interactive** (buttons, menus, entry
//! fields — "input from the users ... as well as the resulted actions"),
//! **Output** (anything "intended to be presented in some way to the
//! user"), and **Hyperobject** ("input and output objects plus explicit
//! links between them").

use crate::imd::MediaHandle;
use mits_media::{MediaFormat, VideoDims};
use mits_mheg::action::{ActionEntry, ElementaryAction, TargetRef};
use mits_mheg::link::Condition;
use mits_mheg::object::{ContentBody, ContentData};
use mits_mheg::{ClassLibrary, GenericValue, MhegId};
use serde::{Deserialize, Serialize};

/// Kinds of interactive courseware objects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InteractiveKind {
    /// A push button with a label.
    Button(String),
    /// A menu with selectable items.
    Menu(Vec<String>),
    /// A free-text entry field.
    EntryField,
}

/// Kinds of output courseware objects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OutputKind {
    /// A media object from the content database.
    Media(MediaHandle),
    /// Caption text authored inline.
    Caption(String),
}

/// A created courseware object: its root MHEG id plus any satellite ids
/// (menu items, hyperobject links).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoursewareObject {
    /// The object presented/selected.
    pub id: MhegId,
    /// Satellite objects (menu items, internal links).
    pub parts: Vec<MhegId>,
}

/// Instantiate an interactive object.
pub fn interactive(lib: &mut ClassLibrary, kind: &InteractiveKind) -> CoursewareObject {
    match kind {
        InteractiveKind::Button(label) => {
            let id = lib.value_content(&format!("button:{label}"), GenericValue::Int(0));
            CoursewareObject { id, parts: vec![] }
        }
        InteractiveKind::EntryField => {
            let id = lib.value_content("entry-field", GenericValue::Str(String::new()));
            CoursewareObject { id, parts: vec![] }
        }
        InteractiveKind::Menu(items) => {
            // A menu is a composite of item buttons; selecting item i sets
            // the menu's data slot to i.
            let mut item_ids = Vec::with_capacity(items.len());
            for item in items {
                item_ids
                    .push(lib.value_content(&format!("menu-item:{item}"), GenericValue::Int(0)));
            }
            let on_start = item_ids
                .iter()
                .map(|i| {
                    ActionEntry::now(
                        TargetRef::Model(*i),
                        vec![
                            ElementaryAction::Run,
                            ElementaryAction::SetInteraction(true),
                        ],
                    )
                })
                .collect();
            let menu = lib.composite("menu", item_ids.clone(), on_start, vec![]);
            let mut parts = item_ids.clone();
            for (idx, item) in item_ids.iter().enumerate() {
                let link = lib.link(
                    &format!("menu-select-{idx}"),
                    Condition::selected(TargetRef::Model(*item)),
                    vec![],
                    vec![ActionEntry::now(
                        TargetRef::Model(menu),
                        vec![ElementaryAction::SetData(GenericValue::Int(idx as i64))],
                    )],
                );
                parts.push(link);
            }
            CoursewareObject { id: menu, parts }
        }
    }
}

/// Content body for a media handle at a position — shared by the output
/// template and the document compilers.
pub fn media_body(h: &MediaHandle, position: (i32, i32)) -> ContentBody {
    ContentBody {
        data: ContentData::Referenced(h.media),
        format: h.format,
        original_size: h.dims,
        original_duration: h.duration,
        original_volume: 1000,
        original_position: position,
    }
}

/// Content body for inline caption text.
pub fn caption_body(text: &str, position: (i32, i32)) -> ContentBody {
    ContentBody {
        data: ContentData::Inline(bytes::Bytes::from(text.as_bytes().to_vec())),
        format: MediaFormat::Ascii,
        original_size: VideoDims::new(text.len() as u32 * 8, 16),
        original_duration: mits_sim::SimDuration::ZERO,
        original_volume: 1000,
        original_position: position,
    }
}

/// Instantiate an output object at a screen position.
pub fn output(lib: &mut ClassLibrary, kind: &OutputKind, position: (i32, i32)) -> CoursewareObject {
    let id = match kind {
        OutputKind::Media(h) => lib.content(&h.name, media_body(h, position)),
        OutputKind::Caption(text) => lib.content("caption", caption_body(text, position)),
    };
    CoursewareObject { id, parts: vec![] }
}

/// A hyperobject: outputs + interactives + explicit links among them
/// ("clicking `source` runs `target`").
pub fn hyperobject(
    lib: &mut ClassLibrary,
    name: &str,
    outputs: &[MhegId],
    interactives: &[MhegId],
    click_links: &[(MhegId, MhegId)],
) -> CoursewareObject {
    let mut on_start: Vec<ActionEntry> = outputs
        .iter()
        .map(|o| ActionEntry::now(TargetRef::Model(*o), vec![ElementaryAction::Run]))
        .collect();
    on_start.extend(interactives.iter().map(|i| {
        ActionEntry::now(
            TargetRef::Model(*i),
            vec![
                ElementaryAction::Run,
                ElementaryAction::SetInteraction(true),
            ],
        )
    }));
    let mut components: Vec<MhegId> = outputs.to_vec();
    components.extend_from_slice(interactives);
    let id = lib.composite(name, components, on_start, vec![]);
    let mut parts = Vec::new();
    for (source, target) in click_links {
        parts.push(lib.link(
            &format!("hyper-{source}-{target}"),
            Condition::selected(TargetRef::Model(*source)),
            vec![],
            vec![ActionEntry::now(
                TargetRef::Model(*target),
                vec![ElementaryAction::Run],
            )],
        ));
    }
    CoursewareObject { id, parts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mits_mheg::{ClassKind, MhegEngine, PresentationEvent, RtState};
    use mits_sim::SimDuration;

    fn handle() -> MediaHandle {
        MediaHandle {
            media: mits_media::MediaId(3),
            format: MediaFormat::Mpeg,
            duration: SimDuration::from_secs(4),
            dims: VideoDims::new(320, 240),
            name: "clip.mpg".into(),
        }
    }

    #[test]
    fn button_template() {
        let mut lib = ClassLibrary::new(1);
        let b = interactive(&mut lib, &InteractiveKind::Button("Stop".into()));
        let obj = lib.get(b.id).unwrap();
        assert_eq!(obj.class(), ClassKind::Content);
        assert!(obj.info.name.contains("Stop"));
    }

    #[test]
    fn output_media_template_inherits_handle() {
        let mut lib = ClassLibrary::new(1);
        let o = output(&mut lib, &OutputKind::Media(handle()), (10, 20));
        match &lib.get(o.id).unwrap().body {
            mits_mheg::ObjectBody::Content(c) => {
                assert_eq!(c.original_duration, SimDuration::from_secs(4));
                assert_eq!(c.original_position, (10, 20));
                assert_eq!(c.format, MediaFormat::Mpeg);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn caption_is_inline_ascii() {
        let mut lib = ClassLibrary::new(1);
        let o = output(&mut lib, &OutputKind::Caption("Hello".into()), (0, 0));
        match &lib.get(o.id).unwrap().body {
            mits_mheg::ObjectBody::Content(c) => {
                assert_eq!(c.format, MediaFormat::Ascii);
                assert!(matches!(&c.data, ContentData::Inline(b) if &b[..] == b"Hello"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn menu_selection_sets_data() {
        let mut lib = ClassLibrary::new(1);
        let menu = interactive(
            &mut lib,
            &InteractiveKind::Menu(vec!["Classroom".into(), "Library".into(), "Exit".into()]),
        );
        let items: Vec<MhegId> = menu.parts.iter().take(3).copied().collect();
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        let menu_rt = eng.new_rt(menu.id).unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(menu_rt),
            vec![ElementaryAction::Run],
        ))
        .unwrap();
        // Click "Library" (item index 1).
        let item_rt = eng.rt_of_model(items[1]).expect("menu item instantiated");
        assert!(eng.user_select(item_rt).unwrap());
        assert_eq!(eng.rt(menu_rt).unwrap().attrs.data, GenericValue::Int(1));
    }

    #[test]
    fn hyperobject_click_runs_target() {
        let mut lib = ClassLibrary::new(1);
        let video = output(&mut lib, &OutputKind::Media(handle()), (0, 0));
        let caption = output(
            &mut lib,
            &OutputKind::Caption("ATM basics".into()),
            (0, 200),
        );
        let btn = interactive(&mut lib, &InteractiveKind::Button("play".into()));
        let hyper = hyperobject(
            &mut lib,
            "lesson-card",
            &[caption.id],
            &[btn.id],
            &[(btn.id, video.id)],
        );
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        let rt = eng.new_rt(hyper.id).unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(rt),
            vec![ElementaryAction::Run],
        ))
        .unwrap();
        let events = eng.take_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, PresentationEvent::Started { .. })),
            "outputs started with the hyperobject"
        );
        // Click the button: the video (not a component — fetched on demand)
        // starts running.
        let btn_rt = eng.rt_of_model(btn.id).unwrap();
        assert!(eng.user_select(btn_rt).unwrap());
        let video_rt = eng.rt_of_model(video.id).expect("video launched by click");
        assert_eq!(eng.rt(video_rt).unwrap().state, RtState::Running);
    }
}
