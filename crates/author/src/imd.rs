//! The interactive multimedia document model (§4.3.3, Fig 4.4).
//!
//! A document divides into sections → subsections → **scenes** — "the
//! grouping of a certain number of objects presented in the same space
//! for a certain period of time". Each scene carries:
//!
//! * a set of elements (media, text, buttons),
//! * a **time-line structure**: when each element starts and (optionally)
//!   how long it shows — interruptible by user choices, as in the paper's
//!   `choice1` example where clicking shows `image1` before its scheduled
//!   time `t2`;
//! * a **behavior structure**: condition sets → action sets ("when user
//!   has clicked a stop button, audio1, text1 and image1 stop"; "when
//!   text1 stops being displayed, image1 is shown").

use mits_media::{MediaFormat, MediaObject, VideoDims};
use mits_mheg::GenericValue;
use mits_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A lightweight reference to a produced media object — what the author
/// drags out of the content database into a scene.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaHandle {
    /// Content-store id.
    pub media: mits_media::MediaId,
    /// Coding method.
    pub format: MediaFormat,
    /// Intrinsic duration.
    pub duration: SimDuration,
    /// Native dimensions.
    pub dims: VideoDims,
    /// Display name.
    pub name: String,
}

impl From<&MediaObject> for MediaHandle {
    fn from(m: &MediaObject) -> Self {
        MediaHandle {
            media: m.id,
            format: m.format,
            duration: m.duration,
            dims: m.dims,
            name: m.name.clone(),
        }
    }
}

/// What a scene element is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ElementKind {
    /// A produced media object (video, audio, image, text document).
    Media(MediaHandle),
    /// Inline caption text authored directly in the editor.
    Caption(String),
    /// An interactive button with a label ("stop", "show caption",
    /// "enter hall").
    Button(String),
    /// A free-text entry field (quiz answers).
    EntryField,
}

/// One element of a scene, addressed by a scene-unique key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneElement {
    /// Scene-unique key ("video1", "choice1", "text1").
    pub key: String,
    /// What it is.
    pub kind: ElementKind,
}

/// A time-line entry: element `key` starts at `start`; `duration`
/// bounds static elements (time-based media end on their own).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Element key.
    pub element: String,
    /// Start offset from scene start.
    pub start: SimDuration,
    /// Display duration for static elements (None = until scene ends or
    /// a behavior removes it).
    pub duration: Option<SimDuration>,
    /// Layout: screen position.
    pub position: (i32, i32),
    /// Layout: display size (0,0 = natural size).
    pub size: (u32, u32),
    /// Presentation channel (the logical space of §4.3.3's layout
    /// structure; the engine maps channels to physical space).
    pub channel: u8,
}

impl TimelineEntry {
    /// Entry at scene start with natural size on channel 0.
    pub fn at_start(element: &str) -> Self {
        TimelineEntry {
            element: element.to_string(),
            start: SimDuration::ZERO,
            duration: None,
            position: (0, 0),
            size: (0, 0),
            channel: 0,
        }
    }

    /// Builder: start offset.
    pub fn starting(mut self, at: SimDuration) -> Self {
        self.start = at;
        self
    }

    /// Builder: bounded display duration.
    pub fn for_duration(mut self, d: SimDuration) -> Self {
        self.duration = Some(d);
        self
    }

    /// Builder: position.
    pub fn at(mut self, x: i32, y: i32) -> Self {
        self.position = (x, y);
        self
    }
}

/// A condition in a behavior's condition set (§4.3.3: "a condition can be
/// a user input or a status change of a media object"; trigger +
/// additional conditions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BehaviorCondition {
    /// The user clicked the element.
    Clicked(String),
    /// The element finished its presentation.
    Finished(String),
    /// The element's data slot equals a value (entry fields, counters).
    DataEquals(String, GenericValue),
}

/// An action in a behavior's action set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BehaviorAction {
    /// Start presenting an element.
    Start(String),
    /// Stop presenting an element.
    Stop(String),
    /// Make an element visible.
    Show(String),
    /// Hide an element.
    Hide(String),
    /// Store a value into an element's data slot.
    SetData(String, i64),
    /// Leave this scene and start scene `index` (document-ordered).
    GotoScene(usize),
    /// Advance to the next scene in document order.
    NextScene,
}

/// One behavior: the first condition is the trigger; the rest are
/// additional conditions tested at trigger time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Behavior {
    /// Trigger + additional conditions (non-empty).
    pub conditions: Vec<BehaviorCondition>,
    /// Actions applied when the conditions hold.
    pub actions: Vec<BehaviorAction>,
}

impl Behavior {
    /// `when <condition> do <actions>`.
    pub fn when(condition: BehaviorCondition, actions: Vec<BehaviorAction>) -> Self {
        Behavior {
            conditions: vec![condition],
            actions,
        }
    }

    /// Builder: add an additional condition.
    pub fn and(mut self, condition: BehaviorCondition) -> Self {
        self.conditions.push(condition);
        self
    }
}

/// A scene (Fig 4.4a leaf).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Scene {
    /// Scene title.
    pub title: String,
    /// Elements presented in this scene.
    pub elements: Vec<SceneElement>,
    /// The time-line structure.
    pub timeline: Vec<TimelineEntry>,
    /// The behavior structure.
    pub behaviors: Vec<Behavior>,
}

impl Scene {
    /// An empty scene.
    pub fn new(title: &str) -> Self {
        Scene {
            title: title.to_string(),
            ..Default::default()
        }
    }

    /// Add an element.
    pub fn element(mut self, key: &str, kind: ElementKind) -> Self {
        self.elements.push(SceneElement {
            key: key.to_string(),
            kind,
        });
        self
    }

    /// Add a timeline entry.
    pub fn entry(mut self, entry: TimelineEntry) -> Self {
        self.timeline.push(entry);
        self
    }

    /// Add a behavior.
    pub fn behavior(mut self, b: Behavior) -> Self {
        self.behaviors.push(b);
        self
    }

    /// Find an element by key.
    pub fn find(&self, key: &str) -> Option<&SceneElement> {
        self.elements.iter().find(|e| e.key == key)
    }

    /// Scene length implied by the timeline: the latest scheduled end of
    /// any entry with a known end (time-based media use their intrinsic
    /// durations). `None` when nothing bounds the scene (it waits for
    /// the user).
    pub fn scheduled_length(&self) -> Option<SimDuration> {
        let mut max_end: Option<SimDuration> = None;
        for entry in &self.timeline {
            let d = match entry.duration {
                Some(d) => Some(d),
                None => self.find(&entry.element).and_then(|e| match &e.kind {
                    ElementKind::Media(h) if !h.duration.is_zero() => Some(h.duration),
                    _ => None,
                }),
            };
            if let Some(d) = d {
                let end = entry.start + d;
                max_end = Some(max_end.map_or(end, |m| m.max(end)));
            }
        }
        max_end
    }
}

/// A subsection: a run of scenes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Subsection {
    /// Title.
    pub title: String,
    /// Scenes in presentation order.
    pub scenes: Vec<Scene>,
}

/// A section: a run of subsections.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Section {
    /// Title.
    pub title: String,
    /// Subsections in presentation order.
    pub subsections: Vec<Subsection>,
}

/// The interactive multimedia document.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ImDocument {
    /// Course title.
    pub title: String,
    /// Keywords for the database index.
    pub keywords: Vec<String>,
    /// Sections in presentation order.
    pub sections: Vec<Section>,
}

impl ImDocument {
    /// A document with a title.
    pub fn new(title: &str) -> Self {
        ImDocument {
            title: title.to_string(),
            ..Default::default()
        }
    }

    /// All scenes in document order ("simple serial playback when there
    /// is no users' interference").
    pub fn scenes(&self) -> impl Iterator<Item = &Scene> {
        self.sections
            .iter()
            .flat_map(|s| &s.subsections)
            .flat_map(|ss| &ss.scenes)
    }

    /// Number of scenes.
    pub fn scene_count(&self) -> usize {
        self.scenes().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle(dur_ms: u64) -> MediaHandle {
        MediaHandle {
            media: mits_media::MediaId(1),
            format: MediaFormat::Mpeg,
            duration: SimDuration::from_millis(dur_ms),
            dims: VideoDims::new(320, 240),
            name: "v.mpg".into(),
        }
    }

    #[test]
    fn scene_builder_and_lookup() {
        let s = Scene::new("intro")
            .element("video1", ElementKind::Media(handle(3_000)))
            .element("stop", ElementKind::Button("Stop".into()))
            .entry(TimelineEntry::at_start("video1"));
        assert!(s.find("video1").is_some());
        assert!(s.find("stop").is_some());
        assert!(s.find("nope").is_none());
    }

    #[test]
    fn scheduled_length_from_media_duration() {
        let s = Scene::new("a")
            .element("v", ElementKind::Media(handle(3_000)))
            .entry(TimelineEntry::at_start("v").starting(SimDuration::from_secs(1)));
        assert_eq!(s.scheduled_length(), Some(SimDuration::from_millis(4_000)));
    }

    #[test]
    fn scheduled_length_from_explicit_duration() {
        let s = Scene::new("a")
            .element("t", ElementKind::Caption("hello".into()))
            .entry(
                TimelineEntry::at_start("t")
                    .starting(SimDuration::from_secs(2))
                    .for_duration(SimDuration::from_secs(5)),
            );
        assert_eq!(s.scheduled_length(), Some(SimDuration::from_secs(7)));
    }

    #[test]
    fn unbounded_scene_has_no_length() {
        let s = Scene::new("menu")
            .element("b", ElementKind::Button("go".into()))
            .entry(TimelineEntry::at_start("b"));
        assert_eq!(s.scheduled_length(), None, "waits for the user");
    }

    #[test]
    fn document_scene_order() {
        let mut doc = ImDocument::new("ATM Course");
        doc.sections.push(Section {
            title: "s1".into(),
            subsections: vec![Subsection {
                title: "ss1".into(),
                scenes: vec![Scene::new("a"), Scene::new("b")],
            }],
        });
        doc.sections.push(Section {
            title: "s2".into(),
            subsections: vec![Subsection {
                title: "ss2".into(),
                scenes: vec![Scene::new("c")],
            }],
        });
        let titles: Vec<&str> = doc.scenes().map(|s| s.title.as_str()).collect();
        assert_eq!(titles, vec!["a", "b", "c"]);
        assert_eq!(doc.scene_count(), 3);
    }

    #[test]
    fn behavior_builder() {
        let b = Behavior::when(
            BehaviorCondition::Clicked("stop".into()),
            vec![
                BehaviorAction::Stop("audio1".into()),
                BehaviorAction::Stop("text1".into()),
                BehaviorAction::Stop("image1".into()),
            ],
        )
        .and(BehaviorCondition::DataEquals(
            "gate".into(),
            GenericValue::Int(1),
        ));
        assert_eq!(b.conditions.len(), 2);
        assert_eq!(b.actions.len(), 3);
    }
}
