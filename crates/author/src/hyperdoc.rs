//! The hypermedia document model (§4.3.2, Fig 4.3).
//!
//! "A hypermedia document is modeled with a logical structure, a layout
//! structure and a navigation structure." Pages hold media elements
//! (including *choice* as "a new media object"); the navigation structure
//! links logical nodes, fired by clickable conditions — the paper's
//! example navigates "Next Section" and branches through "Test Your
//! Knowledge" questions by answer.

use crate::imd::MediaHandle;
use serde::{Deserialize, Serialize};

/// One element laid out on a page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageElement {
    /// Page-unique key.
    pub key: String,
    /// What it is.
    pub kind: PageElementKind,
    /// Layout position.
    pub position: (i32, i32),
}

/// Kinds of page element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PageElementKind {
    /// Body text authored inline.
    Text(String),
    /// A media object from the content database.
    Media(MediaHandle),
    /// A clickable choice ("choice is added as a new media object").
    Choice(String),
    /// A clickable word within the page text — "Word is the smallest
    /// component in the logical structure which is usually specified as
    /// the source of a link."
    Word(String),
}

impl PageElementKind {
    /// Is this element clickable (a valid link source)?
    pub fn clickable(&self) -> bool {
        matches!(self, PageElementKind::Choice(_) | PageElementKind::Word(_))
    }
}

/// A page: the logical unit of a hypermedia document.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Page {
    /// Page title.
    pub title: String,
    /// Elements in layout order.
    pub elements: Vec<PageElement>,
}

impl Page {
    /// An empty page.
    pub fn new(title: &str) -> Self {
        Page {
            title: title.to_string(),
            elements: Vec::new(),
        }
    }

    /// Add an element at a position.
    pub fn element(mut self, key: &str, kind: PageElementKind, position: (i32, i32)) -> Self {
        self.elements.push(PageElement {
            key: key.to_string(),
            kind,
            position,
        });
        self
    }

    /// Shorthand: body text at (0, y).
    pub fn text(self, key: &str, body: &str, y: i32) -> Self {
        self.element(key, PageElementKind::Text(body.to_string()), (0, y))
    }

    /// Shorthand: a choice button.
    pub fn choice(self, key: &str, label: &str, position: (i32, i32)) -> Self {
        self.element(key, PageElementKind::Choice(label.to_string()), position)
    }

    /// Find an element by key.
    pub fn find(&self, key: &str) -> Option<&PageElement> {
        self.elements.iter().find(|e| e.key == key)
    }
}

/// What fires a navigation link: "conditions are usually buttons or
/// special clickable text in layout of the document".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NavCondition {
    /// The element was clicked.
    Clicked {
        /// Element key on the source page.
        element: String,
    },
}

/// One edge of the navigation structure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NavLink {
    /// Source page index.
    pub from: usize,
    /// Firing condition.
    pub condition: NavCondition,
    /// Destination page index.
    pub to: usize,
}

/// A complete hypermedia document.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HyperDocument {
    /// Document title.
    pub title: String,
    /// Keywords for the database index.
    pub keywords: Vec<String>,
    /// Pages (index 0 is the entry page).
    pub pages: Vec<Page>,
    /// The navigation structure.
    pub nav: Vec<NavLink>,
}

impl HyperDocument {
    /// A document with a title.
    pub fn new(title: &str) -> Self {
        HyperDocument {
            title: title.to_string(),
            ..Default::default()
        }
    }

    /// Add a page; returns its index.
    pub fn add_page(&mut self, page: Page) -> usize {
        self.pages.push(page);
        self.pages.len() - 1
    }

    /// Link: clicking `element` on page `from` navigates to page `to`.
    pub fn link_click(&mut self, from: usize, element: &str, to: usize) {
        self.nav.push(NavLink {
            from,
            condition: NavCondition::Clicked {
                element: element.to_string(),
            },
            to,
        });
    }

    /// Outgoing links of a page (the "subset view" the navigation view
    /// shows, §4.5.3).
    pub fn links_from(&self, page: usize) -> Vec<&NavLink> {
        self.nav.iter().filter(|l| l.from == page).collect()
    }

    /// Pages unreachable from the entry page — an authoring smell the
    /// editor flags.
    pub fn unreachable_pages(&self) -> Vec<usize> {
        if self.pages.is_empty() {
            return Vec::new();
        }
        let mut reached = vec![false; self.pages.len()];
        let mut stack = vec![0usize];
        while let Some(p) = stack.pop() {
            if reached[p] {
                continue;
            }
            reached[p] = true;
            for l in self.links_from(p) {
                if l.to < self.pages.len() {
                    stack.push(l.to);
                }
            }
        }
        (0..self.pages.len()).filter(|i| !reached[*i]).collect()
    }

    /// Build the paper's Fig 4.3b fragment: a section page with "Next
    /// Section" and "Test Your Knowledge", a question page whose answers
    /// branch to different nodes. Used by tests, examples and the F4.3
    /// table.
    pub fn figure_4_3_example() -> HyperDocument {
        let mut doc = HyperDocument::new("Fig 4.3 navigation example");
        let current = doc.add_page(
            Page::new("Current Section")
                .text("body", "This section explains ATM cell switching.", 10)
                .choice("next_section", "Next Section", (0, 100))
                .choice("test", "Test Your Knowledge", (150, 100)),
        );
        let next = doc.add_page(Page::new("Next Section").text(
            "body",
            "Virtual circuits and signalling.",
            10,
        ));
        let question = doc.add_page(
            Page::new("Question 1")
                .text("q", "How large is an ATM cell?", 10)
                .choice("ans_48", "48 bytes", (0, 60))
                .choice("ans_53", "53 bytes", (0, 90)),
        );
        let wrong = doc.add_page(
            Page::new("Review")
                .text("r", "Not quite: 48 is the payload; the cell is 53.", 10)
                .choice("back", "Try again", (0, 60)),
        );
        let right = doc.add_page(
            Page::new("Correct")
                .text("c", "Right: 53 bytes, 5 of header.", 10)
                .choice("continue", "Continue", (0, 60)),
        );
        doc.link_click(current, "next_section", next);
        doc.link_click(current, "test", question);
        doc.link_click(question, "ans_48", wrong);
        doc.link_click(question, "ans_53", right);
        doc.link_click(wrong, "back", question);
        doc.link_click(right, "continue", next);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_structure_matches_figure() {
        let doc = HyperDocument::figure_4_3_example();
        assert_eq!(doc.pages.len(), 5);
        assert_eq!(doc.nav.len(), 6);
        let from_current = doc.links_from(0);
        assert_eq!(from_current.len(), 2, "Next Section + Test Your Knowledge");
        assert!(doc.unreachable_pages().is_empty(), "all pages reachable");
    }

    #[test]
    fn clickability() {
        assert!(PageElementKind::Choice("x".into()).clickable());
        assert!(PageElementKind::Word("atm".into()).clickable());
        assert!(!PageElementKind::Text("body".into()).clickable());
    }

    #[test]
    fn unreachable_detection() {
        let mut doc = HyperDocument::new("d");
        let a = doc.add_page(Page::new("a").choice("go", "Go", (0, 0)));
        let b = doc.add_page(Page::new("b"));
        let orphan = doc.add_page(Page::new("orphan"));
        doc.link_click(a, "go", b);
        assert_eq!(doc.unreachable_pages(), vec![orphan]);
    }

    #[test]
    fn page_find() {
        let p = Page::new("p").choice("c1", "Click", (5, 5));
        assert!(p.find("c1").is_some());
        assert_eq!(p.find("c1").unwrap().position, (5, 5));
        assert!(p.find("zz").is_none());
    }
}
