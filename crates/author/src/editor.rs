//! Courseware editor facilities (§4.5): validation the editor runs before
//! publishing, and the four authoring views (§4.5.3) as queryable
//! structures — a headless stand-in for the GUI the prototype sketched.

use crate::hyperdoc::{HyperDocument, NavCondition};
use crate::imd::{Behavior, BehaviorAction, BehaviorCondition, ImDocument, Scene};
use mits_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// A problem the validator found. `Error`s block publishing; `Warning`s
/// don't.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationIssue {
    /// A timeline/behavior/nav reference names a missing element.
    DanglingReference {
        /// Where (scene/page title).
        unit: String,
        /// The missing key.
        key: String,
    },
    /// Two elements share a key within one unit.
    DuplicateKey {
        /// Where.
        unit: String,
        /// The duplicated key.
        key: String,
    },
    /// A behavior has no conditions.
    EmptyConditionSet {
        /// Where.
        unit: String,
    },
    /// A `GotoScene`/nav edge points outside the document.
    BadJumpTarget {
        /// Where.
        unit: String,
        /// The out-of-range index.
        target: usize,
    },
    /// A non-final scene can never end (no timer, no scene transition) —
    /// students would be stuck.
    DeadEndScene {
        /// Where.
        unit: String,
    },
    /// A page is unreachable from the entry page (warning).
    UnreachablePage {
        /// Page index.
        page: usize,
    },
    /// Two timeline entries overlap at identical position and channel
    /// (warning — the layout view would show them stacked).
    LayoutCollision {
        /// Where.
        unit: String,
        /// The two element keys.
        keys: (String, String),
    },
}

impl ValidationIssue {
    /// Does this issue block publishing?
    pub fn is_error(&self) -> bool {
        !matches!(
            self,
            ValidationIssue::UnreachablePage { .. } | ValidationIssue::LayoutCollision { .. }
        )
    }
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationIssue::DanglingReference { unit, key } => {
                write!(f, "{unit}: reference to missing element '{key}'")
            }
            ValidationIssue::DuplicateKey { unit, key } => {
                write!(f, "{unit}: duplicate element key '{key}'")
            }
            ValidationIssue::EmptyConditionSet { unit } => {
                write!(f, "{unit}: behavior with no conditions")
            }
            ValidationIssue::BadJumpTarget { unit, target } => {
                write!(f, "{unit}: jump to nonexistent unit {target}")
            }
            ValidationIssue::DeadEndScene { unit } => {
                write!(f, "{unit}: scene can never end or advance")
            }
            ValidationIssue::UnreachablePage { page } => {
                write!(f, "page {page} unreachable from the entry page")
            }
            ValidationIssue::LayoutCollision { unit, keys } => {
                write!(
                    f,
                    "{unit}: '{}' and '{}' occupy the same spot",
                    keys.0, keys.1
                )
            }
        }
    }
}

fn behavior_keys(b: &Behavior) -> Vec<&str> {
    let mut keys = Vec::new();
    for c in &b.conditions {
        match c {
            BehaviorCondition::Clicked(k)
            | BehaviorCondition::Finished(k)
            | BehaviorCondition::DataEquals(k, _) => keys.push(k.as_str()),
        }
    }
    for a in &b.actions {
        match a {
            BehaviorAction::Start(k)
            | BehaviorAction::Stop(k)
            | BehaviorAction::Show(k)
            | BehaviorAction::Hide(k)
            | BehaviorAction::SetData(k, _) => keys.push(k.as_str()),
            BehaviorAction::GotoScene(_) | BehaviorAction::NextScene => {}
        }
    }
    keys
}

fn scene_can_advance(scene: &Scene) -> bool {
    scene.scheduled_length().is_some()
        || scene.behaviors.iter().any(|b| {
            b.actions
                .iter()
                .any(|a| matches!(a, BehaviorAction::GotoScene(_) | BehaviorAction::NextScene))
        })
}

/// Validate an interactive multimedia document.
pub fn validate_imd(doc: &ImDocument) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    let scene_count = doc.scene_count();
    for (si, scene) in doc.scenes().enumerate() {
        let unit = scene.title.clone();
        // Duplicate keys.
        let mut seen = HashSet::new();
        for el in &scene.elements {
            if !seen.insert(el.key.as_str()) {
                issues.push(ValidationIssue::DuplicateKey {
                    unit: unit.clone(),
                    key: el.key.clone(),
                });
            }
        }
        // Timeline references.
        for entry in &scene.timeline {
            if scene.find(&entry.element).is_none() {
                issues.push(ValidationIssue::DanglingReference {
                    unit: unit.clone(),
                    key: entry.element.clone(),
                });
            }
        }
        // Behavior references + condition sets + jump targets.
        for b in &scene.behaviors {
            if b.conditions.is_empty() {
                issues.push(ValidationIssue::EmptyConditionSet { unit: unit.clone() });
            }
            for k in behavior_keys(b) {
                if scene.find(k).is_none() {
                    issues.push(ValidationIssue::DanglingReference {
                        unit: unit.clone(),
                        key: k.to_string(),
                    });
                }
            }
            for a in &b.actions {
                if let BehaviorAction::GotoScene(t) = a {
                    if *t >= scene_count {
                        issues.push(ValidationIssue::BadJumpTarget {
                            unit: unit.clone(),
                            target: *t,
                        });
                    }
                }
            }
        }
        // Dead ends (last scene may legitimately rest).
        if si + 1 < scene_count && !scene_can_advance(scene) {
            issues.push(ValidationIssue::DeadEndScene { unit: unit.clone() });
        }
        // Layout collisions — only among *visible* elements (audio takes
        // no screen space).
        let visible = |key: &str| {
            scene.find(key).is_none_or(|e| match &e.kind {
                crate::imd::ElementKind::Media(h) => h.format.kind().is_visible(),
                _ => true,
            })
        };
        for (i, a) in scene.timeline.iter().enumerate() {
            for b in scene.timeline.iter().skip(i + 1) {
                if a.position == b.position
                    && a.channel == b.channel
                    && a.element != b.element
                    && visible(&a.element)
                    && visible(&b.element)
                    && overlap(a.start, a.duration, b.start, b.duration)
                {
                    issues.push(ValidationIssue::LayoutCollision {
                        unit: unit.clone(),
                        keys: (a.element.clone(), b.element.clone()),
                    });
                }
            }
        }
    }
    issues
}

fn overlap(
    s1: SimDuration,
    d1: Option<SimDuration>,
    s2: SimDuration,
    d2: Option<SimDuration>,
) -> bool {
    let e1 = d1.map(|d| s1 + d);
    let e2 = d2.map(|d| s2 + d);
    let starts_before_end = |s: SimDuration, e: Option<SimDuration>| match e {
        Some(end) => s < end,
        None => true, // unbounded display overlaps anything after it
    };
    starts_before_end(s1, e2) && starts_before_end(s2, e1)
}

/// Validate a hypermedia document.
pub fn validate_hyperdoc(doc: &HyperDocument) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    for (pi, page) in doc.pages.iter().enumerate() {
        let mut seen = HashSet::new();
        for el in &page.elements {
            if !seen.insert(el.key.as_str()) {
                issues.push(ValidationIssue::DuplicateKey {
                    unit: page.title.clone(),
                    key: el.key.clone(),
                });
            }
        }
        let _ = pi;
    }
    for nav in &doc.nav {
        if nav.from >= doc.pages.len() || nav.to >= doc.pages.len() {
            issues.push(ValidationIssue::BadJumpTarget {
                unit: format!("nav from page {}", nav.from),
                target: nav.to.max(nav.from),
            });
            continue;
        }
        let NavCondition::Clicked { element } = &nav.condition;
        let page = &doc.pages[nav.from];
        match page.find(element) {
            None => issues.push(ValidationIssue::DanglingReference {
                unit: page.title.clone(),
                key: element.clone(),
            }),
            Some(el) if !el.kind.clickable() => issues.push(ValidationIssue::DanglingReference {
                unit: page.title.clone(),
                key: format!("{element} (not clickable)"),
            }),
            Some(_) => {}
        }
    }
    for p in doc.unreachable_pages() {
        issues.push(ValidationIssue::UnreachablePage { page: p });
    }
    issues
}

/// The time-line view (§4.5.3): rows of (element, start, end) per scene,
/// sorted by start — what the editor renders graphically.
pub fn timeline_view(scene: &Scene) -> Vec<(String, SimDuration, Option<SimDuration>)> {
    let mut rows: Vec<(String, SimDuration, Option<SimDuration>)> = scene
        .timeline
        .iter()
        .map(|t| {
            let end = t
                .duration
                .or_else(|| {
                    scene.find(&t.element).and_then(|e| match &e.kind {
                        crate::imd::ElementKind::Media(h) if !h.duration.is_zero() => {
                            Some(h.duration)
                        }
                        _ => None,
                    })
                })
                .map(|d| t.start + d);
            (t.element.clone(), t.start, end)
        })
        .collect();
    rows.sort_by_key(|(_, s, _)| *s);
    rows
}

/// The behavior view (§4.5.3): a two-field table of condition set and
/// action set, rendered as text.
pub fn behavior_view(scene: &Scene) -> Vec<(String, String)> {
    scene
        .behaviors
        .iter()
        .map(|b| {
            let conds: Vec<String> = b
                .conditions
                .iter()
                .map(|c| match c {
                    BehaviorCondition::Clicked(k) => format!("clicked({k})"),
                    BehaviorCondition::Finished(k) => format!("finished({k})"),
                    BehaviorCondition::DataEquals(k, v) => format!("data({k}) == {v}"),
                })
                .collect();
            let acts: Vec<String> = b
                .actions
                .iter()
                .map(|a| match a {
                    BehaviorAction::Start(k) => format!("start({k})"),
                    BehaviorAction::Stop(k) => format!("stop({k})"),
                    BehaviorAction::Show(k) => format!("show({k})"),
                    BehaviorAction::Hide(k) => format!("hide({k})"),
                    BehaviorAction::SetData(k, v) => format!("set({k}, {v})"),
                    BehaviorAction::GotoScene(i) => format!("goto(scene {i})"),
                    BehaviorAction::NextScene => "next-scene".to_string(),
                })
                .collect();
            (conds.join(" && "), acts.join("; "))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imd::{ElementKind, Section, Subsection, TimelineEntry};

    fn doc_with(scene: Scene, more: Option<Scene>) -> ImDocument {
        let mut scenes = vec![scene];
        scenes.extend(more);
        let mut doc = ImDocument::new("d");
        doc.sections.push(Section {
            title: "s".into(),
            subsections: vec![Subsection {
                title: "ss".into(),
                scenes,
            }],
        });
        doc
    }

    #[test]
    fn clean_document_validates() {
        let scene = Scene::new("ok")
            .element("t", ElementKind::Caption("x".into()))
            .entry(TimelineEntry::at_start("t").for_duration(SimDuration::from_secs(1)));
        assert!(validate_imd(&doc_with(scene, None)).is_empty());
    }

    #[test]
    fn dangling_timeline_reference_flagged() {
        let scene = Scene::new("bad").entry(TimelineEntry::at_start("ghost"));
        let issues = validate_imd(&doc_with(scene, None));
        assert!(issues.iter().any(|i| matches!(i,
            ValidationIssue::DanglingReference { key, .. } if key == "ghost")));
        assert!(issues[0].is_error());
    }

    #[test]
    fn duplicate_keys_flagged() {
        let scene = Scene::new("dup")
            .element("x", ElementKind::Caption("a".into()))
            .element("x", ElementKind::Caption("b".into()));
        let issues = validate_imd(&doc_with(scene, None));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::DuplicateKey { .. })));
    }

    #[test]
    fn dead_end_scene_flagged_only_when_not_last() {
        let stuck = Scene::new("stuck").element("b", ElementKind::Button("hi".into()));
        // As the only (last) scene: fine.
        assert!(validate_imd(&doc_with(stuck.clone(), None)).is_empty());
        // Followed by another scene: dead end.
        let issues = validate_imd(&doc_with(stuck, Some(Scene::new("after"))));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::DeadEndScene { .. })));
    }

    #[test]
    fn bad_jump_flagged() {
        let scene = Scene::new("jumpy")
            .element("b", ElementKind::Button("go".into()))
            .behavior(crate::imd::Behavior::when(
                crate::imd::BehaviorCondition::Clicked("b".into()),
                vec![crate::imd::BehaviorAction::GotoScene(99)],
            ));
        let issues = validate_imd(&doc_with(scene, None));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::BadJumpTarget { target: 99, .. })));
    }

    #[test]
    fn layout_collision_is_warning() {
        let scene = Scene::new("overlap")
            .element("a", ElementKind::Caption("a".into()))
            .element("b", ElementKind::Caption("b".into()))
            .entry(TimelineEntry::at_start("a").at(5, 5))
            .entry(TimelineEntry::at_start("b").at(5, 5));
        let issues = validate_imd(&doc_with(scene, None));
        let collision = issues
            .iter()
            .find(|i| matches!(i, ValidationIssue::LayoutCollision { .. }))
            .expect("collision found");
        assert!(!collision.is_error());
    }

    #[test]
    fn no_collision_when_time_disjoint() {
        let scene = Scene::new("seq")
            .element("a", ElementKind::Caption("a".into()))
            .element("b", ElementKind::Caption("b".into()))
            .entry(
                TimelineEntry::at_start("a")
                    .at(5, 5)
                    .for_duration(SimDuration::from_secs(1)),
            )
            .entry(
                TimelineEntry::at_start("b")
                    .at(5, 5)
                    .starting(SimDuration::from_secs(2))
                    .for_duration(SimDuration::from_secs(1)),
            );
        assert!(validate_imd(&doc_with(scene, None)).is_empty());
    }

    #[test]
    fn hyperdoc_validation() {
        let doc = crate::hyperdoc::HyperDocument::figure_4_3_example();
        assert!(validate_hyperdoc(&doc).is_empty());
        let mut bad = doc.clone();
        bad.link_click(0, "no-such-element", 1);
        assert!(validate_hyperdoc(&bad)
            .iter()
            .any(|i| matches!(i, ValidationIssue::DanglingReference { .. })));
        let mut far = doc;
        far.link_click(0, "next_section", 99);
        assert!(validate_hyperdoc(&far)
            .iter()
            .any(|i| matches!(i, ValidationIssue::BadJumpTarget { .. })));
    }

    #[test]
    fn nav_link_from_text_not_clickable() {
        let mut doc = crate::hyperdoc::HyperDocument::new("d");
        let a = doc.add_page(crate::hyperdoc::Page::new("a").text("body", "hello", 0));
        let b = doc.add_page(crate::hyperdoc::Page::new("b"));
        doc.link_click(a, "body", b);
        let issues = validate_hyperdoc(&doc);
        assert!(issues.iter().any(|i| matches!(i,
            ValidationIssue::DanglingReference { key, .. } if key.contains("not clickable"))));
    }

    #[test]
    fn views_render() {
        use crate::imd::MediaHandle;
        let scene = Scene::new("v")
            .element(
                "vid",
                ElementKind::Media(MediaHandle {
                    media: mits_media::MediaId(1),
                    format: mits_media::MediaFormat::Mpeg,
                    duration: SimDuration::from_secs(3),
                    dims: mits_media::VideoDims::new(1, 1),
                    name: "v.mpg".into(),
                }),
            )
            .element("stop", ElementKind::Button("Stop".into()))
            .entry(TimelineEntry::at_start("vid"))
            .entry(TimelineEntry::at_start("stop").starting(SimDuration::from_secs(1)))
            .behavior(crate::imd::Behavior::when(
                crate::imd::BehaviorCondition::Clicked("stop".into()),
                vec![crate::imd::BehaviorAction::Stop("vid".into())],
            ));
        let tl = timeline_view(&scene);
        assert_eq!(tl[0].0, "vid");
        assert_eq!(tl[0].2, Some(SimDuration::from_secs(3)));
        assert_eq!(tl[1].0, "stop");
        let bv = behavior_view(&scene);
        assert_eq!(bv[0].0, "clicked(stop)");
        assert_eq!(bv[0].1, "stop(vid)");
    }
}
