//! The document → MHEG compiler — the layer mapping the thesis deferred
//! to future work (§6.2), implemented.
//!
//! Both document models compile to plain interchanged MHEG objects that
//! run unmodified on the `mits-mheg` engine:
//!
//! * every scene/page becomes a **composite** whose `on_start` actions
//!   realize the layout and time-line structures;
//! * every behavior/navigation edge becomes a **link** object;
//! * bounded scenes get a hidden *scene timer* content object whose
//!   completion drives the default "simple serial playback";
//! * a *position flag* object records the current scene/page index (data
//!   slot), giving the navigator its resume-position feature (§5.4); and
//! * a *completion flag* object is set to 1 when the document finishes.
//!
//! The whole object set ships in one container — the interchange unit the
//! courseware database stores.

use crate::courseware_lib::{caption_body, media_body};
use crate::hyperdoc::{HyperDocument, NavCondition, PageElementKind};
use crate::imd::{BehaviorAction, BehaviorCondition, ElementKind, ImDocument, Scene};
use mits_mheg::action::{ActionEntry, ElementaryAction, TargetRef};
use mits_mheg::link::{Condition, StatusKind};
use mits_mheg::{ClassLibrary, GenericValue, MhegId, MhegObject, ObjectInfo};
use std::collections::HashMap;

/// The compiler's output: a self-contained MHEG object set.
#[derive(Debug, Clone)]
pub struct CompiledCourseware {
    /// Every object, ready for the database / interchange.
    pub objects: Vec<MhegObject>,
    /// The container grouping the whole set.
    pub root: MhegId,
    /// The document composite: `Run` this to start the presentation.
    pub entry: MhegId,
    /// Scene/page composites in document order, with titles.
    pub units: Vec<(String, MhegId)>,
    /// Element model ids by (unit index, element key).
    pub element_ids: HashMap<(usize, String), MhegId>,
    /// Value object whose data slot holds the current unit index.
    pub position_flag: MhegId,
    /// Value object whose data slot becomes 1 at document completion.
    pub completion_flag: MhegId,
}

impl CompiledCourseware {
    /// Element id lookup.
    pub fn element(&self, unit: usize, key: &str) -> Option<MhegId> {
        self.element_ids.get(&(unit, key.to_string())).copied()
    }
}

/// Compile an interactive multimedia document (Fig 4.4 model).
pub fn compile_imd(app: u32, doc: &ImDocument) -> CompiledCourseware {
    let mut lib = ClassLibrary::new(app);
    let position_flag = lib.value_content("position-flag", GenericValue::Int(0));
    let completion_flag = lib.value_content("completion-flag", GenericValue::Int(0));

    let scenes: Vec<&Scene> = doc.scenes().collect();
    let mut element_ids: HashMap<(usize, String), MhegId> = HashMap::new();

    // Pass 1: mint element objects per scene.
    for (si, scene) in scenes.iter().enumerate() {
        for el in &scene.elements {
            let entry = scene.timeline.iter().find(|t| t.element == el.key);
            let position = entry.map(|t| t.position).unwrap_or((0, 0));
            let id = match &el.kind {
                ElementKind::Media(h) => lib.content(&h.name, media_body(h, position)),
                ElementKind::Caption(text) => lib.content("caption", caption_body(text, position)),
                ElementKind::Button(label) => {
                    lib.value_content(&format!("button:{label}"), GenericValue::Int(0))
                }
                ElementKind::EntryField => {
                    lib.value_content("entry-field", GenericValue::Str(String::new()))
                }
            };
            element_ids.insert((si, el.key.clone()), id);
        }
    }

    // Pass 2: per-scene timers (so pass 3 can reference any scene's
    // composite id — we must know ids up front; mint timers now and
    // composites in a fixed id order afterwards).
    let mut timer_ids: Vec<Option<MhegId>> = Vec::with_capacity(scenes.len());
    for scene in &scenes {
        timer_ids.push(scene.scheduled_length().map(|len| {
            lib.inline_content(
                "scene-timer",
                mits_media::MediaFormat::Ascii,
                bytes::Bytes::new(),
                len,
                mits_media::VideoDims::default(),
            )
        }));
    }

    // Composite ids are assigned consecutively after everything minted so
    // far; reserve them by minting empty composites now and filling their
    // bodies via a second library (simplest correct approach: compute
    // bodies first, then mint).
    //
    // We instead mint composites last, in scene order, and *predict*
    // nothing: links reference composites through forward-known ids by
    // minting placeholder value objects? No — links can be minted after
    // composites. Order: elements, timers, [composites], [links], doc.
    let mut scene_comp_ids = Vec::with_capacity(scenes.len());
    for (si, scene) in scenes.iter().enumerate() {
        let mut components: Vec<MhegId> = scene
            .elements
            .iter()
            .map(|e| element_ids[&(si, e.key.clone())])
            .collect();
        if let Some(t) = timer_ids[si] {
            components.push(t);
        }
        let mut on_start: Vec<ActionEntry> = Vec::new();
        // Timeline → start-up actions.
        for entry in &scene.timeline {
            let id = element_ids[&(si, entry.element.clone())];
            let el = scene.find(&entry.element).expect("validated");
            let mut actions = vec![ElementaryAction::SetPosition {
                x: entry.position.0,
                y: entry.position.1,
            }];
            if entry.size != (0, 0) {
                actions.push(ElementaryAction::SetSize {
                    w: entry.size.0,
                    h: entry.size.1,
                });
            }
            actions.push(ElementaryAction::Run);
            if matches!(el.kind, ElementKind::Button(_) | ElementKind::EntryField) {
                actions.push(ElementaryAction::SetInteraction(true));
            }
            on_start.push(ActionEntry::after(
                TargetRef::Model(id),
                entry.start,
                actions,
            ));
            // Bounded static display: stop it at start + duration.
            if let Some(d) = entry.duration {
                on_start.push(ActionEntry::after(
                    TargetRef::Model(id),
                    entry.start + d,
                    vec![ElementaryAction::Stop],
                ));
            }
        }
        // Timer runs from scene start.
        if let Some(t) = timer_ids[si] {
            on_start.push(ActionEntry::now(
                TargetRef::Model(t),
                vec![ElementaryAction::Run],
            ));
        }
        // Scene start also records the position flag.
        on_start.push(ActionEntry::now(
            TargetRef::Model(position_flag),
            vec![ElementaryAction::SetData(GenericValue::Int(si as i64))],
        ));
        let comp = lib.composite(&scene.title, components, on_start, vec![]);
        scene_comp_ids.push(comp);
    }

    // Pass 3: behaviors and serial-playback links.
    for (si, scene) in scenes.iter().enumerate() {
        for (bi, behavior) in scene.behaviors.iter().enumerate() {
            let mut conds = behavior.conditions.iter().map(|c| match c {
                BehaviorCondition::Clicked(k) => {
                    Condition::selected(TargetRef::Model(element_ids[&(si, k.clone())]))
                }
                BehaviorCondition::Finished(k) => {
                    Condition::completed(TargetRef::Model(element_ids[&(si, k.clone())]))
                }
                BehaviorCondition::DataEquals(k, v) => Condition::equals(
                    TargetRef::Model(element_ids[&(si, k.clone())]),
                    StatusKind::Data,
                    v.clone(),
                ),
            });
            let trigger = conds.next().expect("validated: non-empty conditions");
            let additional: Vec<Condition> = conds.collect();
            let entries = lower_actions(
                &behavior.actions,
                si,
                &element_ids,
                &scene_comp_ids,
                position_flag,
                completion_flag,
            );
            lib.link(
                &format!("scene{si}-behavior{bi}"),
                trigger,
                additional,
                entries,
            );
        }
        // Default serial playback: timer completion advances the scene.
        if let Some(t) = timer_ids[si] {
            let entries = lower_actions(
                &[BehaviorAction::NextScene],
                si,
                &element_ids,
                &scene_comp_ids,
                position_flag,
                completion_flag,
            );
            lib.link(
                &format!("scene{si}-serial-advance"),
                Condition::completed(TargetRef::Model(t)),
                vec![],
                entries,
            );
        }
    }

    // Document composite: all scenes as components; running it runs
    // scene 0.
    let entry = lib.composite(
        &doc.title,
        scene_comp_ids.clone(),
        vec![ActionEntry::now(
            TargetRef::Model(scene_comp_ids[0]),
            vec![ElementaryAction::Run],
        )],
        vec![],
    );

    // Container: the interchange unit. Flags and link/timer objects ride
    // along via the library's full object list.
    let all_ids: Vec<MhegId> = lib.objects().iter().map(|o| o.id).collect();
    let root = lib.container(&doc.title, all_ids);
    // Stamp title + keywords on the container for the database index.
    let mut objects = lib.into_objects();
    if let Some(container) = objects.iter_mut().find(|o| o.id == root) {
        container.info =
            ObjectInfo::named(doc.title.clone()).with_keywords(doc.keywords.iter().cloned());
    }

    CompiledCourseware {
        objects,
        root,
        entry,
        units: scenes
            .iter()
            .zip(&scene_comp_ids)
            .map(|(s, id)| (s.title.clone(), *id))
            .collect(),
        element_ids,
        position_flag,
        completion_flag,
    }
}

fn lower_actions(
    actions: &[BehaviorAction],
    si: usize,
    element_ids: &HashMap<(usize, String), MhegId>,
    scene_comp_ids: &[MhegId],
    position_flag: MhegId,
    completion_flag: MhegId,
) -> Vec<ActionEntry> {
    let mut entries = Vec::new();
    for action in actions {
        match action {
            BehaviorAction::Start(k) => entries.push(ActionEntry::now(
                TargetRef::Model(element_ids[&(si, k.clone())]),
                vec![ElementaryAction::Run],
            )),
            BehaviorAction::Stop(k) => entries.push(ActionEntry::now(
                TargetRef::Model(element_ids[&(si, k.clone())]),
                vec![ElementaryAction::Stop],
            )),
            BehaviorAction::Show(k) => entries.push(ActionEntry::now(
                TargetRef::Model(element_ids[&(si, k.clone())]),
                vec![ElementaryAction::SetVisibility(true)],
            )),
            BehaviorAction::Hide(k) => entries.push(ActionEntry::now(
                TargetRef::Model(element_ids[&(si, k.clone())]),
                vec![ElementaryAction::SetVisibility(false)],
            )),
            BehaviorAction::SetData(k, v) => entries.push(ActionEntry::now(
                TargetRef::Model(element_ids[&(si, k.clone())]),
                vec![ElementaryAction::SetData(GenericValue::Int(*v))],
            )),
            BehaviorAction::GotoScene(target) => {
                entries.push(ActionEntry::now(
                    TargetRef::Model(scene_comp_ids[si]),
                    vec![ElementaryAction::Stop],
                ));
                if let Some(comp) = scene_comp_ids.get(*target) {
                    entries.push(ActionEntry::now(
                        TargetRef::Model(*comp),
                        vec![ElementaryAction::Run],
                    ));
                    entries.push(ActionEntry::now(
                        TargetRef::Model(position_flag),
                        vec![ElementaryAction::SetData(GenericValue::Int(*target as i64))],
                    ));
                }
            }
            BehaviorAction::NextScene => {
                entries.push(ActionEntry::now(
                    TargetRef::Model(scene_comp_ids[si]),
                    vec![ElementaryAction::Stop],
                ));
                if si + 1 < scene_comp_ids.len() {
                    entries.push(ActionEntry::now(
                        TargetRef::Model(scene_comp_ids[si + 1]),
                        vec![ElementaryAction::Run],
                    ));
                } else {
                    entries.push(ActionEntry::now(
                        TargetRef::Model(completion_flag),
                        vec![ElementaryAction::SetData(GenericValue::Int(1))],
                    ));
                }
            }
        }
    }
    entries
}

/// Compile a hypermedia document (Fig 4.3 model).
pub fn compile_hyperdoc(app: u32, doc: &HyperDocument) -> CompiledCourseware {
    let mut lib = ClassLibrary::new(app);
    let position_flag = lib.value_content("position-flag", GenericValue::Int(0));
    let completion_flag = lib.value_content("completion-flag", GenericValue::Int(0));
    let mut element_ids: HashMap<(usize, String), MhegId> = HashMap::new();

    // Elements.
    for (pi, page) in doc.pages.iter().enumerate() {
        for el in &page.elements {
            let id = match &el.kind {
                PageElementKind::Text(body) => {
                    lib.content("page-text", caption_body(body, el.position))
                }
                PageElementKind::Media(h) => lib.content(&h.name, media_body(h, el.position)),
                PageElementKind::Choice(label) => {
                    lib.value_content(&format!("choice:{label}"), GenericValue::Int(0))
                }
                PageElementKind::Word(word) => {
                    lib.value_content(&format!("word:{word}"), GenericValue::Int(0))
                }
            };
            element_ids.insert((pi, el.key.clone()), id);
        }
    }

    // Page composites: everything runs at page start; clickables get
    // interaction enabled.
    let mut page_comp_ids = Vec::with_capacity(doc.pages.len());
    for (pi, page) in doc.pages.iter().enumerate() {
        let components: Vec<MhegId> = page
            .elements
            .iter()
            .map(|e| element_ids[&(pi, e.key.clone())])
            .collect();
        let mut on_start: Vec<ActionEntry> = Vec::new();
        for el in &page.elements {
            let id = element_ids[&(pi, el.key.clone())];
            let mut actions = vec![
                ElementaryAction::SetPosition {
                    x: el.position.0,
                    y: el.position.1,
                },
                ElementaryAction::Run,
            ];
            if el.kind.clickable() {
                actions.push(ElementaryAction::SetInteraction(true));
            }
            on_start.push(ActionEntry::now(TargetRef::Model(id), actions));
        }
        on_start.push(ActionEntry::now(
            TargetRef::Model(position_flag),
            vec![ElementaryAction::SetData(GenericValue::Int(pi as i64))],
        ));
        page_comp_ids.push(lib.composite(&page.title, components, on_start, vec![]));
    }

    // Navigation links.
    for (li, nav) in doc.nav.iter().enumerate() {
        let NavCondition::Clicked { element } = &nav.condition;
        let source = element_ids[&(nav.from, element.clone())];
        lib.link(
            &format!("nav{li}"),
            Condition::selected(TargetRef::Model(source)),
            vec![],
            vec![
                ActionEntry::now(
                    TargetRef::Model(page_comp_ids[nav.from]),
                    vec![ElementaryAction::Stop],
                ),
                ActionEntry::now(
                    TargetRef::Model(page_comp_ids[nav.to]),
                    vec![ElementaryAction::Run],
                ),
                ActionEntry::now(
                    TargetRef::Model(position_flag),
                    vec![ElementaryAction::SetData(GenericValue::Int(nav.to as i64))],
                ),
            ],
        );
    }

    let entry = lib.composite(
        &doc.title,
        page_comp_ids.clone(),
        vec![ActionEntry::now(
            TargetRef::Model(page_comp_ids[0]),
            vec![ElementaryAction::Run],
        )],
        vec![],
    );
    let all_ids: Vec<MhegId> = lib.objects().iter().map(|o| o.id).collect();
    let root = lib.container(&doc.title, all_ids);
    let mut objects = lib.into_objects();
    if let Some(container) = objects.iter_mut().find(|o| o.id == root) {
        container.info =
            ObjectInfo::named(doc.title.clone()).with_keywords(doc.keywords.iter().cloned());
    }

    CompiledCourseware {
        objects,
        root,
        entry,
        units: doc
            .pages
            .iter()
            .zip(&page_comp_ids)
            .map(|(p, id)| (p.title.clone(), *id))
            .collect(),
        element_ids,
        position_flag,
        completion_flag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imd::{Behavior, MediaHandle, Section, Subsection, TimelineEntry};
    use mits_media::{MediaFormat, MediaId, VideoDims};
    use mits_mheg::{MhegEngine, RtState};
    use mits_sim::{SimDuration, SimTime};

    fn clip(id: u64, secs: u64) -> MediaHandle {
        MediaHandle {
            media: MediaId(id),
            format: MediaFormat::Mpeg,
            duration: SimDuration::from_secs(secs),
            dims: VideoDims::new(320, 240),
            name: format!("clip{id}.mpg"),
        }
    }

    /// Two bounded scenes; scene 1 has a video, scene 2 a caption shown
    /// for 2 s.
    fn two_scene_doc() -> ImDocument {
        let mut doc = ImDocument::new("Mini Course");
        doc.sections.push(Section {
            title: "s".into(),
            subsections: vec![Subsection {
                title: "ss".into(),
                scenes: vec![
                    Scene::new("scene-a")
                        .element("video1", ElementKind::Media(clip(1, 3)))
                        .entry(TimelineEntry::at_start("video1")),
                    Scene::new("scene-b")
                        .element("text1", ElementKind::Caption("done!".into()))
                        .entry(
                            TimelineEntry::at_start("text1")
                                .for_duration(SimDuration::from_secs(2)),
                        ),
                ],
            }],
        });
        doc
    }

    fn engine_with(compiled: &CompiledCourseware) -> MhegEngine {
        let mut eng = MhegEngine::new();
        for o in &compiled.objects {
            eng.ingest(o.clone());
        }
        eng
    }

    fn start(eng: &mut MhegEngine, compiled: &CompiledCourseware) {
        eng.new_rt(compiled.entry).unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Model(compiled.entry),
            vec![ElementaryAction::Run],
        ))
        .unwrap();
    }

    #[test]
    fn serial_playback_advances_scenes_and_completes() {
        let doc = two_scene_doc();
        let compiled = compile_imd(10, &doc);
        let mut eng = engine_with(&compiled);
        start(&mut eng, &compiled);
        // Scene A runs, position flag = 0.
        let pos = eng.rt_of_model(compiled.position_flag).unwrap();
        assert_eq!(eng.rt(pos).unwrap().attrs.data, GenericValue::Int(0));
        let v1 = compiled.element(0, "video1").unwrap();
        assert_eq!(
            eng.rt(eng.rt_of_model(v1).unwrap()).unwrap().state,
            RtState::Running
        );
        // After 3 s the video + timer complete → scene B runs.
        eng.advance(SimTime::from_micros(3_100_000)).unwrap();
        assert_eq!(eng.rt(pos).unwrap().attrs.data, GenericValue::Int(1));
        // After 5 s total, scene B's 2 s caption expires → document done.
        eng.advance(SimTime::from_secs(6)).unwrap();
        let done = eng.rt_of_model(compiled.completion_flag).unwrap();
        assert_eq!(eng.rt(done).unwrap().attrs.data, GenericValue::Int(1));
    }

    #[test]
    fn figure_4_4_preemption_choice_before_t2() {
        // text1 shows from t1 for 4 s, then image1; clicking choice1
        // displays image1 earlier than the pre-defined time.
        let mut doc = ImDocument::new("Fig 4.4 timeline");
        let image = MediaHandle {
            media: MediaId(9),
            format: MediaFormat::Gif,
            duration: SimDuration::ZERO,
            dims: VideoDims::new(100, 100),
            name: "image1.gif".into(),
        };
        doc.sections.push(Section {
            title: "s".into(),
            subsections: vec![Subsection {
                title: "ss".into(),
                scenes: vec![Scene::new("scene1")
                    .element("text1", ElementKind::Caption("intro text".into()))
                    .element("image1", ElementKind::Media(image))
                    .element("choice1", ElementKind::Button("show image".into()))
                    .entry(TimelineEntry::at_start("text1").for_duration(SimDuration::from_secs(4)))
                    .entry(TimelineEntry::at_start("choice1"))
                    .behavior(Behavior::when(
                        BehaviorCondition::Clicked("choice1".into()),
                        vec![
                            BehaviorAction::Stop("text1".into()),
                            BehaviorAction::Start("image1".into()),
                        ],
                    ))
                    .behavior(Behavior::when(
                        BehaviorCondition::Finished("text1".into()),
                        vec![BehaviorAction::Start("image1".into())],
                    ))],
            }],
        });
        let compiled = compile_imd(11, &doc);
        let mut eng = engine_with(&compiled);
        start(&mut eng, &compiled);
        eng.advance(SimTime::from_secs(1)).unwrap();
        // User preempts at t=1 (before t2=4).
        let choice = compiled.element(0, "choice1").unwrap();
        let choice_rt = eng.rt_of_model(choice).unwrap();
        assert!(eng.user_select(choice_rt).unwrap());
        let image = compiled.element(0, "image1").unwrap();
        let image_rt = eng.rt_of_model(image).expect("image started early");
        assert_eq!(eng.rt(image_rt).unwrap().state, RtState::Running);
        let text = compiled.element(0, "text1").unwrap();
        assert_eq!(
            eng.rt(eng.rt_of_model(text).unwrap()).unwrap().state,
            RtState::Stopped,
            "text stopped by the click"
        );
    }

    #[test]
    fn hyperdoc_navigation_follows_clicks() {
        let doc = HyperDocument::figure_4_3_example();
        let compiled = compile_hyperdoc(12, &doc);
        let mut eng = engine_with(&compiled);
        start(&mut eng, &compiled);
        let pos = eng.rt_of_model(compiled.position_flag).unwrap();
        assert_eq!(eng.rt(pos).unwrap().attrs.data, GenericValue::Int(0));
        // Click "Test Your Knowledge" → question page (index 2).
        let test_btn = compiled.element(0, "test").unwrap();
        eng.user_select(eng.rt_of_model(test_btn).unwrap()).unwrap();
        assert_eq!(eng.rt(pos).unwrap().attrs.data, GenericValue::Int(2));
        // Wrong answer → review page (3); back → question (2); right → 4.
        let wrong = compiled.element(2, "ans_48").unwrap();
        eng.user_select(eng.rt_of_model(wrong).unwrap()).unwrap();
        assert_eq!(eng.rt(pos).unwrap().attrs.data, GenericValue::Int(3));
        let back = compiled.element(3, "back").unwrap();
        eng.user_select(eng.rt_of_model(back).unwrap()).unwrap();
        assert_eq!(eng.rt(pos).unwrap().attrs.data, GenericValue::Int(2));
        let right = compiled.element(2, "ans_53").unwrap();
        eng.user_select(eng.rt_of_model(right).unwrap()).unwrap();
        assert_eq!(eng.rt(pos).unwrap().attrs.data, GenericValue::Int(4));
    }

    #[test]
    fn compiled_set_round_trips_the_codec() {
        use mits_mheg::{decode_object, encode_object, WireFormat};
        let compiled = compile_imd(13, &two_scene_doc());
        for obj in &compiled.objects {
            let wire = encode_object(obj, WireFormat::Tlv);
            assert_eq!(&decode_object(&wire, WireFormat::Tlv).unwrap(), obj);
        }
    }

    #[test]
    fn container_lists_every_object() {
        let compiled = compile_imd(14, &two_scene_doc());
        let container = compiled
            .objects
            .iter()
            .find(|o| o.id == compiled.root)
            .unwrap();
        let members = container.referenced_objects();
        // Every object except the container itself is a member.
        assert_eq!(members.len(), compiled.objects.len() - 1);
    }

    #[test]
    fn goto_scene_jumps() {
        let mut doc = two_scene_doc();
        // Add a menu scene at the end that can jump back to scene 0.
        doc.sections[0].subsections[0].scenes.push(
            Scene::new("menu")
                .element("replay", ElementKind::Button("Replay".into()))
                .entry(TimelineEntry::at_start("replay"))
                .behavior(Behavior::when(
                    BehaviorCondition::Clicked("replay".into()),
                    vec![BehaviorAction::GotoScene(0)],
                )),
        );
        let compiled = compile_imd(15, &doc);
        let mut eng = engine_with(&compiled);
        start(&mut eng, &compiled);
        eng.advance(SimTime::from_secs(10)).unwrap(); // a (3s) → b (2s) → menu
        let pos = eng.rt_of_model(compiled.position_flag).unwrap();
        assert_eq!(eng.rt(pos).unwrap().attrs.data, GenericValue::Int(2));
        let replay = compiled.element(2, "replay").unwrap();
        eng.user_select(eng.rt_of_model(replay).unwrap()).unwrap();
        assert_eq!(
            eng.rt(pos).unwrap().attrs.data,
            GenericValue::Int(0),
            "jumped back"
        );
        // And the course plays again to completion.
        eng.advance(SimTime::from_secs(30)).unwrap();
        assert_eq!(eng.rt(pos).unwrap().attrs.data, GenericValue::Int(2));
    }
}
