//! # mits-author — courseware authoring (Chapter 4)
//!
//! "Courseware authoring is the only step during which a teacher can
//! affect the learning process" (§4.0). The paper organizes authoring in
//! four layers (Fig 4.2) — teaching architecture → document → MHEG
//! object → media — and leaves "the mapping of concepts and
//! implementation details from each layer to its next lower layer" as
//! future work (§6.2). This crate implements all four layers *and* the
//! mappings:
//!
//! * [`teaching`] — the six Schank teaching architectures with framework
//!   skeletons the editor offers (§4.2, §4.5.1).
//! * [`hyperdoc`] — the hypermedia document model: logical, layout and
//!   navigation structures (Fig 4.3), including the "Test Your Knowledge"
//!   branching of the paper's example.
//! * [`imd`] — the interactive multimedia document model: logical
//!   structure (sections → subsections → scenes), layout structure,
//!   time-line structure and behavior structure (Fig 4.4), with the ATM
//!   course of the paper as the canonical instance.
//! * [`courseware_lib`] — the courseware class library of Fig 4.6:
//!   Interactive, Output and Hyper objects as templates over the basic
//!   MHEG library (§4.4.2, §4.5.2).
//! * [`compile`] — the document → MHEG compiler: every document becomes a
//!   set of interchangeable MHEG objects that run unmodified on the
//!   `mits-mheg` engine.
//! * [`editor`] — editor facilities: validation (dangling references,
//!   duplicate keys, timeline inconsistencies) and the four authoring
//!   views (§4.5.3).

pub mod compile;
pub mod courseware_lib;
pub mod editor;
pub mod hyperdoc;
pub mod imd;
pub mod teaching;

pub use compile::{compile_hyperdoc, compile_imd, CompiledCourseware};
pub use courseware_lib::{CoursewareObject, InteractiveKind, OutputKind};
pub use editor::{validate_hyperdoc, validate_imd, ValidationIssue};
pub use hyperdoc::{HyperDocument, NavCondition, NavLink, Page, PageElement};
pub use imd::{
    Behavior, BehaviorAction, BehaviorCondition, ElementKind, ImDocument, MediaHandle, Scene,
    SceneElement, Section, Subsection, TimelineEntry,
};
pub use teaching::{framework_document, FrameworkSkeleton, TeachingArchitecture};
