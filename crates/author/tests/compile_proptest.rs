//! Property tests for the courseware compiler: for arbitrary valid
//! documents, the compiled object set is referentially closed, round-trips
//! the interchange codecs, and runs on the engine without errors.

use mits_author::{
    compile_imd, validate_imd, Behavior, BehaviorAction, BehaviorCondition, ElementKind,
    ImDocument, MediaHandle, Scene, Section, Subsection, TimelineEntry,
};
use mits_media::{MediaFormat, MediaId, VideoDims};
use mits_mheg::action::{ActionEntry, ElementaryAction, TargetRef};
use mits_mheg::{decode_object, encode_object, MhegEngine, WireFormat};
use mits_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_element(key_idx: usize) -> impl Strategy<Value = (String, ElementKind)> {
    let key = format!("el{key_idx}");
    prop_oneof![
        (1u64..50, 100u64..5_000).prop_map({
            let key = key.clone();
            move |(media, dur_ms)| {
                (
                    key.clone(),
                    ElementKind::Media(MediaHandle {
                        media: MediaId(media),
                        format: MediaFormat::Mpeg,
                        duration: SimDuration::from_millis(dur_ms),
                        dims: VideoDims::new(160, 120),
                        name: format!("m{media}.mpg"),
                    }),
                )
            }
        }),
        "[ -~]{1,20}".prop_map({
            let key = key.clone();
            move |text| (key.clone(), ElementKind::Caption(text))
        }),
        "[a-zA-Z ]{1,12}".prop_map({
            let key = key.clone();
            move |label| (key.clone(), ElementKind::Button(label))
        }),
    ]
}

fn arb_scene(idx: usize, n_scenes: usize) -> impl Strategy<Value = Scene> {
    (
        prop::collection::vec(arb_element(0), 1..4),
        0usize..n_scenes.max(1),
    )
        .prop_map(move |(elements, jump_target)| {
            let mut scene = Scene::new(&format!("scene{idx}"));
            let mut keys = Vec::new();
            for (i, (_, kind)) in elements.into_iter().enumerate() {
                let key = format!("el{i}");
                scene = scene.element(&key, kind);
                keys.push(key);
            }
            // Timeline: everything at start; captions bounded so scenes end.
            for key in &keys {
                let is_static = matches!(
                    scene.find(key).map(|e| &e.kind),
                    Some(ElementKind::Caption(_)) | Some(ElementKind::Button(_))
                );
                let entry = if is_static {
                    TimelineEntry::at_start(key).for_duration(SimDuration::from_millis(500))
                } else {
                    TimelineEntry::at_start(key)
                };
                scene = scene.entry(entry);
            }
            // Buttons get a jump behavior (exercises links).
            let button_keys: Vec<String> = scene
                .elements
                .iter()
                .filter(|e| matches!(e.kind, ElementKind::Button(_)))
                .map(|e| e.key.clone())
                .collect();
            for key in button_keys {
                scene = scene.behavior(Behavior::when(
                    BehaviorCondition::Clicked(key),
                    vec![BehaviorAction::GotoScene(jump_target)],
                ));
            }
            scene
        })
}

fn arb_document() -> impl Strategy<Value = ImDocument> {
    (1usize..5)
        .prop_flat_map(|n_scenes| {
            let scenes: Vec<_> = (0..n_scenes).map(|i| arb_scene(i, n_scenes)).collect();
            scenes
        })
        .prop_map(|scenes| {
            let mut doc = ImDocument::new("Prop Course");
            doc.sections.push(Section {
                title: "s".into(),
                subsections: vec![Subsection {
                    title: "ss".into(),
                    scenes,
                }],
            });
            doc
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled object sets are referentially closed: every id any object
    /// mentions exists in the set.
    #[test]
    fn compiled_sets_are_closed(doc in arb_document()) {
        prop_assume!(validate_imd(&doc).iter().all(|i| !i.is_error()));
        let compiled = compile_imd(500, &doc);
        let ids: HashSet<_> = compiled.objects.iter().map(|o| o.id).collect();
        for obj in &compiled.objects {
            for referenced in obj.referenced_objects() {
                prop_assert!(ids.contains(&referenced), "{} dangles from {}", referenced, obj.id);
            }
            for target in obj.mentioned_targets() {
                if let TargetRef::Model(m) = target {
                    prop_assert!(ids.contains(&m), "target {} dangles from {}", m, obj.id);
                }
            }
        }
    }

    /// Every compiled object survives both codecs.
    #[test]
    fn compiled_objects_round_trip(doc in arb_document()) {
        prop_assume!(validate_imd(&doc).iter().all(|i| !i.is_error()));
        let compiled = compile_imd(501, &doc);
        for obj in &compiled.objects {
            for fmt in [WireFormat::Tlv, WireFormat::Sgml] {
                let back = decode_object(&encode_object(obj, fmt), fmt).expect("decode");
                prop_assert_eq!(&back, obj);
            }
        }
    }

    /// Compiled courses load into an engine and play (serially) without
    /// engine errors, ending with the position flag on a valid unit.
    #[test]
    fn compiled_courses_run_without_errors(doc in arb_document()) {
        prop_assume!(validate_imd(&doc).iter().all(|i| !i.is_error()));
        let compiled = compile_imd(502, &doc);
        let mut eng = MhegEngine::new();
        for o in &compiled.objects {
            eng.ingest(o.clone());
        }
        eng.new_rt(compiled.entry).expect("entry composite instantiates");
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Model(compiled.entry),
            vec![ElementaryAction::Run],
        ))
        .expect("course starts");
        eng.advance(SimTime::from_secs(120)).expect("plays without engine errors");
        let pos = eng.rt_of_model(compiled.position_flag).expect("flag live");
        match &eng.rt(pos).expect("flag rt").attrs.data {
            mits_mheg::GenericValue::Int(i) => {
                prop_assert!((*i as usize) < compiled.units.len());
            }
            other => prop_assert!(false, "position flag holds {:?}", other),
        }
    }
}
