//! Media formats and kinds.
//!
//! Table 5.1 of the paper lists the Windows 95 multimedia formats the
//! navigator must play (`AVI`, `WAV`, `MID`); the production-center and
//! MHEG chapters add MPEG video, JPEG/GIF images and ASCII/HTML text. A
//! [`MediaFormat`] identifies the coding method carried in an MHEG content
//! object's "coding method" attribute; a [`MediaKind`] is the perceptual
//! category the presentation layer dispatches on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Perceptual category of a medium, deciding which presentation channel
/// (visual, audible, textual) renders it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MediaKind {
    /// Motion video (time-based, visible).
    Video,
    /// Audio (time-based, audible).
    Audio,
    /// Character text (static, visible).
    Text,
    /// Raster image (static, visible).
    Image,
    /// Vector/structured graphics (static, visible).
    Graphics,
}

impl MediaKind {
    /// Time-based media have intrinsic duration (video, audio); static
    /// media are presented until replaced.
    pub fn is_time_based(self) -> bool {
        matches!(self, MediaKind::Video | MediaKind::Audio)
    }

    /// Visible media occupy screen space; audio does not.
    pub fn is_visible(self) -> bool {
        !matches!(self, MediaKind::Audio)
    }
}

/// Concrete coding method for a media object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MediaFormat {
    /// MPEG-1 system stream (video + interleaved audio), the production
    /// center's video format (§3.3).
    Mpeg,
    /// Audio-Video Interleaved, the Windows 95 digital-video format.
    Avi,
    /// Waveform audio (PCM), ≈11 KB per second at the paper's quoted rate.
    Wav,
    /// MIDI music, ≈5 KB per minute per the paper.
    Midi,
    /// Plain ASCII text.
    Ascii,
    /// HTML document — the only type the prototype client fetched (§5.3.2).
    Html,
    /// GIF raster image.
    Gif,
    /// JPEG raster image.
    Jpeg,
    /// Structured vector graphics (simple draw-list).
    DrawList,
}

impl MediaFormat {
    /// All formats, for registries and exhaustive tests.
    pub const ALL: [MediaFormat; 9] = [
        MediaFormat::Mpeg,
        MediaFormat::Avi,
        MediaFormat::Wav,
        MediaFormat::Midi,
        MediaFormat::Ascii,
        MediaFormat::Html,
        MediaFormat::Gif,
        MediaFormat::Jpeg,
        MediaFormat::DrawList,
    ];

    /// The perceptual kind this format encodes.
    pub fn kind(self) -> MediaKind {
        match self {
            MediaFormat::Mpeg | MediaFormat::Avi => MediaKind::Video,
            MediaFormat::Wav | MediaFormat::Midi => MediaKind::Audio,
            MediaFormat::Ascii | MediaFormat::Html => MediaKind::Text,
            MediaFormat::Gif | MediaFormat::Jpeg => MediaKind::Image,
            MediaFormat::DrawList => MediaKind::Graphics,
        }
    }

    /// Conventional filename extension (Table 5.1).
    pub fn extension(self) -> &'static str {
        match self {
            MediaFormat::Mpeg => "mpg",
            MediaFormat::Avi => "avi",
            MediaFormat::Wav => "wav",
            MediaFormat::Midi => "mid",
            MediaFormat::Ascii => "txt",
            MediaFormat::Html => "html",
            MediaFormat::Gif => "gif",
            MediaFormat::Jpeg => "jpg",
            MediaFormat::DrawList => "drw",
        }
    }

    /// Parse from a filename extension (case-insensitive). `mpeg` and
    /// `htm` aliases are accepted.
    pub fn from_extension(ext: &str) -> Option<MediaFormat> {
        Some(match ext.to_ascii_lowercase().as_str() {
            "mpg" | "mpeg" => MediaFormat::Mpeg,
            "avi" => MediaFormat::Avi,
            "wav" => MediaFormat::Wav,
            "mid" | "midi" => MediaFormat::Midi,
            "txt" => MediaFormat::Ascii,
            "html" | "htm" => MediaFormat::Html,
            "gif" => MediaFormat::Gif,
            "jpg" | "jpeg" => MediaFormat::Jpeg,
            "drw" => MediaFormat::DrawList,
            _ => return None,
        })
    }

    /// Stable wire tag used by the MHEG codecs.
    pub fn wire_tag(self) -> u8 {
        match self {
            MediaFormat::Mpeg => 1,
            MediaFormat::Avi => 2,
            MediaFormat::Wav => 3,
            MediaFormat::Midi => 4,
            MediaFormat::Ascii => 5,
            MediaFormat::Html => 6,
            MediaFormat::Gif => 7,
            MediaFormat::Jpeg => 8,
            MediaFormat::DrawList => 9,
        }
    }

    /// Inverse of [`wire_tag`](Self::wire_tag).
    pub fn from_wire_tag(tag: u8) -> Option<MediaFormat> {
        MediaFormat::ALL.into_iter().find(|f| f.wire_tag() == tag)
    }
}

impl fmt::Display for MediaFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MediaFormat::Mpeg => "MPEG",
            MediaFormat::Avi => "AVI",
            MediaFormat::Wav => "WAV",
            MediaFormat::Midi => "MIDI",
            MediaFormat::Ascii => "ASCII",
            MediaFormat::Html => "HTML",
            MediaFormat::Gif => "GIF",
            MediaFormat::Jpeg => "JPEG",
            MediaFormat::DrawList => "DRAWLIST",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_table() {
        assert_eq!(MediaFormat::Avi.kind(), MediaKind::Video);
        assert_eq!(MediaFormat::Wav.kind(), MediaKind::Audio);
        assert_eq!(MediaFormat::Midi.kind(), MediaKind::Audio);
        assert_eq!(MediaFormat::Html.kind(), MediaKind::Text);
        assert_eq!(MediaFormat::Jpeg.kind(), MediaKind::Image);
        assert_eq!(MediaFormat::DrawList.kind(), MediaKind::Graphics);
    }

    #[test]
    fn extension_round_trip() {
        for f in MediaFormat::ALL {
            assert_eq!(MediaFormat::from_extension(f.extension()), Some(f));
        }
        assert_eq!(MediaFormat::from_extension("MPEG"), Some(MediaFormat::Mpeg));
        assert_eq!(MediaFormat::from_extension("htm"), Some(MediaFormat::Html));
        assert_eq!(MediaFormat::from_extension("exe"), None);
    }

    #[test]
    fn wire_tag_round_trip_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for f in MediaFormat::ALL {
            assert!(seen.insert(f.wire_tag()), "duplicate wire tag");
            assert_eq!(MediaFormat::from_wire_tag(f.wire_tag()), Some(f));
        }
        assert_eq!(MediaFormat::from_wire_tag(0), None);
        assert_eq!(MediaFormat::from_wire_tag(200), None);
    }

    #[test]
    fn time_based_and_visible_partition() {
        assert!(MediaKind::Video.is_time_based());
        assert!(MediaKind::Audio.is_time_based());
        assert!(!MediaKind::Text.is_time_based());
        assert!(MediaKind::Video.is_visible());
        assert!(!MediaKind::Audio.is_visible());
        assert!(MediaKind::Graphics.is_visible());
    }
}
