//! Media objects — the mono-media units produced by the production center,
//! referenced by MHEG content objects, and stored in the content database.
//!
//! In MITS the *content data* is deliberately stored "separately from the
//! scenario" (§3.4.2) so that a scenario fetch does not drag megabytes of
//! video across the network. A [`MediaObject`] therefore carries its full
//! payload, while the MHEG layer holds only a [`MediaId`] plus presentation
//! parameters.

use crate::format::{MediaFormat, MediaKind};
use bytes::Bytes;
use mits_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a media object within a MITS installation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct MediaId(pub u64);

impl fmt::Display for MediaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "media:{}", self.0)
    }
}

/// Pixel dimensions of visible media.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct VideoDims {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl VideoDims {
    /// Convenience constructor.
    pub const fn new(width: u32, height: u32) -> Self {
        VideoDims { width, height }
    }

    /// Pixel count.
    pub fn pixels(self) -> u64 {
        self.width as u64 * self.height as u64
    }
}

impl fmt::Display for VideoDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// 64-bit end-to-end checksum — integrity check for content that crossed
/// the simulated network (the AAL5 layer has its own CRC; this is
/// end-to-end). The value is only ever compared against a checksum
/// produced by this same function, so the construction is free to favour
/// speed: four independent multiply-mix lanes each consume one 64-bit
/// word per round (the byte-at-a-time FNV-1a this replaces serialised a
/// multiply behind every single byte), the tail runs plain FNV-1a, and a
/// murmur-style finalizer folds in the length and avalanches the result
/// so single-bit corruption, reordering, and length changes all move the
/// checksum.
pub fn checksum64(data: &[u8]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut lanes: [u64; 4] = [
        0xcbf2_9ce4_8422_2325,
        0x9e37_79b9_7f4a_7c15,
        0xc2b2_ae3d_27d4_eb4f,
        0x1656_67b1_9e37_79f9,
    ];
    let mut chunks = data.chunks_exact(32);
    for block in &mut chunks {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            let w = u64::from_le_bytes(word.try_into().expect("8-byte word"));
            *lane = (*lane ^ w).wrapping_mul(PRIME).rotate_left(29);
        }
    }
    let mut hash = lanes[0];
    for &lane in &lanes[1..] {
        hash = (hash ^ lane).wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        hash = (hash ^ b as u64).wrapping_mul(PRIME);
    }
    hash ^= data.len() as u64;
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^= hash >> 33;
    hash
}

/// A complete mono-media object: identification, coding parameters, and
/// payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaObject {
    /// Installation-unique id.
    pub id: MediaId,
    /// Human-readable name, e.g. `"Paris.mpg"` (the paper's own example).
    pub name: String,
    /// Coding method.
    pub format: MediaFormat,
    /// Intrinsic duration; zero for static media.
    pub duration: SimDuration,
    /// Display dimensions; zeroed for audio.
    pub dims: VideoDims,
    /// The (synthetic) coded payload.
    pub data: Bytes,
    /// End-to-end checksum of `data`.
    pub checksum: u64,
}

impl MediaObject {
    /// Build an object, computing the checksum.
    pub fn new(
        id: MediaId,
        name: impl Into<String>,
        format: MediaFormat,
        duration: SimDuration,
        dims: VideoDims,
        data: Bytes,
    ) -> Self {
        let checksum = checksum64(&data);
        MediaObject {
            id,
            name: name.into(),
            format,
            duration,
            dims,
            data,
            checksum,
        }
    }

    /// Perceptual kind (video/audio/text/image/graphics).
    pub fn kind(&self) -> MediaKind {
        self.format.kind()
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Average coded bit-rate; `None` for static media.
    pub fn bit_rate(&self) -> Option<f64> {
        let secs = self.duration.as_secs_f64();
        (secs > 0.0).then(|| self.data.len() as f64 * 8.0 / secs)
    }

    /// Verify the payload against the stored checksum.
    pub fn verify(&self) -> bool {
        checksum64(&self.data) == self.checksum
    }

    /// Summary line for catalogues and logs.
    pub fn describe(&self) -> String {
        let dur = if self.duration.is_zero() {
            "static".to_string()
        } else {
            format!("{}", self.duration)
        };
        format!(
            "{} [{}] {} {} {} bytes",
            self.name,
            self.format,
            self.dims,
            dur,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MediaObject {
        MediaObject::new(
            MediaId(7),
            "Paris.mpg",
            MediaFormat::Mpeg,
            SimDuration::from_secs(6),
            VideoDims::new(64, 128),
            Bytes::from(vec![1, 2, 3, 4]),
        )
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut m = sample();
        assert!(m.verify());
        let mut corrupted = m.data.to_vec();
        corrupted[2] ^= 0xFF;
        m.data = Bytes::from(corrupted);
        assert!(!m.verify());
    }

    #[test]
    fn checksum64_is_order_sensitive() {
        assert_ne!(checksum64(&[1, 2]), checksum64(&[2, 1]));
        assert_ne!(checksum64(&[]), checksum64(&[0]));
        assert_eq!(checksum64(b"abc"), checksum64(b"abc"));
    }

    #[test]
    fn bit_rate_for_timed_media() {
        let m = sample();
        // 4 bytes over 6 s = 32 bits / 6 s.
        let r = m.bit_rate().unwrap();
        assert!((r - 32.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn bit_rate_none_for_static() {
        let m = MediaObject::new(
            MediaId(1),
            "page.html",
            MediaFormat::Html,
            SimDuration::ZERO,
            VideoDims::default(),
            Bytes::from_static(b"<html></html>"),
        );
        assert_eq!(m.bit_rate(), None);
        assert_eq!(m.kind(), MediaKind::Text);
    }

    #[test]
    fn describe_contains_key_facts() {
        let d = sample().describe();
        assert!(d.contains("Paris.mpg"));
        assert!(d.contains("MPEG"));
        assert!(d.contains("64x128"));
        assert!(d.contains("4 bytes"));
    }

    #[test]
    fn dims_pixels() {
        assert_eq!(VideoDims::new(640, 480).pixels(), 307_200);
    }
}
