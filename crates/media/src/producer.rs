//! The media production center (Fig 3.1, §3.4.1).
//!
//! "A media production center is responsible for capturing information from
//! the real world and coding them into different media objects such as
//! text, image, audio, and video." Our center captures from *synthetic*
//! sources: each [`CaptureSpec`] deterministically produces the payload a
//! studio capture of that length/size would have produced, so courseware
//! built on top is reproducible.

use crate::codec::CodecModel;
use crate::format::MediaFormat;
use crate::object::{MediaId, MediaObject, VideoDims};
use bytes::Bytes;
use mits_sim::SimDuration;

/// What to capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureSpec {
    /// Output object name (`"Paris.mpg"`).
    pub name: String,
    /// Target format.
    pub format: MediaFormat,
    /// Capture length (time-based media).
    pub duration: SimDuration,
    /// Capture dimensions (visible media).
    pub dims: VideoDims,
    /// Character count (text media).
    pub chars: u64,
}

impl CaptureSpec {
    /// A video capture.
    pub fn video(
        name: impl Into<String>,
        format: MediaFormat,
        duration: SimDuration,
        dims: VideoDims,
    ) -> Self {
        CaptureSpec {
            name: name.into(),
            format,
            duration,
            dims,
            chars: 0,
        }
    }

    /// An audio capture.
    pub fn audio(name: impl Into<String>, format: MediaFormat, duration: SimDuration) -> Self {
        CaptureSpec {
            name: name.into(),
            format,
            duration,
            dims: VideoDims::default(),
            chars: 0,
        }
    }

    /// A text document of `chars` characters.
    pub fn text(name: impl Into<String>, format: MediaFormat, chars: u64) -> Self {
        CaptureSpec {
            name: name.into(),
            format,
            duration: SimDuration::ZERO,
            dims: VideoDims::default(),
            chars,
        }
    }

    /// A still image.
    pub fn image(name: impl Into<String>, format: MediaFormat, dims: VideoDims) -> Self {
        CaptureSpec {
            name: name.into(),
            format,
            duration: SimDuration::ZERO,
            dims,
            chars: 0,
        }
    }
}

/// The production center: allocates media ids and performs captures.
#[derive(Debug, Default)]
pub struct ProductionCenter {
    next_id: u64,
    seed: u64,
    produced: Vec<MediaObject>,
}

impl ProductionCenter {
    /// A center whose captures are derived from `seed`.
    pub fn new(seed: u64) -> Self {
        ProductionCenter {
            next_id: 1,
            seed,
            produced: Vec::new(),
        }
    }

    /// Capture one media object according to `spec`.
    pub fn capture(&mut self, spec: &CaptureSpec) -> MediaObject {
        let id = MediaId(self.next_id);
        self.next_id += 1;
        let model = CodecModel::for_format(spec.format);
        let data = if spec.chars > 0 {
            // Text payload: deterministic readable filler so library
            // browsing and keyword extraction have something to chew on.
            let size = model.static_size(spec.chars) as usize;
            synth_text(&spec.name, size)
        } else {
            model.generate_payload(spec.duration, spec.dims, self.seed ^ id.0)
        };
        let obj = MediaObject::new(
            id,
            spec.name.clone(),
            spec.format,
            spec.duration,
            spec.dims,
            Bytes::from(data),
        );
        self.produced.push(obj.clone());
        obj
    }

    /// Capture a batch of specs in order.
    pub fn capture_all(&mut self, specs: &[CaptureSpec]) -> Vec<MediaObject> {
        specs.iter().map(|s| self.capture(s)).collect()
    }

    /// Everything produced so far (the production-center catalogue).
    pub fn catalogue(&self) -> &[MediaObject] {
        &self.produced
    }

    /// Total bytes produced.
    pub fn total_bytes(&self) -> u64 {
        self.produced.iter().map(|m| m.data.len() as u64).sum()
    }
}

/// Deterministic readable filler text of exactly `size` bytes, themed on
/// the object name so text payloads differ between documents.
fn synth_text(name: &str, size: usize) -> Vec<u8> {
    const LOREM: &str = "the broadband multimedia telelearning system delivers course on demand \
over an atm network using mheg coded objects for realtime reusable interchange ";
    let mut out = Vec::with_capacity(size);
    let header = format!("[{name}] ");
    out.extend_from_slice(header.as_bytes());
    let body = LOREM.as_bytes();
    while out.len() < size {
        let take = (size - out.len()).min(body.len());
        out.extend_from_slice(&body[..take]);
    }
    out.truncate(size);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::WAV_BYTES_PER_SEC;

    #[test]
    fn capture_allocates_sequential_ids() {
        let mut pc = ProductionCenter::new(1);
        let a = pc.capture(&CaptureSpec::audio(
            "a.wav",
            MediaFormat::Wav,
            SimDuration::from_secs(1),
        ));
        let b = pc.capture(&CaptureSpec::audio(
            "b.wav",
            MediaFormat::Wav,
            SimDuration::from_secs(1),
        ));
        assert_eq!(a.id, MediaId(1));
        assert_eq!(b.id, MediaId(2));
        assert_eq!(pc.catalogue().len(), 2);
    }

    #[test]
    fn audio_capture_has_calibrated_size() {
        let mut pc = ProductionCenter::new(1);
        let a = pc.capture(&CaptureSpec::audio(
            "a.wav",
            MediaFormat::Wav,
            SimDuration::from_secs(3),
        ));
        assert_eq!(a.size_bytes() as u64, 3 * WAV_BYTES_PER_SEC);
        assert!(a.verify());
    }

    #[test]
    fn text_capture_exact_size_and_name_stamp() {
        let mut pc = ProductionCenter::new(1);
        let t = pc.capture(&CaptureSpec::text("intro.html", MediaFormat::Html, 1000));
        assert_eq!(t.size_bytes(), 1300, "30% HTML markup overhead");
        assert!(t.data.starts_with(b"[intro.html] "));
    }

    #[test]
    fn captures_are_reproducible_across_centers() {
        let mut pc1 = ProductionCenter::new(99);
        let mut pc2 = ProductionCenter::new(99);
        let spec = CaptureSpec::video(
            "Paris.mpg",
            MediaFormat::Mpeg,
            SimDuration::from_millis(500),
            VideoDims::new(64, 128),
        );
        assert_eq!(pc1.capture(&spec).data, pc2.capture(&spec).data);
    }

    #[test]
    fn different_seed_different_payload() {
        let mut pc1 = ProductionCenter::new(1);
        let mut pc2 = ProductionCenter::new(2);
        let spec = CaptureSpec::audio("a.wav", MediaFormat::Wav, SimDuration::from_secs(1));
        assert_ne!(pc1.capture(&spec).data, pc2.capture(&spec).data);
    }

    #[test]
    fn capture_all_and_totals() {
        let mut pc = ProductionCenter::new(5);
        let objs = pc.capture_all(&[
            CaptureSpec::image("fig1.gif", MediaFormat::Gif, VideoDims::new(100, 80)),
            CaptureSpec::text("notes.txt", MediaFormat::Ascii, 400),
        ]);
        assert_eq!(objs.len(), 2);
        assert_eq!(
            pc.total_bytes(),
            objs.iter().map(|o| o.size_bytes() as u64).sum::<u64>()
        );
    }
}
