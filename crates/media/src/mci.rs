//! Media Control Interface (§5.2.2).
//!
//! Windows 95 gave the prototype a "device-independent command-message and
//! command-string interface for the playback and recording of audio and
//! visual data". We reproduce both faces: typed [`MciCommand`] messages and
//! the parsed command-string form (`"play paris.mpg from 2000 to 5000"`),
//! driving a per-object [`MciPlayer`] state machine against the virtual
//! clock. The navigator uses one player per active run-time content object.

use crate::object::MediaObject;
use mits_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed MCI command message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MciCommand {
    /// Load/prepare the device.
    Open,
    /// Start or resume playback, optionally bounded to `[from, to]`
    /// (milliseconds into the medium).
    Play {
        /// Start position (ms); `None` = current position.
        from: Option<u64>,
        /// End position (ms); `None` = end of medium.
        to: Option<u64>,
    },
    /// Pause, retaining position.
    Pause,
    /// Stop and rewind to the start.
    Stop,
    /// Jump to a position (ms) without changing play/pause state.
    Seek {
        /// Target position in milliseconds.
        to_ms: u64,
    },
    /// Query status (position, state, length).
    Status,
    /// Release the device.
    Close,
}

/// Player lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlayerState {
    /// Not yet opened / closed.
    Closed,
    /// Opened, positioned, not playing.
    Stopped,
    /// Actively playing.
    Playing,
    /// Paused mid-stream.
    Paused,
}

/// Status snapshot returned by [`MciCommand::Status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MciStatus {
    /// Current state.
    pub state: PlayerState,
    /// Position within the medium (ms).
    pub position_ms: u64,
    /// Total medium length (ms); 0 for static media.
    pub length_ms: u64,
}

/// Errors from MCI command processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MciError {
    /// Command issued on a closed device (other than `Open`).
    NotOpen,
    /// Seek/play bounds outside the medium.
    OutOfRange {
        /// Requested position (ms).
        requested: u64,
        /// Medium length (ms).
        length: u64,
    },
    /// Command string did not parse.
    Parse(String),
}

impl fmt::Display for MciError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MciError::NotOpen => write!(f, "device not open"),
            MciError::OutOfRange { requested, length } => {
                write!(f, "position {requested}ms beyond medium length {length}ms")
            }
            MciError::Parse(s) => write!(f, "cannot parse MCI command: {s}"),
        }
    }
}

impl std::error::Error for MciError {}

/// An MCI player bound to one media object, tracking position against the
/// simulation clock.
#[derive(Debug, Clone)]
pub struct MciPlayer {
    /// Name of the bound medium (for command-string addressing).
    pub device: String,
    length_ms: u64,
    state: PlayerState,
    /// Position when last stopped/paused/started (ms).
    anchor_ms: u64,
    /// Clock time playback (re)started; valid while Playing.
    started_at: SimTime,
    /// Optional stop bound for the current play command (ms).
    play_until: Option<u64>,
}

impl MciPlayer {
    /// A player for `object`.
    pub fn new(object: &MediaObject) -> Self {
        MciPlayer {
            device: object.name.clone(),
            length_ms: object.duration.as_millis(),
            state: PlayerState::Closed,
            anchor_ms: 0,
            started_at: SimTime::ZERO,
            play_until: None,
        }
    }

    /// Current state.
    pub fn state(&self) -> PlayerState {
        self.state
    }

    /// Current position in ms at clock time `now`, clamped to the play
    /// bound / medium length.
    pub fn position_ms(&self, now: SimTime) -> u64 {
        match self.state {
            PlayerState::Playing => {
                let elapsed = now.since(self.started_at).as_millis();
                let pos = self.anchor_ms + elapsed;
                let bound = self.play_until.unwrap_or(self.length_ms);
                pos.min(bound)
            }
            _ => self.anchor_ms,
        }
    }

    /// True when a playing medium has reached its end (or play bound).
    pub fn finished(&self, now: SimTime) -> bool {
        self.state == PlayerState::Playing
            && self.position_ms(now) >= self.play_until.unwrap_or(self.length_ms)
            && self.length_ms > 0
    }

    /// Process a typed command at clock time `now`.
    pub fn command(&mut self, now: SimTime, cmd: MciCommand) -> Result<MciStatus, MciError> {
        if self.state == PlayerState::Closed && !matches!(cmd, MciCommand::Open) {
            return Err(MciError::NotOpen);
        }
        match cmd {
            MciCommand::Open => {
                self.state = PlayerState::Stopped;
                self.anchor_ms = 0;
            }
            MciCommand::Play { from, to } => {
                if let Some(f) = from {
                    if f > self.length_ms && self.length_ms > 0 {
                        return Err(MciError::OutOfRange {
                            requested: f,
                            length: self.length_ms,
                        });
                    }
                    self.anchor_ms = f;
                } else if self.state == PlayerState::Playing {
                    self.anchor_ms = self.position_ms(now);
                }
                if let Some(t) = to {
                    if t > self.length_ms && self.length_ms > 0 {
                        return Err(MciError::OutOfRange {
                            requested: t,
                            length: self.length_ms,
                        });
                    }
                }
                self.play_until = to;
                self.started_at = now;
                self.state = PlayerState::Playing;
            }
            MciCommand::Pause => {
                if self.state == PlayerState::Playing {
                    self.anchor_ms = self.position_ms(now);
                    self.state = PlayerState::Paused;
                }
            }
            MciCommand::Stop => {
                self.anchor_ms = 0;
                self.play_until = None;
                self.state = PlayerState::Stopped;
            }
            MciCommand::Seek { to_ms } => {
                if to_ms > self.length_ms && self.length_ms > 0 {
                    return Err(MciError::OutOfRange {
                        requested: to_ms,
                        length: self.length_ms,
                    });
                }
                let was_playing = self.state == PlayerState::Playing;
                self.anchor_ms = to_ms;
                if was_playing {
                    self.started_at = now;
                }
            }
            MciCommand::Status => {}
            MciCommand::Close => {
                self.state = PlayerState::Closed;
                self.anchor_ms = 0;
                self.play_until = None;
            }
        }
        Ok(MciStatus {
            state: self.state,
            position_ms: self.position_ms(now),
            length_ms: self.length_ms,
        })
    }

    /// Process a command string like `"play from 2000 to 5000"` or
    /// `"seek 1500"`, the MCI command-string face.
    pub fn command_str(&mut self, now: SimTime, line: &str) -> Result<MciStatus, MciError> {
        let cmd = parse_command(line)?;
        self.command(now, cmd)
    }
}

/// Parse the MCI command-string grammar.
///
/// Accepted: `open` · `play [from N] [to N]` · `pause` · `stop` ·
/// `seek N` · `status` · `close`.
pub fn parse_command(line: &str) -> Result<MciCommand, MciError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let err = || MciError::Parse(line.to_string());
    match toks.as_slice() {
        ["open"] => Ok(MciCommand::Open),
        ["pause"] => Ok(MciCommand::Pause),
        ["stop"] => Ok(MciCommand::Stop),
        ["status"] => Ok(MciCommand::Status),
        ["close"] => Ok(MciCommand::Close),
        ["seek", n] => n
            .parse()
            .map(|to_ms| MciCommand::Seek { to_ms })
            .map_err(|_| err()),
        ["play", rest @ ..] => {
            let mut from = None;
            let mut to = None;
            let mut it = rest.iter();
            while let Some(&kw) = it.next() {
                let val: u64 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
                match kw {
                    "from" => from = Some(val),
                    "to" => to = Some(val),
                    _ => return Err(err()),
                }
            }
            Ok(MciCommand::Play { from, to })
        }
        _ => Err(err()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::MediaFormat;
    use crate::object::{MediaId, VideoDims};
    use bytes::Bytes;
    use mits_sim::SimDuration;

    fn ten_sec_clip() -> MediaObject {
        MediaObject::new(
            MediaId(1),
            "clip.mpg",
            MediaFormat::Mpeg,
            SimDuration::from_secs(10),
            VideoDims::new(320, 240),
            Bytes::from_static(b"xxxx"),
        )
    }

    #[test]
    fn closed_device_rejects_commands() {
        let mut p = MciPlayer::new(&ten_sec_clip());
        assert_eq!(
            p.command(
                SimTime::ZERO,
                MciCommand::Play {
                    from: None,
                    to: None
                }
            ),
            Err(MciError::NotOpen)
        );
        assert!(p.command(SimTime::ZERO, MciCommand::Open).is_ok());
    }

    #[test]
    fn position_advances_with_clock_while_playing() {
        let mut p = MciPlayer::new(&ten_sec_clip());
        p.command(SimTime::ZERO, MciCommand::Open).unwrap();
        p.command(
            SimTime::ZERO,
            MciCommand::Play {
                from: None,
                to: None,
            },
        )
        .unwrap();
        assert_eq!(p.position_ms(SimTime::from_millis(2_500)), 2_500);
        assert_eq!(p.position_ms(SimTime::from_millis(10_000)), 10_000);
        assert_eq!(
            p.position_ms(SimTime::from_millis(99_000)),
            10_000,
            "clamped at end"
        );
        assert!(p.finished(SimTime::from_millis(10_000)));
    }

    #[test]
    fn pause_freezes_position_resume_continues() {
        let mut p = MciPlayer::new(&ten_sec_clip());
        p.command(SimTime::ZERO, MciCommand::Open).unwrap();
        p.command(
            SimTime::ZERO,
            MciCommand::Play {
                from: None,
                to: None,
            },
        )
        .unwrap();
        p.command(SimTime::from_millis(3_000), MciCommand::Pause)
            .unwrap();
        assert_eq!(p.position_ms(SimTime::from_millis(8_000)), 3_000, "frozen");
        p.command(
            SimTime::from_millis(8_000),
            MciCommand::Play {
                from: None,
                to: None,
            },
        )
        .unwrap();
        assert_eq!(p.position_ms(SimTime::from_millis(9_000)), 4_000, "resumed");
    }

    #[test]
    fn stop_rewinds() {
        let mut p = MciPlayer::new(&ten_sec_clip());
        p.command(SimTime::ZERO, MciCommand::Open).unwrap();
        p.command(
            SimTime::ZERO,
            MciCommand::Play {
                from: Some(5_000),
                to: None,
            },
        )
        .unwrap();
        p.command(SimTime::from_millis(1_000), MciCommand::Stop)
            .unwrap();
        let st = p
            .command(SimTime::from_millis(1_000), MciCommand::Status)
            .unwrap();
        assert_eq!(st.position_ms, 0);
        assert_eq!(st.state, PlayerState::Stopped);
    }

    #[test]
    fn play_bounds_respected() {
        let mut p = MciPlayer::new(&ten_sec_clip());
        p.command(SimTime::ZERO, MciCommand::Open).unwrap();
        p.command(
            SimTime::ZERO,
            MciCommand::Play {
                from: Some(2_000),
                to: Some(4_000),
            },
        )
        .unwrap();
        assert_eq!(p.position_ms(SimTime::from_millis(1_000)), 3_000);
        assert_eq!(p.position_ms(SimTime::from_millis(5_000)), 4_000, "bounded");
        assert!(p.finished(SimTime::from_millis(5_000)));
    }

    #[test]
    fn seek_out_of_range_rejected() {
        let mut p = MciPlayer::new(&ten_sec_clip());
        p.command(SimTime::ZERO, MciCommand::Open).unwrap();
        assert_eq!(
            p.command(SimTime::ZERO, MciCommand::Seek { to_ms: 20_000 }),
            Err(MciError::OutOfRange {
                requested: 20_000,
                length: 10_000
            })
        );
    }

    #[test]
    fn command_string_grammar() {
        assert_eq!(parse_command("open"), Ok(MciCommand::Open));
        assert_eq!(
            parse_command("play from 2000 to 5000"),
            Ok(MciCommand::Play {
                from: Some(2_000),
                to: Some(5_000)
            })
        );
        assert_eq!(
            parse_command("play"),
            Ok(MciCommand::Play {
                from: None,
                to: None
            })
        );
        assert_eq!(
            parse_command("seek 1500"),
            Ok(MciCommand::Seek { to_ms: 1_500 })
        );
        assert!(parse_command("rewind fully").is_err());
        assert!(parse_command("play from").is_err());
        assert!(parse_command("play sideways 3").is_err());
    }

    #[test]
    fn command_string_drives_player() {
        let mut p = MciPlayer::new(&ten_sec_clip());
        p.command_str(SimTime::ZERO, "open").unwrap();
        p.command_str(SimTime::ZERO, "play from 1000").unwrap();
        let st = p.command_str(SimTime::from_millis(500), "status").unwrap();
        assert_eq!(st.position_ms, 1_500);
        assert_eq!(st.state, PlayerState::Playing);
    }

    #[test]
    fn static_media_never_finishes() {
        let obj = MediaObject::new(
            MediaId(2),
            "page.html",
            MediaFormat::Html,
            SimDuration::ZERO,
            VideoDims::default(),
            Bytes::from_static(b"<p>hi</p>"),
        );
        let mut p = MciPlayer::new(&obj);
        p.command(SimTime::ZERO, MciCommand::Open).unwrap();
        p.command(
            SimTime::ZERO,
            MciCommand::Play {
                from: None,
                to: None,
            },
        )
        .unwrap();
        assert!(
            !p.finished(SimTime::from_secs(100)),
            "static media has no end"
        );
    }
}
