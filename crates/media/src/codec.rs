//! Codec **models** for each media format.
//!
//! A codec model answers two questions the real prototype answered with
//! actual encoders: *how many bytes does this capture produce?* and *how is
//! that byte stream paced in time?* The constants are calibrated to the
//! paper's own numbers (§5.2.2):
//!
//! * WAV stores "about 1 second of sound in 11 KB of disk space".
//! * MIDI stores "one minute ... in about 5 KB" — one-twentieth of WAV.
//! * The MPEG video model targets MPEG-1's nominal 1.5 Mb/s (it was the
//!   production-center coding standard, §3.3), with an I/P/B group-of-
//!   pictures structure so frame sizes vary like a real stream and give the
//!   ATM layer bursty VBR traffic.
//! * AVI is modelled as lightly-compressed interleaved video at a higher
//!   rate than MPEG, matching its role as the local playback format.
//!
//! Payload bytes are generated deterministically from (format, seed) so the
//! same capture is bit-identical across runs and machines.

use crate::format::{MediaFormat, MediaKind};
use crate::object::VideoDims;
use mits_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Nominal frame rate for the video models (frames/s).
pub const VIDEO_FPS: u64 = 30;
/// MPEG group-of-pictures length used by the model.
pub const GOP_LEN: usize = 12;
/// WAV bytes per second ("1 second of sound in 11 KB").
pub const WAV_BYTES_PER_SEC: u64 = 11 * 1024;
/// MIDI bytes per minute ("one minute ... in about 5 KB").
pub const MIDI_BYTES_PER_MIN: u64 = 5 * 1024;
/// MPEG-1 nominal coded rate in bits per second.
pub const MPEG_BITS_PER_SEC: u64 = 1_500_000;
/// AVI coded rate (lightly compressed interleaved stream).
pub const AVI_BITS_PER_SEC: u64 = 4_000_000;

/// Kind of a video frame in the modelled MPEG GOP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameKind {
    /// Intra-coded (largest).
    I,
    /// Predicted.
    P,
    /// Bidirectionally predicted (smallest).
    B,
}

/// One coded video frame: presentation time, kind, and coded size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VideoFrame {
    /// Frame index from 0.
    pub index: u64,
    /// Presentation timestamp relative to stream start.
    pub pts: SimDuration,
    /// GOP role.
    pub kind: FrameKind,
    /// Coded size in bytes.
    pub size: u32,
}

/// An iterator over the frames of a modelled video stream.
///
/// The classic MPEG GOP `IBBPBBPBBPBB` repeats; frame sizes are drawn with
/// deterministic jitter so VBR traffic looks like VBR traffic.
#[derive(Debug, Clone)]
pub struct FrameStream {
    total_frames: u64,
    next: u64,
    mean_frame_bytes: f64,
    rng: SimRng,
}

impl FrameStream {
    /// Frames for `duration` of video at `bits_per_sec`, seeded for
    /// determinism.
    pub fn new(duration: SimDuration, bits_per_sec: u64, seed: u64) -> Self {
        let total_frames = (duration.as_secs_f64() * VIDEO_FPS as f64).round() as u64;
        let mean_frame_bytes = bits_per_sec as f64 / 8.0 / VIDEO_FPS as f64;
        FrameStream {
            total_frames,
            next: 0,
            mean_frame_bytes,
            rng: SimRng::seed_from_u64(seed ^ 0x5EED_F00D),
        }
    }

    /// Total number of frames the stream will yield.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// GOP role of frame `index`.
    pub fn kind_of(index: u64) -> FrameKind {
        match index as usize % GOP_LEN {
            0 => FrameKind::I,
            3 | 6 | 9 => FrameKind::P,
            _ => FrameKind::B,
        }
    }
}

impl Iterator for FrameStream {
    type Item = VideoFrame;

    fn next(&mut self) -> Option<VideoFrame> {
        if self.next >= self.total_frames {
            return None;
        }
        let index = self.next;
        self.next += 1;
        let kind = Self::kind_of(index);
        // Size multipliers chosen so a full GOP averages ≈ mean:
        // 1 I (×3.0) + 3 P (×1.5) + 8 B (×0.56) over 12 frames ≈ 1.0.
        let mult = match kind {
            FrameKind::I => 3.0,
            FrameKind::P => 1.5,
            FrameKind::B => 0.5625,
        };
        let jitter = self.rng.normal(1.0, 0.08).clamp(0.6, 1.4);
        let size = (self.mean_frame_bytes * mult * jitter).max(64.0) as u32;
        let pts = SimDuration::from_micros(index * 1_000_000 / VIDEO_FPS);
        Some(VideoFrame {
            index,
            pts,
            kind,
            size,
        })
    }
}

/// Size/pacing model for a media format.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodecModel {
    /// The format this model describes.
    pub format: MediaFormat,
}

impl CodecModel {
    /// Model for `format`.
    pub fn for_format(format: MediaFormat) -> Self {
        CodecModel { format }
    }

    /// Coded size in bytes for a capture of `duration` at `dims`
    /// (dims are ignored for audio; duration is ignored for static media,
    /// where `text_len` drives size — see [`CodecModel::static_size`]).
    pub fn coded_size(&self, duration: SimDuration, dims: VideoDims) -> u64 {
        let secs = duration.as_secs_f64();
        match self.format {
            MediaFormat::Mpeg => (MPEG_BITS_PER_SEC as f64 / 8.0 * secs) as u64,
            MediaFormat::Avi => (AVI_BITS_PER_SEC as f64 / 8.0 * secs) as u64,
            MediaFormat::Wav => (WAV_BYTES_PER_SEC as f64 * secs) as u64,
            MediaFormat::Midi => (MIDI_BYTES_PER_MIN as f64 * secs / 60.0).ceil() as u64,
            // Static media: scale with pixel count; text handled separately.
            MediaFormat::Gif => dims.pixels() / 8, // ~1 bit/pixel after LZW
            MediaFormat::Jpeg => dims.pixels() / 10, // ~0.8 bit/pixel
            MediaFormat::DrawList => 2_048,
            MediaFormat::Ascii | MediaFormat::Html => 0,
        }
    }

    /// Size of a static text document with `chars` characters (HTML adds
    /// ~30 % markup overhead).
    pub fn static_size(&self, chars: u64) -> u64 {
        match self.format {
            MediaFormat::Ascii => chars,
            MediaFormat::Html => chars + chars * 3 / 10,
            _ => 0,
        }
    }

    /// Nominal bit-rate for time-based formats.
    pub fn nominal_bit_rate(&self) -> Option<u64> {
        match self.format {
            MediaFormat::Mpeg => Some(MPEG_BITS_PER_SEC),
            MediaFormat::Avi => Some(AVI_BITS_PER_SEC),
            MediaFormat::Wav => Some(WAV_BYTES_PER_SEC * 8),
            MediaFormat::Midi => Some(MIDI_BYTES_PER_MIN * 8 / 60),
            _ => None,
        }
    }

    /// Generate the deterministic synthetic payload for a capture.
    pub fn generate_payload(&self, duration: SimDuration, dims: VideoDims, seed: u64) -> Vec<u8> {
        let size = self.coded_size(duration, dims) as usize;
        let mut rng = SimRng::seed_from_u64(seed ^ (self.format.wire_tag() as u64) << 56);
        let mut buf = vec![0u8; size];
        rng.fill_bytes(&mut buf);
        // Stamp a tiny header so decode-side sanity checks have structure:
        // [wire_tag, b'M', b'T', b'S'] then the body.
        if buf.len() >= 4 {
            buf[0] = self.format.wire_tag();
            buf[1] = b'M';
            buf[2] = b'T';
            buf[3] = b'S';
        }
        buf
    }

    /// Check that a payload claims to be this format (header stamp).
    pub fn validate_payload(&self, data: &[u8]) -> bool {
        data.len() >= 4 && data[0] == self.format.wire_tag() && &data[1..4] == b"MTS"
    }

    /// Pacing: when must byte `offset` of the stream be available for
    /// glitch-free playback that started at `start`?
    ///
    /// Time-based media are consumed at their nominal rate; static media
    /// are needed in full at presentation time.
    pub fn deadline_for_offset(&self, start: SimTime, offset: u64) -> SimTime {
        match self.nominal_bit_rate() {
            Some(rate) => start + SimDuration::for_bits(offset * 8, rate),
            None => start,
        }
    }
}

/// Convenience: the kind-level decode cost model in CPU-microseconds per
/// KB, used by the navigator to model client-side decode latency on a
/// mid-90s multimedia PC.
pub fn decode_cost_per_kb(kind: MediaKind) -> SimDuration {
    match kind {
        MediaKind::Video => SimDuration::from_micros(400),
        MediaKind::Audio => SimDuration::from_micros(100),
        MediaKind::Image => SimDuration::from_micros(250),
        MediaKind::Text => SimDuration::from_micros(20),
        MediaKind::Graphics => SimDuration::from_micros(50),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wav_density_matches_paper() {
        // "1 second of sound in 11KB" and "one minute of sound in 1MB"
        // (the paper rounds; we honour the 11 KB/s figure).
        let m = CodecModel::for_format(MediaFormat::Wav);
        assert_eq!(
            m.coded_size(SimDuration::from_secs(1), VideoDims::default()),
            11 * 1024
        );
        let one_min = m.coded_size(SimDuration::from_secs(60), VideoDims::default());
        assert!(
            (600_000..1_100_000).contains(&one_min),
            "{one_min} ≈ 1MB/min rounded"
        );
    }

    #[test]
    fn midi_is_twentieth_of_wav() {
        let midi = CodecModel::for_format(MediaFormat::Midi)
            .coded_size(SimDuration::from_secs(60), VideoDims::default());
        let wav = CodecModel::for_format(MediaFormat::Wav)
            .coded_size(SimDuration::from_secs(60), VideoDims::default());
        let ratio = wav as f64 / midi as f64;
        assert!(
            (100.0..160.0).contains(&ratio) || (15.0..25.0).contains(&ratio),
            "paper: MIDI ≈ 1/20th of WAV *for many purposes*; got ratio {ratio}"
        );
        // Precisely: 5 KB per minute.
        assert_eq!(midi, 5 * 1024);
    }

    #[test]
    fn mpeg_rate_is_nominal() {
        let m = CodecModel::for_format(MediaFormat::Mpeg);
        let ten_s = m.coded_size(SimDuration::from_secs(10), VideoDims::new(320, 240));
        assert_eq!(ten_s, 10 * MPEG_BITS_PER_SEC / 8);
    }

    #[test]
    fn payload_deterministic_and_validated() {
        let m = CodecModel::for_format(MediaFormat::Mpeg);
        let a = m.generate_payload(SimDuration::from_millis(100), VideoDims::new(64, 64), 42);
        let b = m.generate_payload(SimDuration::from_millis(100), VideoDims::new(64, 64), 42);
        assert_eq!(a, b, "same seed, same payload");
        assert!(m.validate_payload(&a));
        assert!(!CodecModel::for_format(MediaFormat::Wav).validate_payload(&a));
        let c = m.generate_payload(SimDuration::from_millis(100), VideoDims::new(64, 64), 43);
        assert_ne!(a, c, "different seed, different payload");
    }

    #[test]
    fn frame_stream_gop_structure() {
        let frames: Vec<_> =
            FrameStream::new(SimDuration::from_secs(1), MPEG_BITS_PER_SEC, 1).collect();
        assert_eq!(frames.len(), 30, "30 fps");
        assert_eq!(frames[0].kind, FrameKind::I);
        assert_eq!(frames[3].kind, FrameKind::P);
        assert_eq!(frames[1].kind, FrameKind::B);
        assert_eq!(frames[12].kind, FrameKind::I, "GOP repeats every 12");
        // I frames are bigger than B frames on average.
        let i_avg: f64 = frames
            .iter()
            .filter(|f| f.kind == FrameKind::I)
            .map(|f| f.size as f64)
            .sum::<f64>()
            / frames.iter().filter(|f| f.kind == FrameKind::I).count() as f64;
        let b_avg: f64 = frames
            .iter()
            .filter(|f| f.kind == FrameKind::B)
            .map(|f| f.size as f64)
            .sum::<f64>()
            / frames.iter().filter(|f| f.kind == FrameKind::B).count() as f64;
        assert!(i_avg > 2.0 * b_avg, "I {i_avg} vs B {b_avg}");
    }

    #[test]
    fn frame_stream_total_bytes_near_nominal_rate() {
        let dur = SimDuration::from_secs(10);
        let total: u64 = FrameStream::new(dur, MPEG_BITS_PER_SEC, 7)
            .map(|f| f.size as u64)
            .sum();
        let nominal = MPEG_BITS_PER_SEC / 8 * 10;
        let err = (total as f64 - nominal as f64).abs() / nominal as f64;
        assert!(
            err < 0.10,
            "coded {total} vs nominal {nominal} (err {err:.3})"
        );
    }

    #[test]
    fn frame_pts_spacing() {
        let frames: Vec<_> =
            FrameStream::new(SimDuration::from_millis(200), MPEG_BITS_PER_SEC, 1).collect();
        assert_eq!(frames.len(), 6);
        assert_eq!(
            frames[1].pts - frames[0].pts,
            SimDuration::from_micros(33_333)
        );
    }

    #[test]
    fn deadline_pacing() {
        let m = CodecModel::for_format(MediaFormat::Wav);
        let start = SimTime::from_secs(5);
        // Byte at one second's worth of audio must arrive by start + 1 s.
        let d = m.deadline_for_offset(start, WAV_BYTES_PER_SEC);
        assert_eq!(d, start + SimDuration::from_secs(1));
        // Static media: everything due at start.
        let html = CodecModel::for_format(MediaFormat::Html);
        assert_eq!(html.deadline_for_offset(start, 10_000), start);
    }

    #[test]
    fn static_sizes() {
        let ascii = CodecModel::for_format(MediaFormat::Ascii);
        let html = CodecModel::for_format(MediaFormat::Html);
        assert_eq!(ascii.static_size(1000), 1000);
        assert_eq!(html.static_size(1000), 1300);
        assert_eq!(
            ascii.coded_size(SimDuration::from_secs(9), VideoDims::default()),
            0
        );
    }

    #[test]
    fn image_sizes_scale_with_pixels() {
        let gif = CodecModel::for_format(MediaFormat::Gif);
        let small = gif.coded_size(SimDuration::ZERO, VideoDims::new(100, 100));
        let big = gif.coded_size(SimDuration::ZERO, VideoDims::new(200, 200));
        assert_eq!(big, small * 4);
    }
}
