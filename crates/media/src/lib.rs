//! # mits-media — the media substrate of MITS
//!
//! Chapter 5 of the paper runs the courseware navigator on Windows 95 and
//! leans on three things the platform provides (Table 5.1, §5.2.2):
//!
//! 1. **Media file formats** — digital video (`.AVI`), waveform audio
//!    (`.WAV`), MIDI (`.MID`) — plus the formats the production center emits
//!    (MPEG video, JPEG/GIF images, ASCII/HTML text).
//! 2. **A Media Control Interface (MCI)** — a device-independent
//!    command-message *and command-string* interface (`play`, `stop`,
//!    `pause`, `seek`, …).
//! 3. **A media production center** that captures real-world footage into
//!    media objects.
//!
//! We have no camera, no studio and no Windows 95, so this crate substitutes
//! *synthetic* media: codec **models** that produce deterministic
//! pseudo-payloads whose sizes, bit-rates and frame timing are calibrated to
//! the figures the paper itself quotes — WAV ≈ 11 KB per second, MIDI
//! ≈ 5 KB per minute ("one-twentieth of WAV"), MPEG-1 video around
//! 1.5 Mb/s. Everything downstream (MHEG content objects, the courseware
//! database, ATM delivery, navigator playback) handles the same byte counts
//! and timing a real installation would.

pub mod codec;
pub mod format;
pub mod mci;
pub mod object;
pub mod producer;

pub use codec::{CodecModel, FrameKind, FrameStream, VideoFrame};
pub use format::{MediaFormat, MediaKind};
pub use mci::{MciCommand, MciError, MciPlayer, MciStatus, PlayerState};
pub use object::{checksum64, MediaId, MediaObject, VideoDims};
pub use producer::{CaptureSpec, ProductionCenter};
