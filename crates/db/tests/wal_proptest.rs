//! Property tests for the write-ahead log codec: every record
//! round-trips its wire form exactly, a whole journal replays in
//! order, and any single flipped bit is caught by the CRC — replay
//! yields a strict prefix of the good records and never panics.

use bytes::Bytes;
use mits_db::{crc32, read_frames, SharedLogDevice, Wal, WalRecord};
use mits_media::{MediaFormat, MediaId, MediaObject, VideoDims};
use mits_mheg::{ClassLibrary, GenericValue, MhegId, MhegObject};
use mits_sim::SimDuration;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = GenericValue> {
    prop_oneof![
        any::<i64>().prop_map(GenericValue::Int),
        any::<bool>().prop_map(GenericValue::Bool),
        "[ -~]{0,24}".prop_map(GenericValue::Str),
        any::<i64>().prop_map(GenericValue::Milli),
    ]
}

fn arb_object() -> impl Strategy<Value = MhegObject> {
    (0u32..64, "[a-z]{1,12}", arb_value()).prop_map(|(app, name, value)| {
        let mut lib = ClassLibrary::new(app);
        let id = lib.value_content(&name, value);
        lib.get(id).unwrap().clone()
    })
}

fn arb_media() -> impl Strategy<Value = MediaObject> {
    (
        0u64..10_000,
        "[ -~]{0,24}",
        prop::sample::select(MediaFormat::ALL.to_vec()),
        0u64..100_000_000,
        (0u32..2000, 0u32..2000),
        prop::collection::vec(any::<u8>(), 0..300),
    )
        .prop_map(|(id, name, format, dur, (w, h), data)| {
            MediaObject::new(
                MediaId(id),
                name,
                format,
                SimDuration::from_micros(dur),
                VideoDims::new(w, h),
                Bytes::from(data),
            )
        })
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        arb_object().prop_map(|object| WalRecord::PutObject { object }),
        (0u32..500, 0u64..10_000).prop_map(|(a, n)| WalRecord::RemoveObject {
            id: MhegId::new(a, n)
        }),
        arb_media().prop_map(|media| WalRecord::PutContent { media }),
        (
            0u32..1000,
            0u32..1000,
            (0u32..500, 0u64..10_000),
            prop::option::of(0u32..64),
            "[ -~]{0,40}",
        )
            .prop_map(|(student, id, (a, n), unit, note)| WalRecord::BookmarkAdd {
                student,
                id,
                document: MhegId::new(a, n),
                unit,
                note,
            }),
        (0u32..1000, 0u32..1000)
            .prop_map(|(student, id)| WalRecord::BookmarkRemove { student, id }),
    ]
}

/// Journal `recs` and return the raw device bytes a crash would leave.
fn journal(recs: &[WalRecord]) -> Vec<u8> {
    let dev = SharedLogDevice::new();
    let mut wal = Wal::create(Box::new(dev.clone()), 0);
    for r in recs {
        wal.append(r);
    }
    dev.snapshot()
}

proptest! {
    /// Every record survives encode → decode unchanged.
    #[test]
    fn record_round_trips(rec in arb_record()) {
        let enc = rec.encode();
        let dec = WalRecord::decode(&enc).expect("own encoding decodes");
        prop_assert_eq!(dec, rec);
    }

    /// A journal of many records replays all of them, in order, with
    /// consecutive sequence numbers — through the same `Wal::recover`
    /// path a rebooted server uses.
    #[test]
    fn journal_replays_in_order(recs in prop::collection::vec(arb_record(), 1..12)) {
        let bytes = journal(&recs);
        let (wal, replayed, report) =
            Wal::recover(Box::new(SharedLogDevice::with_data(bytes)));
        prop_assert!(!report.torn_tail);
        prop_assert_eq!(report.records, recs.len() as u64);
        prop_assert_eq!(wal.next_seq(), recs.len() as u64);
        let seqs: Vec<u64> = replayed.iter().map(|(s, _)| *s).collect();
        prop_assert_eq!(seqs, (0..recs.len() as u64).collect::<Vec<_>>());
        let got: Vec<WalRecord> = replayed.into_iter().map(|(_, r)| r).collect();
        prop_assert_eq!(got, recs);
    }

    /// Flip any single bit anywhere in the journal: the CRC (or the
    /// length/header check) rejects the damaged frame, replay returns a
    /// strict prefix of the good records, and nothing panics.
    #[test]
    fn any_bit_flip_is_detected(
        recs in prop::collection::vec(arb_record(), 1..8),
        byte_sel in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bytes = journal(&recs);
        let pos = byte_sel % bytes.len();
        bytes[pos] ^= 1 << bit;

        let (replayed, report) = read_frames(&bytes);
        // Never more records than written, and whatever does replay is
        // an exact prefix of what went in.
        prop_assert!(replayed.len() <= recs.len());
        for (i, (seq, rec)) in replayed.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64);
            prop_assert_eq!(rec, &recs[i]);
        }
        // A flipped bit can never silently yield a *different* record:
        // either replay is short (damage detected and reported) or —
        // only possible via a CRC collision, which a single-bit flip
        // cannot produce — everything came back intact.
        if replayed.len() < recs.len() {
            prop_assert!(
                report.torn_tail || report.truncated_bytes > 0 || report.warning.is_some()
            );
        } else {
            let got: Vec<WalRecord> = replayed.into_iter().map(|(_, r)| r).collect();
            prop_assert_eq!(got, recs);
        }
    }

    /// The CRC actually depends on every bit: flipping one changes it.
    /// (CRC-32 detects all single-bit errors by construction.)
    #[test]
    fn crc_sees_every_bit(data in prop::collection::vec(any::<u8>(), 1..200),
                          byte_sel in any::<usize>(),
                          bit in 0u8..8) {
        let original = crc32(&data);
        let mut flipped = data.clone();
        let pos = byte_sel % flipped.len();
        flipped[pos] ^= 1 << bit;
        prop_assert_ne!(original, crc32(&flipped));
    }
}
