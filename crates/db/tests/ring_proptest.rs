//! Property tests for the consistent-hash ring: key balance stays
//! within ±20% of the even share at the default virtual-node count, and
//! removing a shard remaps only the removed shard's keys — every key a
//! survivor owned keeps its owner.

use mits_db::ring::HashRing;
use mits_media::MediaId;
use mits_mheg::MhegId;
use proptest::prelude::*;

proptest! {
    /// Uniformly random object keys land within ±20% of `n/shards` on
    /// every shard, for every shard count the system deploys.
    #[test]
    fn balance_within_twenty_percent(
        shards in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let ring = HashRing::new(shards);
        const N: usize = 20_000;
        let mut counts = vec![0usize; shards];
        for i in 0..N as u64 {
            // Derive well-spread ids from the seed; the ring then mixes
            // them again through its own placement hash.
            let id = MhegId::new((seed >> 32) as u32 ^ 7, seed ^ i);
            counts[ring.shard_for_object(id)] += 1;
        }
        let even = N as f64 / shards as f64;
        for (s, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - even) / even;
            prop_assert!(
                dev.abs() <= 0.20,
                "shard {s} holds {c} of {N} keys ({:+.1}% vs even share)",
                dev * 100.0
            );
        }
    }

    /// Media placement obeys the same balance envelope.
    #[test]
    fn media_balance_within_twenty_percent(
        shards in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let ring = HashRing::new(shards);
        const N: usize = 20_000;
        let mut counts = vec![0usize; shards];
        for i in 0..N as u64 {
            counts[ring.shard_for_media(MediaId(seed.wrapping_add(i)))] += 1;
        }
        let even = N as f64 / shards as f64;
        for &c in &counts {
            let dev = (c as f64 - even) / even;
            prop_assert!(dev.abs() <= 0.20, "{counts:?}");
        }
    }

    /// Removing one shard is minimal: a key owned by any surviving shard
    /// keeps its owner (deleting ring points never changes another key's
    /// successor), and the removed shard's keys all land on survivors.
    #[test]
    fn removal_remaps_only_the_lost_shards_keys(
        shards in 2usize..=8,
        lost_raw in any::<usize>(),
        seed in any::<u64>(),
    ) {
        let lost = lost_raw % shards;
        let ring = HashRing::new(shards);
        let reduced = ring.without_shard(lost);
        let mut moved = 0usize;
        const N: usize = 5_000;
        for i in 0..N as u64 {
            let id = MhegId::new(3, seed ^ i.wrapping_mul(0x9E37_79B9));
            let before = ring.shard_for_object(id);
            let after = reduced.shard_for_object(id);
            prop_assert!(after != lost, "no key may map to the removed shard");
            if before != lost {
                prop_assert_eq!(
                    before, after,
                    "a survivor's key moved when shard {} was removed", lost
                );
            } else {
                moved += 1;
            }
        }
        // The moved fraction is exactly the lost shard's share — bounded
        // by the same balance envelope.
        let share = moved as f64 / N as f64;
        prop_assert!(
            share <= 1.2 / shards as f64,
            "removed shard owned {share:.3} of the keyspace"
        );
    }
}
