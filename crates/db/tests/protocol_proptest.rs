//! Property tests for the client-server protocol: every request and
//! response round-trips the wire exactly; the decoder never panics on
//! noise; the keyword tree survives its wire form.

use bytes::Bytes;
use mits_db::{peek_req_id, DbError, KeywordTree, Request, Response};
use mits_media::{MediaFormat, MediaId, MediaObject, VideoDims};
use mits_mheg::{ClassLibrary, GenericValue, MhegId};
use mits_sim::SimDuration;
use proptest::prelude::*;

fn arb_id() -> impl Strategy<Value = MhegId> {
    (0u32..500, 0u64..10_000).prop_map(|(a, n)| MhegId::new(a, n))
}

fn arb_media() -> impl Strategy<Value = MediaObject> {
    (
        0u64..10_000,
        "[ -~]{0,30}",
        prop::sample::select(MediaFormat::ALL.to_vec()),
        0u64..100_000_000,
        (0u32..2000, 0u32..2000),
        prop::collection::vec(any::<u8>(), 0..500),
    )
        .prop_map(|(id, name, format, dur, (w, h), data)| {
            MediaObject::new(
                MediaId(id),
                name,
                format,
                SimDuration::from_micros(dur),
                VideoDims::new(w, h),
                Bytes::from(data),
            )
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::ListDocs),
        "[ -~]{0,40}".prop_map(|name| Request::GetDoc { name }),
        arb_id().prop_map(|id| Request::GetObject { id }),
        arb_id().prop_map(|root| Request::GetCourseware { root }),
        (0u64..10_000).prop_map(|m| Request::GetContent { media: MediaId(m) }),
        Just(Request::GetKeywordTree),
        ("[a-z/]{0,20}", any::<bool>())
            .prop_map(|(keyword, subtree)| Request::QueryKeyword { keyword, subtree }),
        arb_media().prop_map(|media| Request::PutContent { media }),
    ]
}

fn arb_tree() -> impl Strategy<Value = KeywordTree> {
    prop::collection::vec(("[a-z]{1,6}(/[a-z]{1,6}){0,2}", arb_id()), 0..12).prop_map(|pairs| {
        let mut t = KeywordTree::new();
        for (kw, id) in pairs {
            t.insert(&kw, id);
        }
        t
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        prop::collection::vec((arb_id(), "[ -~]{0,24}"), 0..10).prop_map(Response::DocList),
        arb_media().prop_map(Response::Content),
        arb_tree().prop_map(Response::KeywordTree),
        prop::collection::vec(arb_id(), 0..20).prop_map(Response::DocIds),
        Just(Response::Ack),
        "[ -~]{0,30}".prop_map(|s| Response::Err(DbError::NotFound(s))),
        "[ -~]{0,30}".prop_map(|s| Response::Err(DbError::Malformed(s))),
        "[ -~]{0,30}".prop_map(|s| Response::Err(DbError::Unavailable(s))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip(req in arb_request(), req_id in any::<u64>()) {
        let wire = req.encode(req_id);
        let env = Request::decode(&wire).expect("decode");
        prop_assert_eq!(env.req_id, req_id);
        prop_assert_eq!(env.body, req);
    }

    #[test]
    fn responses_round_trip(resp in arb_response(), req_id in any::<u64>()) {
        let wire = resp.encode(req_id);
        let env = Response::decode(&wire).expect("decode");
        prop_assert_eq!(env.req_id, req_id);
        prop_assert_eq!(env.body, resp);
    }

    #[test]
    fn put_object_round_trips(value in any::<i64>(), name in "[ -~]{0,20}") {
        let mut lib = ClassLibrary::new(1);
        let id = lib.value_content(&name, GenericValue::Int(value));
        let object = lib.get(id).unwrap().clone();
        let req = Request::PutObject { object };
        let env = Request::decode(&req.encode(9)).expect("decode");
        prop_assert_eq!(env.body, req);
    }

    #[test]
    fn decoder_never_panics(noise in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&noise);
        let _ = Response::decode(&noise);
    }

    #[test]
    fn truncation_always_errors(resp in arb_response(), frac in 0.0f64..1.0) {
        let wire = resp.encode(1);
        let cut = ((wire.len().saturating_sub(1)) as f64 * frac) as usize;
        prop_assert!(Response::decode(&wire[..cut]).is_err());
    }

    // The retry machinery correlates corrupted frames by the id prefix;
    // that only works if every frame really leads with its req_id.
    #[test]
    fn peeked_id_matches_decoded_id(resp in arb_response(), req in arb_request(), req_id in any::<u64>()) {
        prop_assert_eq!(peek_req_id(&resp.encode(req_id)), Some(req_id));
        prop_assert_eq!(peek_req_id(&req.encode(req_id)), Some(req_id));
    }

    // A corrupted body must never decode into a *different* correlation
    // id: flip any byte past the id prefix — either the decode fails or
    // the id is intact.
    #[test]
    fn corruption_preserves_correlation(resp in arb_response(), pos in 8usize..4096, bit in 0u8..8) {
        let wire = resp.encode(77);
        let mut bent = wire.to_vec();
        if pos < bent.len() {
            bent[pos] ^= 1 << bit;
            if let Ok(env) = Response::decode(&bent) {
                prop_assert_eq!(env.req_id, 77);
            }
            prop_assert_eq!(peek_req_id(&bent), Some(77));
        }
    }
}
