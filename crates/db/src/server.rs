//! The courseware database server (Fig 3.5).
//!
//! Owns the object store, content store, and keyword index; turns each
//! [`Request`] into a [`Response`] plus a modelled **service time** so the
//! discrete-event layer can simulate a loaded server (experiment F3.5
//! sweeps concurrent clients against one server).

use crate::index::KeywordTree;
use crate::protocol::{DbError, Request, Response};
use crate::store::{ContentStore, ObjectStore};
use mits_mheg::MhegObject;
use mits_sim::SimDuration;
use parking_lot::RwLock;

/// Service-time model: fixed per-request CPU plus per-byte storage I/O.
///
/// Calibrated to a mid-90s SUN/ULTRA class server: ~200 µs request
/// overhead, ~50 MB/s storage streaming.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Fixed per-request cost.
    pub per_request: SimDuration,
    /// Cost per payload byte moved from storage.
    pub per_byte_ns: u64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel {
            per_request: SimDuration::from_micros(200),
            per_byte_ns: 20, // 50 MB/s
        }
    }
}

impl ServiceModel {
    /// Service time for a request that moved `bytes` of payload.
    pub fn cost(&self, bytes: usize) -> SimDuration {
        self.per_request + SimDuration::from_micros((bytes as u64 * self.per_byte_ns) / 1000)
    }
}

/// The database server.
pub struct DbServer {
    /// MHEG object store (scenario database).
    pub objects: ObjectStore,
    /// Bulk content store.
    pub content: ContentStore,
    index: RwLock<KeywordTree>,
    model: ServiceModel,
    /// Queue depth at or beyond which the server sheds load with
    /// [`DbError::Unavailable`] instead of queuing unboundedly.
    overload_threshold: Option<usize>,
    /// Requests served (for utilization reporting).
    pub requests_served: RwLock<u64>,
    /// Requests shed with `Unavailable` (overload reporting).
    pub requests_shed: RwLock<u64>,
}

impl Default for DbServer {
    fn default() -> Self {
        Self::new(ServiceModel::default())
    }
}

impl DbServer {
    /// A server with the given service-time model.
    pub fn new(model: ServiceModel) -> Self {
        DbServer {
            objects: ObjectStore::new(),
            content: ContentStore::new(),
            index: RwLock::new(KeywordTree::new()),
            model,
            overload_threshold: None,
            requests_served: RwLock::new(0),
            requests_shed: RwLock::new(0),
        }
    }

    /// Builder: shed requests arriving while `threshold` or more are
    /// already queued. `None` (the default) queues without bound.
    pub fn with_overload_threshold(mut self, threshold: usize) -> Self {
        self.overload_threshold = Some(threshold);
        self
    }

    /// The configured shed point, if any.
    pub fn overload_threshold(&self) -> Option<usize> {
        self.overload_threshold
    }

    /// Index an object's keywords (called on every PutObject).
    fn index_object(&self, obj: &MhegObject) {
        let mut index = self.index.write();
        for kw in &obj.info.keywords {
            index.insert(kw, obj.id);
        }
    }

    /// Bulk-load objects (author-site publishing without the protocol).
    pub fn load_objects(&self, objects: impl IntoIterator<Item = MhegObject>) {
        for obj in objects {
            self.index_object(&obj);
            self.objects.put(obj);
        }
    }

    /// Bulk-load media.
    pub fn load_media(&self, media: impl IntoIterator<Item = mits_media::MediaObject>) {
        for m in media {
            self.content.put(m);
        }
    }

    /// Handle one request; returns the response and its service time.
    /// Equivalent to [`DbServer::handle_at_depth`] with an idle queue.
    pub fn handle(&self, req: &Request) -> (Response, SimDuration) {
        self.handle_at_depth(req, 0)
    }

    /// Handle one request arriving while `queue_depth` requests are
    /// already waiting. Past the overload threshold the server answers
    /// with a structured [`DbError::Unavailable`] at a nominal cost — a
    /// rejection is cheap, and the client's backoff spreads the retry
    /// load instead of letting the queue grow without bound.
    pub fn handle_at_depth(&self, req: &Request, queue_depth: usize) -> (Response, SimDuration) {
        if let Some(limit) = self.overload_threshold {
            if queue_depth >= limit {
                *self.requests_shed.write() += 1;
                let msg = format!("queue depth {queue_depth} at limit {limit}");
                return (
                    Response::Err(DbError::Unavailable(msg)),
                    self.model.per_request,
                );
            }
        }
        *self.requests_served.write() += 1;
        let (resp, bytes) = self.dispatch(req);
        (resp, self.model.cost(bytes))
    }

    fn dispatch(&self, req: &Request) -> (Response, usize) {
        match req {
            Request::ListDocs => {
                let list = self.objects.list_containers();
                let bytes = list.iter().map(|(_, n)| n.len() + 12).sum();
                (Response::DocList(list), bytes)
            }
            Request::GetDoc { name } => {
                let root = self
                    .objects
                    .list_containers()
                    .into_iter()
                    .find(|(_, n)| n == name)
                    .map(|(id, _)| id);
                match root {
                    Some(id) => self.courseware_response(id),
                    None => (Response::Err(DbError::NotFound(name.clone())), 0),
                }
            }
            Request::GetObject { id } => match self.objects.get(*id) {
                Some(obj) => {
                    let bytes = approx_object_size(&obj);
                    (Response::Objects(vec![obj]), bytes)
                }
                None => (Response::Err(DbError::NotFound(id.to_string())), 0),
            },
            Request::GetCourseware { root } => {
                if self.objects.get(*root).is_none() {
                    return (Response::Err(DbError::NotFound(root.to_string())), 0);
                }
                self.courseware_response(*root)
            }
            Request::GetContent { media } => match self.content.get(*media) {
                Some(m) => {
                    let bytes = m.data.len();
                    (Response::Content(m), bytes)
                }
                None => (Response::Err(DbError::NotFound(media.to_string())), 0),
            },
            Request::GetKeywordTree => {
                let tree = self.index.read().clone();
                let bytes = tree.len() * 24;
                (Response::KeywordTree(tree), bytes)
            }
            Request::QueryKeyword { keyword, subtree } => {
                let index = self.index.read();
                let ids = if *subtree {
                    index.lookup_subtree(keyword)
                } else {
                    index.lookup(keyword)
                };
                let bytes = ids.len() * 12;
                (Response::DocIds(ids), bytes)
            }
            Request::PutObject { object } => {
                self.index_object(object);
                let bytes = approx_object_size(object);
                self.objects.put(object.clone());
                (Response::Ack, bytes)
            }
            Request::PutContent { media } => {
                let bytes = media.data.len();
                self.content.put(media.clone());
                (Response::Ack, bytes)
            }
        }
    }

    fn courseware_response(&self, root: mits_mheg::MhegId) -> (Response, usize) {
        let objs = self.objects.closure(root);
        let bytes = objs.iter().map(approx_object_size).sum();
        (Response::Objects(objs), bytes)
    }
}

/// Rough in-store footprint of an object (drives the I/O cost model;
/// exactness is irrelevant, monotonicity matters).
fn approx_object_size(obj: &MhegObject) -> usize {
    use mits_mheg::{ContentData, ObjectBody};
    let base = 128 + obj.info.name.len() + obj.info.keywords.iter().map(String::len).sum::<usize>();
    let body = match &obj.body {
        ObjectBody::Content(c) => match &c.data {
            ContentData::Inline(b) => b.len(),
            _ => 16,
        },
        ObjectBody::Script(s) => s.source.len(),
        _ => 64,
    };
    base + body
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mits_media::{MediaFormat, MediaId, MediaObject, VideoDims};
    use mits_mheg::{ClassLibrary, GenericValue, MhegId, ObjectInfo};

    fn loaded_server() -> (DbServer, MhegId) {
        let mut lib = ClassLibrary::new(1);
        let a = lib.value_content("a", GenericValue::Int(1));
        let scene = lib.composite("scene", vec![a], vec![], vec![]);
        let course = lib.container("ATM Course", vec![scene]);
        let mut objs = lib.into_objects();
        // Tag the course for the keyword index.
        objs.iter_mut()
            .find(|o| o.id == course)
            .expect("course exists")
            .info = ObjectInfo::named("ATM Course").with_keywords(["telecom/atm", "networks"]);
        let server = DbServer::default();
        server.load_objects(objs);
        server.load_media([MediaObject::new(
            MediaId(7),
            "clip.mpg",
            MediaFormat::Mpeg,
            mits_sim::SimDuration::from_secs(5),
            VideoDims::new(320, 240),
            Bytes::from(vec![9u8; 10_000]),
        )]);
        (server, course)
    }

    #[test]
    fn list_and_fetch_doc() {
        let (server, course) = loaded_server();
        let (resp, _) = server.handle(&Request::ListDocs);
        assert_eq!(resp, Response::DocList(vec![(course, "ATM Course".into())]));
        let (resp, _) = server.handle(&Request::GetDoc {
            name: "ATM Course".into(),
        });
        match resp {
            Response::Objects(objs) => assert_eq!(objs.len(), 3, "closure"),
            other => panic!("{other:?}"),
        }
        let (resp, _) = server.handle(&Request::GetDoc {
            name: "missing".into(),
        });
        assert!(matches!(resp, Response::Err(DbError::NotFound(_))));
    }

    #[test]
    fn content_fetch_costs_scale_with_size() {
        let (server, _) = loaded_server();
        let (_, small_cost) = server.handle(&Request::ListDocs);
        let (resp, big_cost) = server.handle(&Request::GetContent { media: MediaId(7) });
        assert!(matches!(resp, Response::Content(m) if m.data.len() == 10_000));
        assert!(big_cost > small_cost, "10 kB fetch costs more than a list");
    }

    #[test]
    fn keyword_queries() {
        let (server, course) = loaded_server();
        let (resp, _) = server.handle(&Request::QueryKeyword {
            keyword: "telecom/atm".into(),
            subtree: false,
        });
        assert_eq!(resp, Response::DocIds(vec![course]));
        let (resp, _) = server.handle(&Request::QueryKeyword {
            keyword: "telecom".into(),
            subtree: true,
        });
        assert_eq!(resp, Response::DocIds(vec![course]));
        let (resp, _) = server.handle(&Request::GetKeywordTree);
        match resp {
            Response::KeywordTree(t) => {
                assert_eq!(t.lookup("networks"), vec![course]);
                assert_eq!(t.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn put_object_indexes_keywords() {
        let server = DbServer::default();
        let mut lib = ClassLibrary::new(9);
        let id = lib.value_content("tagged", GenericValue::Int(1));
        let mut obj = lib.get(id).unwrap().clone();
        obj.info.keywords = vec!["fresh/topic".into()];
        let (resp, _) = server.handle(&Request::PutObject { object: obj });
        assert_eq!(resp, Response::Ack);
        let (resp, _) = server.handle(&Request::QueryKeyword {
            keyword: "fresh/topic".into(),
            subtree: false,
        });
        assert_eq!(resp, Response::DocIds(vec![id]));
    }

    #[test]
    fn unknown_ids_not_found() {
        let (server, _) = loaded_server();
        let (resp, _) = server.handle(&Request::GetObject {
            id: MhegId::new(9, 9),
        });
        assert!(matches!(resp, Response::Err(DbError::NotFound(_))));
        let (resp, _) = server.handle(&Request::GetContent { media: MediaId(99) });
        assert!(matches!(resp, Response::Err(DbError::NotFound(_))));
        let (resp, _) = server.handle(&Request::GetCourseware {
            root: MhegId::new(9, 9),
        });
        assert!(matches!(resp, Response::Err(DbError::NotFound(_))));
    }

    #[test]
    fn service_model_costs() {
        let m = ServiceModel::default();
        assert_eq!(m.cost(0), SimDuration::from_micros(200));
        // 1 MB at 20 ns/B = 20 ms + 200 µs.
        assert_eq!(m.cost(1_000_000), SimDuration::from_micros(200 + 20_000));
    }

    #[test]
    fn overload_threshold_sheds_load() {
        let (server, _) = loaded_server();
        let server = DbServer {
            overload_threshold: Some(4),
            ..server
        };
        // Below the limit: served normally.
        let (resp, _) = server.handle_at_depth(&Request::ListDocs, 3);
        assert!(matches!(resp, Response::DocList(_)));
        // At and past the limit: structured, retryable rejection.
        let (resp, cost) = server.handle_at_depth(&Request::ListDocs, 4);
        match resp {
            Response::Err(e) => assert!(e.is_retryable(), "{e}"),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            cost,
            ServiceModel::default().per_request,
            "rejection is cheap"
        );
        assert_eq!(*server.requests_shed.read(), 1);
        assert_eq!(*server.requests_served.read(), 1);
        // Unconfigured servers never shed.
        let (fresh, _) = loaded_server();
        let (resp, _) = fresh.handle_at_depth(&Request::ListDocs, 1_000_000);
        assert!(matches!(resp, Response::DocList(_)));
    }

    #[test]
    fn request_counter() {
        let (server, _) = loaded_server();
        for _ in 0..5 {
            server.handle(&Request::ListDocs);
        }
        assert_eq!(*server.requests_served.read(), 5);
    }
}
