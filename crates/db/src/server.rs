//! The courseware database server (Fig 3.5).
//!
//! Owns the object store, content store, and keyword index; turns each
//! [`Request`] into a [`Response`] plus a modelled **service time** so the
//! discrete-event layer can simulate a loaded server (experiment F3.5
//! sweeps concurrent clients against one server).

use crate::index::KeywordTree;
use crate::protocol::{DbError, Request, Response};
use crate::snapshot;
use crate::store::{ContentStore, ObjectStore};
use crate::wal::{self, LogDevice, Wal, WalRecord};
use bytes::Bytes;
use mits_media::MediaObject;
use mits_mheg::{encode_object, MhegId, MhegObject, WireFormat};
use mits_sim::SimDuration;
use parking_lot::{Mutex, RwLock};

/// Service-time model: fixed per-request CPU plus per-byte storage I/O.
///
/// Calibrated to a mid-90s SUN/ULTRA class server: ~200 µs request
/// overhead, ~50 MB/s storage streaming.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Fixed per-request cost.
    pub per_request: SimDuration,
    /// Cost per payload byte moved from storage.
    pub per_byte_ns: u64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel {
            per_request: SimDuration::from_micros(200),
            per_byte_ns: 20, // 50 MB/s
        }
    }
}

impl ServiceModel {
    /// Service time for a request that moved `bytes` of payload.
    pub fn cost(&self, bytes: usize) -> SimDuration {
        self.per_request + SimDuration::from_micros((bytes as u64 * self.per_byte_ns) / 1000)
    }
}

/// The database server.
pub struct DbServer {
    /// MHEG object store (scenario database).
    pub objects: ObjectStore,
    /// Bulk content store.
    pub content: ContentStore,
    index: RwLock<KeywordTree>,
    model: ServiceModel,
    /// Queue depth at or beyond which the server sheds load with
    /// [`DbError::Unavailable`] instead of queuing unboundedly.
    overload_threshold: Option<usize>,
    /// Requests served (for utilization reporting).
    pub requests_served: RwLock<u64>,
    /// Requests shed with `Unavailable` (overload reporting).
    pub requests_shed: RwLock<u64>,
    /// Write-ahead log, if durability is attached. Mutations journal
    /// here *before* touching the stores.
    wal: Mutex<Option<Wal>>,
    /// Snapshot device for checkpoints.
    snap: Mutex<Option<Box<dyn LogDevice>>>,
    /// Serializes the journal-then-apply sequence of every mutation so a
    /// WAL record's version can never race another writer.
    write_gate: Mutex<()>,
    /// Framed WAL records awaiting shipment to a replica.
    outbox: Mutex<Vec<Bytes>>,
    /// Whether journaled frames are queued for replication.
    shipping: Mutex<bool>,
    /// Failover epoch stamped on every response; replicas promoted to
    /// primary bump it so clients can reject a stale primary's answers.
    epoch: RwLock<u64>,
    /// WAL records appended (local mutations + shipped frames).
    wal_records_journaled: RwLock<u64>,
    /// WAL bytes appended (framed size).
    wal_bytes_journaled: RwLock<u64>,
    /// Bytes replayed off the devices by [`DbServer::recover`].
    wal_bytes_replayed: RwLock<u64>,
    /// Checkpoints taken.
    checkpoints_taken: RwLock<u64>,
}

impl Default for DbServer {
    fn default() -> Self {
        Self::new(ServiceModel::default())
    }
}

impl DbServer {
    /// A server with the given service-time model.
    pub fn new(model: ServiceModel) -> Self {
        DbServer {
            objects: ObjectStore::new(),
            content: ContentStore::new(),
            index: RwLock::new(KeywordTree::new()),
            model,
            overload_threshold: None,
            requests_served: RwLock::new(0),
            requests_shed: RwLock::new(0),
            wal: Mutex::new(None),
            snap: Mutex::new(None),
            write_gate: Mutex::new(()),
            outbox: Mutex::new(Vec::new()),
            shipping: Mutex::new(false),
            epoch: RwLock::new(0),
            wal_records_journaled: RwLock::new(0),
            wal_bytes_journaled: RwLock::new(0),
            wal_bytes_replayed: RwLock::new(0),
            checkpoints_taken: RwLock::new(0),
        }
    }

    /// Builder: shed requests arriving while `threshold` or more are
    /// already queued. `None` (the default) queues without bound.
    pub fn with_overload_threshold(mut self, threshold: usize) -> Self {
        self.overload_threshold = Some(threshold);
        self
    }

    /// The configured shed point, if any.
    pub fn overload_threshold(&self) -> Option<usize> {
        self.overload_threshold
    }

    /// Index an object's keywords (called on every PutObject).
    fn index_object(&self, obj: &MhegObject) {
        let mut index = self.index.write();
        for kw in &obj.info.keywords {
            index.insert(kw, obj.id);
        }
    }

    /// Bulk-load objects (author-site publishing without the protocol).
    /// Journaled like any other mutation when durability is attached.
    pub fn load_objects(&self, objects: impl IntoIterator<Item = MhegObject>) {
        for obj in objects {
            self.put_object(obj);
        }
    }

    /// Bulk-load media. Journaled when durability is attached.
    pub fn load_media(&self, media: impl IntoIterator<Item = mits_media::MediaObject>) {
        for m in media {
            self.put_media(m);
        }
    }

    // ---------- durable mutation paths ----------

    /// Store an object: journal first, then apply. The stored version is
    /// current + 1 (or 0 for a fresh insert) and is recorded *inside* the
    /// WAL record, so replay reproduces it exactly instead of re-bumping.
    pub fn put_object(&self, mut obj: MhegObject) -> u32 {
        let _gate = self.write_gate.lock();
        self.index_object(&obj);
        let prev = self.objects.version_of(obj.id);
        obj.info.version = prev.map_or(0, |p| p + 1);
        self.journal(&WalRecord::PutObject {
            object: obj.clone(),
        });
        self.objects
            .put_if_version(obj, prev)
            .expect("write gate serializes object puts")
    }

    /// Store a media object: journal first, then apply.
    pub fn put_media(&self, media: MediaObject) {
        let _gate = self.write_gate.lock();
        self.journal(&WalRecord::PutContent {
            media: media.clone(),
        });
        self.content.put(media);
    }

    /// Remove an object: journal first, then apply.
    pub fn remove_object(&self, id: MhegId) -> bool {
        let _gate = self.write_gate.lock();
        self.journal(&WalRecord::RemoveObject { id });
        self.objects.remove(id)
    }

    /// Append a record to the WAL (when attached) and queue the framed
    /// bytes for replication (when shipping).
    fn journal(&self, rec: &WalRecord) {
        let mut wal = self.wal.lock();
        if let Some(w) = wal.as_mut() {
            let (_, frame) = w.append(rec);
            *self.wal_records_journaled.write() += 1;
            *self.wal_bytes_journaled.write() += frame.len() as u64;
            if *self.shipping.lock() {
                self.outbox.lock().push(frame);
            }
        }
    }

    /// Handle one request; returns the response and its service time.
    /// Equivalent to [`DbServer::handle_at_depth`] with an idle queue.
    pub fn handle(&self, req: &Request) -> (Response, SimDuration) {
        self.handle_at_depth(req, 0)
    }

    /// Handle one request arriving while `queue_depth` requests are
    /// already waiting. Past the overload threshold the server answers
    /// with a structured [`DbError::Unavailable`] at a nominal cost — a
    /// rejection is cheap, and the client's backoff spreads the retry
    /// load instead of letting the queue grow without bound.
    pub fn handle_at_depth(&self, req: &Request, queue_depth: usize) -> (Response, SimDuration) {
        if let Some(limit) = self.overload_threshold {
            if queue_depth >= limit {
                *self.requests_shed.write() += 1;
                let msg = format!("queue depth {queue_depth} at limit {limit}");
                return (
                    Response::Err(DbError::Unavailable(msg)),
                    self.model.per_request,
                );
            }
        }
        *self.requests_served.write() += 1;
        let (resp, bytes) = self.dispatch(req);
        (resp, self.model.cost(bytes))
    }

    fn dispatch(&self, req: &Request) -> (Response, usize) {
        match req {
            Request::ListDocs => {
                let list = self.objects.list_containers();
                let bytes = list.iter().map(|(_, n)| n.len() + 12).sum();
                (Response::DocList(list), bytes)
            }
            Request::GetDoc { name } => {
                let root = self
                    .objects
                    .list_containers()
                    .into_iter()
                    .find(|(_, n)| n == name)
                    .map(|(id, _)| id);
                match root {
                    Some(id) => self.courseware_response(id),
                    None => (Response::Err(DbError::NotFound(name.clone())), 0),
                }
            }
            Request::GetObject { id } => match self.objects.get(*id) {
                Some(obj) => {
                    let bytes = approx_object_size(&obj);
                    (Response::Objects(vec![obj]), bytes)
                }
                None => (Response::Err(DbError::NotFound(id.to_string())), 0),
            },
            Request::GetCourseware { root } => {
                if self.objects.get(*root).is_none() {
                    return (Response::Err(DbError::NotFound(root.to_string())), 0);
                }
                self.courseware_response(*root)
            }
            Request::GetContent { media } => match self.content.get(*media) {
                Some(m) => {
                    let bytes = m.data.len();
                    (Response::Content(m), bytes)
                }
                None => (Response::Err(DbError::NotFound(media.to_string())), 0),
            },
            Request::GetKeywordTree => {
                let tree = self.index.read().clone();
                let bytes = tree.len() * 24;
                (Response::KeywordTree(tree), bytes)
            }
            Request::QueryKeyword { keyword, subtree } => {
                let index = self.index.read();
                let ids = if *subtree {
                    index.lookup_subtree(keyword)
                } else {
                    index.lookup(keyword)
                };
                let bytes = ids.len() * 12;
                (Response::DocIds(ids), bytes)
            }
            Request::PutObject { object } => {
                let bytes = approx_object_size(object);
                self.put_object(object.clone());
                (Response::Ack, bytes)
            }
            Request::PutContent { media } => {
                let bytes = media.data.len();
                self.put_media(media.clone());
                (Response::Ack, bytes)
            }
        }
    }

    fn courseware_response(&self, root: mits_mheg::MhegId) -> (Response, usize) {
        let objs = self.objects.closure(root);
        let bytes = objs.iter().map(approx_object_size).sum();
        (Response::Objects(objs), bytes)
    }

    // ---------- durability, recovery, replication ----------

    /// Attach durability to a fresh server: mutations journal to
    /// `wal_dev`, checkpoints write `snap_dev`. Use [`DbServer::recover`]
    /// instead when the devices may hold prior state.
    pub fn with_durability(
        self,
        wal_dev: Box<dyn LogDevice>,
        snap_dev: Box<dyn LogDevice>,
    ) -> Self {
        *self.wal.lock() = Some(Wal::create(wal_dev, 0));
        *self.snap.lock() = Some(snap_dev);
        self
    }

    /// True when a WAL is attached.
    pub fn is_durable(&self) -> bool {
        self.wal.lock().is_some()
    }

    /// Rebuild a server from its surviving devices: apply the snapshot,
    /// then the WAL tail past the snapshot's cursor, tolerating (and
    /// truncating) a torn or corrupt final record. The keyword index is
    /// rebuilt as records apply. Never panics on bad devices — worst
    /// case is an empty store and a loud report.
    pub fn recover(
        model: ServiceModel,
        overload_threshold: Option<usize>,
        wal_dev: Box<dyn LogDevice>,
        snap_dev: Box<dyn LogDevice>,
    ) -> (Self, RecoveryReport) {
        let mut server = DbServer::new(model);
        server.overload_threshold = overload_threshold;
        let mut report = RecoveryReport::default();

        let (through_seq, snap_records, snap_report) =
            snapshot::read_snapshot(&snap_dev.read_all());
        report.through_seq = through_seq;
        report.snapshot_records = snap_report.records;
        report.snapshot_bytes = snap_report.bytes;
        if let Some(w) = snap_report.warning {
            report.warnings.push(format!("snapshot: {w}"));
        }
        for rec in &snap_records {
            if server.apply_record(rec) {
                report.applied += 1;
            } else {
                report.skipped += 1;
            }
        }

        let (mut wal, tail, wal_report) = Wal::recover(wal_dev);
        report.wal_records = wal_report.records;
        report.wal_bytes = wal_report.bytes;
        report.torn_tail = wal_report.torn_tail;
        if let Some(w) = wal_report.warning {
            report.warnings.push(format!("wal: {w}"));
        }
        for (seq, rec) in &tail {
            if *seq < through_seq {
                // Already folded into the snapshot.
                report.skipped += 1;
            } else if server.apply_record(rec) {
                report.applied += 1;
            } else {
                report.skipped += 1;
            }
        }
        wal.advance_seq_to(through_seq);
        *server.wal.lock() = Some(wal);
        *server.snap.lock() = Some(snap_dev);
        *server.wal_bytes_replayed.write() = report.replayed_bytes();
        (server, report)
    }

    /// Apply one WAL record to the stores (replay and replication).
    /// Returns whether it changed anything; re-applying a record the
    /// store already reflects is a no-op, never a version double-bump.
    /// Bookmark records belong to the navigator and are skipped here.
    pub fn apply_record(&self, rec: &WalRecord) -> bool {
        match rec {
            WalRecord::PutObject { object } => {
                let v = object.info.version;
                let cur = self.objects.version_of(object.id);
                if cur == Some(v) {
                    return false; // already applied
                }
                self.index_object(object);
                // Sequential replay is a CAS from the predecessor
                // version; a bootstrap out of order (snapshot records,
                // resync) installs the recorded version directly.
                if self
                    .objects
                    .put_if_version(object.clone(), v.checked_sub(1))
                    .is_err()
                {
                    self.objects.put_exact(object.clone());
                }
                true
            }
            WalRecord::RemoveObject { id } => self.objects.remove(*id),
            WalRecord::PutContent { media } => {
                self.content.put(media.clone());
                true
            }
            WalRecord::BookmarkAdd { .. } | WalRecord::BookmarkRemove { .. } => false,
        }
    }

    /// Apply a frame shipped from the primary: verify its CRC, journal it
    /// locally (preserving the primary's sequence number; duplicates are
    /// verified but not re-appended), then apply the record. Returns
    /// whether the record changed local state.
    pub fn apply_shipped(&self, frame: &Bytes) -> Result<bool, DbError> {
        let _gate = self.write_gate.lock();
        let rec = {
            let mut wal = self.wal.lock();
            match wal.as_mut() {
                Some(w) => {
                    let rec = w.append_frame(frame)?.1;
                    *self.wal_records_journaled.write() += 1;
                    *self.wal_bytes_journaled.write() += frame.len() as u64;
                    rec
                }
                None => {
                    let (_, payload, _) = wal::decode_frame_shared(frame)?;
                    WalRecord::decode_shared(&payload)?
                }
            }
        };
        Ok(self.apply_record(&rec))
    }

    /// Checkpoint: write the whole store (exact versions) to the
    /// snapshot device as ordinary WAL frames, then truncate the log.
    /// `None` when durability is not attached.
    pub fn checkpoint(&self) -> Option<CheckpointStats> {
        let _gate = self.write_gate.lock();
        let mut wal_guard = self.wal.lock();
        let wal = wal_guard.as_mut()?;
        let mut snap_guard = self.snap.lock();
        let snap = snap_guard.as_mut()?;

        let mut objs: Vec<MhegObject> = Vec::new();
        self.objects.for_each(|o| objs.push(o.clone()));
        objs.sort_by_key(|o| o.id);
        let mut media: Vec<MediaObject> = Vec::new();
        self.content.for_each(|m| media.push(m.clone()));
        media.sort_by_key(|m| m.id);
        let records: Vec<WalRecord> = objs
            .into_iter()
            .map(|object| WalRecord::PutObject { object })
            .chain(
                media
                    .into_iter()
                    .map(|media| WalRecord::PutContent { media }),
            )
            .collect();

        let through_seq = wal.next_seq();
        let bytes = snapshot::write_snapshot(through_seq, &records);
        snap.truncate_to(0);
        snap.append(&bytes);
        let truncated_wal_bytes = wal.device_len() as u64;
        wal.truncate();
        *self.checkpoints_taken.write() += 1;
        Some(CheckpointStats {
            records: records.len() as u64,
            snapshot_bytes: bytes.len() as u64,
            truncated_wal_bytes,
            through_seq,
        })
    }

    /// Queue journaled frames for replication (primary role).
    pub fn set_shipping(&self, on: bool) {
        *self.shipping.lock() = on;
    }

    /// Drain the frames awaiting shipment to the replica.
    pub fn take_outbox(&self) -> Vec<Bytes> {
        std::mem::take(&mut *self.outbox.lock())
    }

    /// The next WAL sequence number (0 when no WAL is attached).
    pub fn wal_next_seq(&self) -> u64 {
        self.wal.lock().as_ref().map_or(0, Wal::next_seq)
    }

    /// Bytes currently on the WAL device (0 when no WAL is attached).
    pub fn wal_device_len(&self) -> usize {
        self.wal.lock().as_ref().map_or(0, Wal::device_len)
    }

    /// The server's failover epoch, stamped on every response.
    pub fn epoch(&self) -> u64 {
        *self.epoch.read()
    }

    /// Adopt a failover epoch (promotion, or a restarted server rejoining
    /// above every epoch it may have answered under before the crash).
    pub fn set_epoch(&self, epoch: u64) {
        *self.epoch.write() = epoch;
    }

    /// Snapshot the server's counters into `reg` under `prefix` (e.g.
    /// `db.server0`): requests served/shed, WAL records and bytes
    /// journaled, bytes replayed at the last recovery, checkpoints, the
    /// live WAL device size, and the failover epoch.
    pub fn export_metrics(&self, reg: &mits_sim::MetricsRegistry, prefix: &str) {
        reg.counter_set(
            &format!("{prefix}.requests_served"),
            *self.requests_served.read(),
        );
        reg.counter_set(
            &format!("{prefix}.requests_shed"),
            *self.requests_shed.read(),
        );
        reg.counter_set(
            &format!("{prefix}.wal.records_journaled"),
            *self.wal_records_journaled.read(),
        );
        reg.counter_set(
            &format!("{prefix}.wal.bytes_journaled"),
            *self.wal_bytes_journaled.read(),
        );
        reg.counter_set(
            &format!("{prefix}.wal.bytes_replayed"),
            *self.wal_bytes_replayed.read(),
        );
        reg.counter_set(
            &format!("{prefix}.checkpoints"),
            *self.checkpoints_taken.read(),
        );
        reg.gauge_set(
            &format!("{prefix}.wal.device_bytes"),
            self.wal_device_len() as f64,
        );
        reg.gauge_set(&format!("{prefix}.epoch"), self.epoch() as f64);
    }

    /// Order-independent digest of the visible store state (objects with
    /// exact versions, media with payloads) — what the crash-recovery
    /// tests compare between a recovered server and a crash-free run.
    pub fn state_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(FNV_PRIME);
            }
        }
        let mut objs: Vec<MhegObject> = Vec::new();
        self.objects.for_each(|o| objs.push(o.clone()));
        objs.sort_by_key(|o| o.id);
        let mut media: Vec<MediaObject> = Vec::new();
        self.content.for_each(|m| media.push(m.clone()));
        media.sort_by_key(|m| m.id);
        let mut h = FNV_OFFSET;
        for o in &objs {
            mix(&mut h, &o.id.app.to_be_bytes());
            mix(&mut h, &o.id.num.to_be_bytes());
            mix(&mut h, &o.info.version.to_be_bytes());
            mix(&mut h, &encode_object(o, WireFormat::Tlv));
        }
        for m in &media {
            mix(&mut h, &m.id.0.to_be_bytes());
            mix(&mut h, m.name.as_bytes());
            mix(&mut h, &m.data);
        }
        h
    }
}

/// What [`DbServer::checkpoint`] wrote and reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Records folded into the snapshot.
    pub records: u64,
    /// Snapshot size on its device.
    pub snapshot_bytes: u64,
    /// WAL bytes reclaimed by truncation.
    pub truncated_wal_bytes: u64,
    /// Journal cursor the snapshot covers up to (exclusive).
    pub through_seq: u64,
}

/// What [`DbServer::recover`] read, applied, and discarded. The byte
/// counts drive the simulation's recovery-latency model: a restarted
/// server is busy for `model.cost(replayed_bytes())` before it answers.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Intact records found in the snapshot.
    pub snapshot_records: u64,
    /// Snapshot bytes read.
    pub snapshot_bytes: u64,
    /// Intact records found in the WAL.
    pub wal_records: u64,
    /// WAL bytes read.
    pub wal_bytes: u64,
    /// Records that changed store state.
    pub applied: u64,
    /// Records skipped (already reflected, or folded into the snapshot).
    pub skipped: u64,
    /// A torn/corrupt WAL tail was truncated.
    pub torn_tail: bool,
    /// Human-readable accounts of anything discarded.
    pub warnings: Vec<String>,
    /// The snapshot's journal cursor.
    pub through_seq: u64,
}

impl RecoveryReport {
    /// Total bytes replayed off the devices (the recovery-latency input).
    pub fn replayed_bytes(&self) -> u64 {
        self.snapshot_bytes + self.wal_bytes
    }
}

/// Rough in-store footprint of an object (drives the I/O cost model;
/// exactness is irrelevant, monotonicity matters).
fn approx_object_size(obj: &MhegObject) -> usize {
    use mits_mheg::{ContentData, ObjectBody};
    let base = 128 + obj.info.name.len() + obj.info.keywords.iter().map(String::len).sum::<usize>();
    let body = match &obj.body {
        ObjectBody::Content(c) => match &c.data {
            ContentData::Inline(b) => b.len(),
            _ => 16,
        },
        ObjectBody::Script(s) => s.source.len(),
        _ => 64,
    };
    base + body
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mits_media::{MediaFormat, MediaId, MediaObject, VideoDims};
    use mits_mheg::{ClassLibrary, GenericValue, MhegId, ObjectInfo};

    fn loaded_server() -> (DbServer, MhegId) {
        let mut lib = ClassLibrary::new(1);
        let a = lib.value_content("a", GenericValue::Int(1));
        let scene = lib.composite("scene", vec![a], vec![], vec![]);
        let course = lib.container("ATM Course", vec![scene]);
        let mut objs = lib.into_objects();
        // Tag the course for the keyword index.
        objs.iter_mut()
            .find(|o| o.id == course)
            .expect("course exists")
            .info = ObjectInfo::named("ATM Course").with_keywords(["telecom/atm", "networks"]);
        let server = DbServer::default();
        server.load_objects(objs);
        server.load_media([MediaObject::new(
            MediaId(7),
            "clip.mpg",
            MediaFormat::Mpeg,
            mits_sim::SimDuration::from_secs(5),
            VideoDims::new(320, 240),
            Bytes::from(vec![9u8; 10_000]),
        )]);
        (server, course)
    }

    #[test]
    fn list_and_fetch_doc() {
        let (server, course) = loaded_server();
        let (resp, _) = server.handle(&Request::ListDocs);
        assert_eq!(resp, Response::DocList(vec![(course, "ATM Course".into())]));
        let (resp, _) = server.handle(&Request::GetDoc {
            name: "ATM Course".into(),
        });
        match resp {
            Response::Objects(objs) => assert_eq!(objs.len(), 3, "closure"),
            other => panic!("{other:?}"),
        }
        let (resp, _) = server.handle(&Request::GetDoc {
            name: "missing".into(),
        });
        assert!(matches!(resp, Response::Err(DbError::NotFound(_))));
    }

    #[test]
    fn content_fetch_costs_scale_with_size() {
        let (server, _) = loaded_server();
        let (_, small_cost) = server.handle(&Request::ListDocs);
        let (resp, big_cost) = server.handle(&Request::GetContent { media: MediaId(7) });
        assert!(matches!(resp, Response::Content(m) if m.data.len() == 10_000));
        assert!(big_cost > small_cost, "10 kB fetch costs more than a list");
    }

    #[test]
    fn keyword_queries() {
        let (server, course) = loaded_server();
        let (resp, _) = server.handle(&Request::QueryKeyword {
            keyword: "telecom/atm".into(),
            subtree: false,
        });
        assert_eq!(resp, Response::DocIds(vec![course]));
        let (resp, _) = server.handle(&Request::QueryKeyword {
            keyword: "telecom".into(),
            subtree: true,
        });
        assert_eq!(resp, Response::DocIds(vec![course]));
        let (resp, _) = server.handle(&Request::GetKeywordTree);
        match resp {
            Response::KeywordTree(t) => {
                assert_eq!(t.lookup("networks"), vec![course]);
                assert_eq!(t.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn put_object_indexes_keywords() {
        let server = DbServer::default();
        let mut lib = ClassLibrary::new(9);
        let id = lib.value_content("tagged", GenericValue::Int(1));
        let mut obj = lib.get(id).unwrap().clone();
        obj.info.keywords = vec!["fresh/topic".into()];
        let (resp, _) = server.handle(&Request::PutObject { object: obj });
        assert_eq!(resp, Response::Ack);
        let (resp, _) = server.handle(&Request::QueryKeyword {
            keyword: "fresh/topic".into(),
            subtree: false,
        });
        assert_eq!(resp, Response::DocIds(vec![id]));
    }

    #[test]
    fn unknown_ids_not_found() {
        let (server, _) = loaded_server();
        let (resp, _) = server.handle(&Request::GetObject {
            id: MhegId::new(9, 9),
        });
        assert!(matches!(resp, Response::Err(DbError::NotFound(_))));
        let (resp, _) = server.handle(&Request::GetContent { media: MediaId(99) });
        assert!(matches!(resp, Response::Err(DbError::NotFound(_))));
        let (resp, _) = server.handle(&Request::GetCourseware {
            root: MhegId::new(9, 9),
        });
        assert!(matches!(resp, Response::Err(DbError::NotFound(_))));
    }

    #[test]
    fn service_model_costs() {
        let m = ServiceModel::default();
        assert_eq!(m.cost(0), SimDuration::from_micros(200));
        // 1 MB at 20 ns/B = 20 ms + 200 µs.
        assert_eq!(m.cost(1_000_000), SimDuration::from_micros(200 + 20_000));
    }

    #[test]
    fn overload_threshold_sheds_load() {
        let (server, _) = loaded_server();
        let server = DbServer {
            overload_threshold: Some(4),
            ..server
        };
        // Below the limit: served normally.
        let (resp, _) = server.handle_at_depth(&Request::ListDocs, 3);
        assert!(matches!(resp, Response::DocList(_)));
        // At and past the limit: structured, retryable rejection.
        let (resp, cost) = server.handle_at_depth(&Request::ListDocs, 4);
        match resp {
            Response::Err(e) => assert!(e.is_retryable(), "{e}"),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            cost,
            ServiceModel::default().per_request,
            "rejection is cheap"
        );
        assert_eq!(*server.requests_shed.read(), 1);
        assert_eq!(*server.requests_served.read(), 1);
        // Unconfigured servers never shed.
        let (fresh, _) = loaded_server();
        let (resp, _) = fresh.handle_at_depth(&Request::ListDocs, 1_000_000);
        assert!(matches!(resp, Response::DocList(_)));
    }

    #[test]
    fn request_counter() {
        let (server, _) = loaded_server();
        for _ in 0..5 {
            server.handle(&Request::ListDocs);
        }
        assert_eq!(*server.requests_served.read(), 5);
    }

    // ---------- durability ----------

    use crate::wal::SharedLogDevice;

    fn durable_loaded_server() -> (DbServer, MhegId, SharedLogDevice, SharedLogDevice) {
        let wal_dev = SharedLogDevice::new();
        let snap_dev = SharedLogDevice::new();
        let server = DbServer::default()
            .with_durability(Box::new(wal_dev.clone()), Box::new(snap_dev.clone()));
        let mut lib = ClassLibrary::new(1);
        let a = lib.value_content("a", GenericValue::Int(1));
        let scene = lib.composite("scene", vec![a], vec![], vec![]);
        let course = lib.container("ATM Course", vec![scene]);
        server.load_objects(lib.into_objects());
        server.load_media([MediaObject::new(
            MediaId(7),
            "clip.mpg",
            MediaFormat::Mpeg,
            mits_sim::SimDuration::from_secs(5),
            VideoDims::new(320, 240),
            Bytes::from(vec![9u8; 4_000]),
        )]);
        (server, course, wal_dev, snap_dev)
    }

    #[test]
    fn journal_then_recover_restores_state_and_versions() {
        let (server, course, wal_dev, snap_dev) = durable_loaded_server();
        // Mutate: re-put the course twice so its version climbs.
        let obj = server.objects.get(course).expect("loaded");
        assert_eq!(server.put_object(obj.clone()), 1);
        let obj = server.objects.get(course).expect("loaded");
        assert_eq!(server.put_object(obj.clone()), 2);
        let digest = server.state_digest();

        let (recovered, report) = DbServer::recover(
            ServiceModel::default(),
            None,
            Box::new(SharedLogDevice::with_data(wal_dev.snapshot())),
            Box::new(SharedLogDevice::with_data(snap_dev.snapshot())),
        );
        assert_eq!(recovered.state_digest(), digest);
        assert_eq!(recovered.objects.version_of(course), Some(2));
        assert!(!report.torn_tail);
        assert!(report.replayed_bytes() > 0);
        // The keyword index came back with the objects.
        let (resp, _) = recovered.handle(&Request::GetDoc {
            name: "ATM Course".into(),
        });
        assert!(matches!(resp, Response::Objects(_)));
        // And the recovered journal continues where the old one stopped.
        assert_eq!(recovered.wal_next_seq(), server.wal_next_seq());
    }

    #[test]
    fn checkpoint_truncates_wal_and_recovery_uses_snapshot_plus_tail() {
        let (server, course, wal_dev, snap_dev) = durable_loaded_server();
        let pre_ckpt_wal = server.wal_device_len();
        assert!(pre_ckpt_wal > 0, "loads are journaled");
        let stats = server.checkpoint().expect("durability attached");
        assert_eq!(stats.truncated_wal_bytes as usize, pre_ckpt_wal);
        assert_eq!(server.wal_device_len(), 0, "log truncated");
        // Post-checkpoint mutation lands in the WAL tail only.
        let obj = server.objects.get(course).expect("loaded");
        server.put_object(obj.clone());
        let digest = server.state_digest();

        let (recovered, report) = DbServer::recover(
            ServiceModel::default(),
            None,
            Box::new(SharedLogDevice::with_data(wal_dev.snapshot())),
            Box::new(SharedLogDevice::with_data(snap_dev.snapshot())),
        );
        assert_eq!(recovered.state_digest(), digest);
        assert_eq!(report.through_seq, stats.through_seq);
        assert!(report.snapshot_records > 0);
        assert_eq!(report.wal_records, 1, "only the tail mutation");
    }

    #[test]
    fn torn_wal_tail_recovers_to_last_good_record() {
        let (server, course, wal_dev, snap_dev) = durable_loaded_server();
        let digest_before_last = server.state_digest();
        let obj = server.objects.get(course).expect("loaded");
        server.put_object(obj.clone());
        // Tear the final record: chop bytes off the device.
        let mut data = wal_dev.snapshot();
        data.truncate(data.len() - 3);
        let (recovered, report) = DbServer::recover(
            ServiceModel::default(),
            None,
            Box::new(SharedLogDevice::with_data(data)),
            Box::new(SharedLogDevice::with_data(snap_dev.snapshot())),
        );
        assert!(report.torn_tail);
        assert!(!report.warnings.is_empty());
        assert_eq!(
            recovered.state_digest(),
            digest_before_last,
            "state as of the last intact record"
        );
    }

    #[test]
    fn shipped_frames_replicate_without_double_bumps() {
        let (primary, course, _, _) = durable_loaded_server();
        primary.set_shipping(true);
        let replica = DbServer::default().with_durability(
            Box::new(SharedLogDevice::new()),
            Box::new(SharedLogDevice::new()),
        );
        // The pre-shipping load is not in the outbox; bootstrap the
        // replica by re-applying the primary's journal... here, simply
        // replay the same loads.
        let mut objs: Vec<MhegObject> = Vec::new();
        primary.objects.for_each(|o| objs.push(o.clone()));
        for o in &objs {
            replica.apply_record(&WalRecord::PutObject { object: o.clone() });
        }
        let mut media: Vec<MediaObject> = Vec::new();
        primary.content.for_each(|m| media.push(m.clone()));
        for m in &media {
            replica.apply_record(&WalRecord::PutContent { media: m.clone() });
        }
        // Live mutations ship as frames.
        let obj = primary.objects.get(course).expect("loaded");
        primary.put_object(obj.clone());
        let frames = primary.take_outbox();
        assert_eq!(frames.len(), 1);
        for f in &frames {
            assert!(replica.apply_shipped(f).expect("valid frame"));
        }
        assert_eq!(primary.state_digest(), replica.state_digest());
        // Redelivery (duplicate ship) must not double-bump versions.
        for f in &frames {
            assert!(!replica.apply_shipped(f).expect("valid frame"));
        }
        assert_eq!(primary.state_digest(), replica.state_digest());
        assert_eq!(primary.take_outbox().len(), 0, "outbox drained");
    }

    #[test]
    fn epoch_is_adjustable_and_readable() {
        let (server, _, _, _) = durable_loaded_server();
        assert_eq!(server.epoch(), 0);
        server.set_epoch(3);
        assert_eq!(server.epoch(), 3);
    }
}
