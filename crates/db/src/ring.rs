//! Consistent-hash ring partitioning the courseware store across shards.
//!
//! The store scales out by splitting the OID space (and with it the
//! per-document keyword entries) across N shard groups. Placement uses a
//! classic consistent-hash ring with virtual nodes: every shard owns many
//! points on a 64-bit circle, a key belongs to the shard owning the first
//! point at or after its hash. Two properties matter and both are pinned
//! by `tests/ring_proptest.rs`:
//!
//! * **Balance** — with the default virtual-node count, uniformly random
//!   keys land within ±20% of the even share on every shard.
//! * **Minimal remapping** — removing one shard moves only that shard's
//!   keys; a key owned by a surviving shard keeps its owner, because
//!   deleting ring points never changes any other key's successor.
//!
//! Everything is deterministic: the point set is a pure function of
//! `(shards, vnodes)` — no RNG, no host state — so every session, every
//! client and every test agree on placement byte for byte.

use mits_media::MediaId;
use mits_mheg::MhegId;

/// Virtual nodes per shard. 256 keeps the worst arc within the ±20%
/// balance envelope for every shard count the system deploys (2..=16)
/// while a ring build stays a few-thousand-entry sort.
pub const DEFAULT_VNODES: usize = 256;

/// SplitMix64 finalizer — the same avalanche mix the campus seed
/// derivation uses; good enough that consecutive vnode indices spread
/// uniformly over the circle.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring over `shards` shard indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    shards: usize,
    vnodes: usize,
    /// Sorted (point, shard) pairs — the circle.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// A ring over `shards` shards with [`DEFAULT_VNODES`] virtual nodes
    /// each. A single-shard ring keeps no points: every key trivially
    /// maps to shard 0.
    pub fn new(shards: usize) -> Self {
        Self::with_vnodes(shards, DEFAULT_VNODES)
    }

    /// A ring with an explicit virtual-node count (tests shrink it to
    /// exercise imbalance; production uses the default).
    pub fn with_vnodes(shards: usize, vnodes: usize) -> Self {
        let shards = shards.max(1);
        let mut points = Vec::new();
        if shards > 1 {
            points.reserve(shards * vnodes);
            for shard in 0..shards {
                for v in 0..vnodes {
                    let p = mix64(((shard as u64) << 32) ^ v as u64 ^ 0x5EED_C0DE_0000_0000);
                    points.push((p, shard));
                }
            }
            points.sort_unstable();
        }
        HashRing {
            shards,
            vnodes,
            points,
        }
    }

    /// How many shards the ring spans.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning a raw 64-bit key: the first ring point at or
    /// after `key`, wrapping at the top of the circle.
    pub fn shard_for_key(&self, key: u64) -> usize {
        if self.points.is_empty() {
            return 0;
        }
        let idx = self.points.partition_point(|&(p, _)| p < key);
        let (_, shard) = if idx == self.points.len() {
            self.points[0]
        } else {
            self.points[idx]
        };
        shard
    }

    /// Placement key for an MHEG object id. Documents are partitioned at
    /// the granularity of their *root* OID: a whole closure (objects +
    /// keyword entries) lives on the shard owning the root, so the
    /// server-side closure walk never crosses shards.
    pub fn key_for_object(id: MhegId) -> u64 {
        mix64((id.app as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ id.num)
    }

    /// Placement key for a media object id. Media route by their own id
    /// (the client only knows the `MediaId` at fetch time), independent
    /// of the document that references them.
    pub fn key_for_media(id: MediaId) -> u64 {
        mix64(id.0 ^ 0x4D45_4449_4121_5EED)
    }

    /// The shard owning an object (or document-root) id.
    pub fn shard_for_object(&self, id: MhegId) -> usize {
        self.shard_for_key(Self::key_for_object(id))
    }

    /// The shard owning a media id.
    pub fn shard_for_media(&self, id: MediaId) -> usize {
        self.shard_for_key(Self::key_for_media(id))
    }

    /// The ring with one shard's points deleted — what failout looks
    /// like at the placement layer. Shard indices are preserved (the
    /// survivors keep their ids); only the removed shard's arcs are
    /// absorbed by their successors.
    pub fn without_shard(&self, shard: usize) -> HashRing {
        let mut points = self.points.clone();
        points.retain(|&(_, s)| s != shard);
        HashRing {
            shards: self.shards,
            vnodes: self.vnodes,
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_ring_is_trivial() {
        let r = HashRing::new(1);
        for k in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(r.shard_for_key(k), 0);
        }
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let a = HashRing::new(4);
        let b = HashRing::new(4);
        for i in 0..1000u64 {
            let id = MhegId::new(7, i);
            assert_eq!(a.shard_for_object(id), b.shard_for_object(id));
            assert!(a.shard_for_object(id) < 4);
            assert_eq!(a.shard_for_media(MediaId(i)), b.shard_for_media(MediaId(i)));
        }
    }

    #[test]
    fn wraparound_key_maps_to_first_point() {
        let r = HashRing::new(3);
        // A key beyond the last point wraps to the circle's first point.
        assert_eq!(r.shard_for_key(u64::MAX), r.points[0].1);
    }

    #[test]
    fn every_shard_owns_keys() {
        let r = HashRing::new(8);
        let mut seen = vec![false; 8];
        for i in 0..10_000u64 {
            seen[r.shard_for_key(mix64(i))] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
