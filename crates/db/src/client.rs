//! The client module embedded in the navigator (§5.3.2).
//!
//! "A client module, which is embedded in the navigator program at the
//! courseware user site, to provide APIs for accessing the database."
//! The prototype shipped `Get_List_Doc()` and `Get_Selected_Doc()`; the
//! thesis lists `GetKeywordTree()` and `GetDocByKeyword()` as future
//! work — all four are here, plus the object/content fetches the full
//! courseware service needs and a byte-bounded cache so re-visited
//! objects do not cross the network twice (the reuse half of E-REUSE).
//!
//! The client is transport-agnostic: it emits encoded request frames and
//! consumes encoded response frames; `mits-core` pumps them through the
//! simulated ATM network (or a loopback in tests).

use crate::protocol::{DbError, Envelope, Request, Response};
use bytes::Bytes;
use mits_media::{MediaId, MediaObject};
use mits_mheg::{MhegId, MhegObject};
use std::collections::{HashMap, VecDeque};

/// A byte-bounded object/content cache (FIFO eviction — simple and
/// adequate for session-length reuse).
pub struct ClientCache {
    capacity_bytes: usize,
    used_bytes: usize,
    objects: HashMap<MhegId, MhegObject>,
    content: HashMap<MediaId, MediaObject>,
    order: VecDeque<CacheKey>,
    /// Cache hits (objects + content).
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheKey {
    Obj(MhegId),
    Med(MediaId),
}

impl ClientCache {
    /// A cache bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Self {
        ClientCache {
            capacity_bytes,
            used_bytes: 0,
            objects: HashMap::new(),
            content: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn evict_to(&mut self, target: usize) {
        while self.used_bytes > target {
            let Some(key) = self.order.pop_front() else { break };
            match key {
                CacheKey::Obj(id) => {
                    if self.objects.remove(&id).is_some() {
                        self.used_bytes = self.used_bytes.saturating_sub(OBJ_COST);
                    }
                }
                CacheKey::Med(id) => {
                    if let Some(m) = self.content.remove(&id) {
                        self.used_bytes = self.used_bytes.saturating_sub(m.data.len());
                    }
                }
            }
        }
    }

    /// Insert an object.
    pub fn put_object(&mut self, obj: MhegObject) {
        if self.objects.insert(obj.id, obj.clone()).is_none() {
            self.used_bytes += OBJ_COST;
            self.order.push_back(CacheKey::Obj(obj.id));
        }
        self.evict_to(self.capacity_bytes);
    }

    /// Insert a media object.
    pub fn put_content(&mut self, m: MediaObject) {
        let cost = m.data.len();
        if cost > self.capacity_bytes {
            return; // would evict everything for one oversized item
        }
        if self.content.insert(m.id, m.clone()).is_none() {
            self.used_bytes += cost;
            self.order.push_back(CacheKey::Med(m.id));
        }
        self.evict_to(self.capacity_bytes);
    }

    /// Look up an object, counting hit/miss.
    pub fn get_object(&mut self, id: MhegId) -> Option<MhegObject> {
        match self.objects.get(&id) {
            Some(o) => {
                self.hits += 1;
                Some(o.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up content, counting hit/miss.
    pub fn get_content(&mut self, id: MediaId) -> Option<MediaObject> {
        match self.content.get(&id) {
            Some(m) => {
                self.hits += 1;
                Some(m.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Bytes currently accounted.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }
}

/// Flat accounting cost of a cached scenario object.
const OBJ_COST: usize = 512;

/// A pending request awaiting its response.
#[derive(Debug, Clone, PartialEq)]
pub struct Pending {
    /// Correlation id.
    pub req_id: u64,
    /// The request (kept for retry/diagnostics).
    pub request: Request,
}

/// The navigator-side database client.
pub struct DbClient {
    next_req: u64,
    pending: HashMap<u64, Request>,
    /// Object/content cache.
    pub cache: ClientCache,
    /// Requests that skipped the network thanks to the cache.
    pub network_requests: u64,
}

impl DbClient {
    /// A client with a cache of `cache_bytes`.
    pub fn new(cache_bytes: usize) -> Self {
        DbClient {
            next_req: 1,
            pending: HashMap::new(),
            cache: ClientCache::new(cache_bytes),
            network_requests: 0,
        }
    }

    /// Encode a request frame for the network. Returns `(req_id, frame)`.
    pub fn request(&mut self, req: Request) -> (u64, Bytes) {
        let id = self.next_req;
        self.next_req += 1;
        let frame = req.encode(id);
        self.pending.insert(id, req);
        self.network_requests += 1;
        (id, frame)
    }

    /// Cached-object fetch: returns the object immediately on a cache hit,
    /// or the request frame to transmit.
    pub fn fetch_object(&mut self, id: MhegId) -> Result<MhegObject, (u64, Bytes)> {
        if let Some(o) = self.cache.get_object(id) {
            return Ok(o);
        }
        Err(self.request(Request::GetObject { id }))
    }

    /// Cached-content fetch.
    pub fn fetch_content(&mut self, id: MediaId) -> Result<MediaObject, (u64, Bytes)> {
        if let Some(m) = self.cache.get_content(id) {
            return Ok(m);
        }
        Err(self.request(Request::GetContent { media: id }))
    }

    /// Consume a response frame. Returns the decoded envelope and feeds
    /// the cache; unknown correlation ids are rejected.
    pub fn on_response(&mut self, frame: &[u8]) -> Result<Envelope<Response>, DbError> {
        let env = Response::decode(frame)?;
        if self.pending.remove(&env.req_id).is_none() {
            return Err(DbError::Malformed(format!(
                "unsolicited response id {}",
                env.req_id
            )));
        }
        match &env.body {
            Response::Objects(objs) => {
                for o in objs {
                    self.cache.put_object(o.clone());
                }
            }
            Response::Content(m) => self.cache.put_content(m.clone()),
            _ => {}
        }
        Ok(env)
    }

    /// Requests still awaiting responses.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::DbServer;
    use mits_mheg::{ClassLibrary, GenericValue};

    /// Loopback: hand the frame to a server, return its response frame.
    fn loopback(server: &DbServer, frame: &[u8]) -> Bytes {
        let env = Request::decode(frame).expect("client frames are valid");
        let (resp, _) = server.handle(&env.body);
        resp.encode(env.req_id)
    }

    fn setup() -> (DbServer, MhegId, MhegId) {
        let mut lib = ClassLibrary::new(1);
        let a = lib.value_content("a", GenericValue::Int(1));
        let course = lib.container("Course", vec![a]);
        let server = DbServer::default();
        server.load_objects(lib.into_objects());
        (server, course, a)
    }

    #[test]
    fn request_response_correlation() {
        let (server, course, _) = setup();
        let mut client = DbClient::new(1 << 20);
        let (id1, f1) = client.request(Request::ListDocs);
        let (id2, f2) = client.request(Request::GetCourseware { root: course });
        assert_ne!(id1, id2);
        assert_eq!(client.pending_count(), 2);
        // Respond out of order.
        let r2 = loopback(&server, &f2);
        let r1 = loopback(&server, &f1);
        let env2 = client.on_response(&r2).unwrap();
        assert_eq!(env2.req_id, id2);
        let env1 = client.on_response(&r1).unwrap();
        assert_eq!(env1.req_id, id1);
        assert_eq!(client.pending_count(), 0);
    }

    #[test]
    fn unsolicited_response_rejected() {
        let mut client = DbClient::new(1 << 20);
        let frame = Response::Ack.encode(999);
        assert!(client.on_response(&frame).is_err());
    }

    #[test]
    fn objects_cached_after_fetch() {
        let (server, course, a) = setup();
        let mut client = DbClient::new(1 << 20);
        // First fetch misses → network.
        let err = client.fetch_object(a);
        let (_, frame) = match err {
            Err(x) => x,
            Ok(_) => panic!("cold cache cannot hit"),
        };
        let resp = loopback(&server, &frame);
        client.on_response(&resp).unwrap();
        // Second fetch hits the cache, no frame.
        let hit = client.fetch_object(a).expect("cache hit");
        assert_eq!(hit.id, a);
        assert_eq!(client.cache.hits, 1);
        // Courseware fetch caches the whole closure.
        let (_, frame) = client.request(Request::GetCourseware { root: course });
        let resp = loopback(&server, &frame);
        client.on_response(&resp).unwrap();
        assert!(client.fetch_object(course).is_ok());
    }

    #[test]
    fn cache_eviction_respects_capacity() {
        use bytes::Bytes;
        use mits_media::{MediaFormat, MediaObject, VideoDims};
        use mits_sim::SimDuration;
        let mut cache = ClientCache::new(10_000);
        for i in 0..10u64 {
            cache.put_content(MediaObject::new(
                MediaId(i),
                format!("m{i}"),
                MediaFormat::Gif,
                SimDuration::ZERO,
                VideoDims::new(1, 1),
                Bytes::from(vec![0u8; 3_000]),
            ));
        }
        assert!(cache.used_bytes() <= 10_000, "bounded: {}", cache.used_bytes());
        // Oldest entries evicted.
        assert!(cache.get_content(MediaId(0)).is_none());
        assert!(cache.get_content(MediaId(9)).is_some());
    }

    #[test]
    fn oversized_item_not_cached() {
        use bytes::Bytes;
        use mits_media::{MediaFormat, MediaObject, VideoDims};
        use mits_sim::SimDuration;
        let mut cache = ClientCache::new(1_000);
        cache.put_content(MediaObject::new(
            MediaId(1),
            "big",
            MediaFormat::Mpeg,
            SimDuration::ZERO,
            VideoDims::new(1, 1),
            Bytes::from(vec![0u8; 5_000]),
        ));
        assert_eq!(cache.used_bytes(), 0);
        assert!(cache.get_content(MediaId(1)).is_none());
    }
}
