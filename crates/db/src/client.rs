//! The client module embedded in the navigator (§5.3.2).
//!
//! "A client module, which is embedded in the navigator program at the
//! courseware user site, to provide APIs for accessing the database."
//! The prototype shipped `Get_List_Doc()` and `Get_Selected_Doc()`; the
//! thesis lists `GetKeywordTree()` and `GetDocByKeyword()` as future
//! work — all four are here as the paper-named facade
//! ([`DbClient::get_list_doc`], [`DbClient::get_selected_doc`],
//! [`DbClient::get_keyword_tree`], [`DbClient::get_doc_by_keyword`]),
//! plus the object/content fetches the full courseware service needs and
//! a byte-bounded cache so re-visited objects do not cross the network
//! twice (the reuse half of E-REUSE).
//!
//! The client is transport-agnostic: it emits encoded request frames and
//! consumes encoded response frames; `mits-core` pumps them through the
//! simulated ATM network (or a loopback in tests).
//!
//! ## Deadlines, retries, backoff
//!
//! Over a faulty network (see `mits-atm`'s `FaultPlan`) frames vanish, so
//! every request carries a [`RetryPolicy`]: a per-request **deadline**, a
//! per-attempt **timeout**, and **exponential backoff with deterministic
//! jitter** between re-issues. Requests are idempotent reads keyed by
//! `req_id`, so a re-issue is byte-identical and a late duplicate response
//! is silently ignored rather than treated as a protocol violation. The
//! driver calls [`DbClient::poll`] with the simulation clock; it returns
//! [`ClientAction`]s (resend this frame / this request expired) in sorted
//! `req_id` order so a given seed always replays the same schedule.
//! [`DbClientMetrics`] counts attempts, retries, timeouts and per-operation
//! latency histograms for the experiment tables.

use crate::protocol::{peek_req_id, DbError, Envelope, Request, RequestKind, Response};
use bytes::Bytes;
use mits_media::{MediaId, MediaObject};
use mits_mheg::{MhegId, MhegObject};
use mits_sim::{
    FlightKind, FlightRecorder, Histogram, MetricsRegistry, SimDuration, SimRng, SimTime, SpanId,
    Tracer,
};
use std::collections::{HashMap, VecDeque};

/// A byte-bounded object/content cache (FIFO eviction — simple and
/// adequate for session-length reuse).
pub struct ClientCache {
    capacity_bytes: usize,
    used_bytes: usize,
    objects: HashMap<MhegId, MhegObject>,
    content: HashMap<MediaId, MediaObject>,
    order: VecDeque<CacheKey>,
    /// Cache hits (objects + content).
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheKey {
    Obj(MhegId),
    Med(MediaId),
}

impl ClientCache {
    /// A cache bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Self {
        ClientCache {
            capacity_bytes,
            used_bytes: 0,
            objects: HashMap::new(),
            content: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn evict_to(&mut self, target: usize) {
        while self.used_bytes > target {
            let Some(key) = self.order.pop_front() else {
                break;
            };
            match key {
                CacheKey::Obj(id) => {
                    if self.objects.remove(&id).is_some() {
                        self.used_bytes = self.used_bytes.saturating_sub(OBJ_COST);
                    }
                }
                CacheKey::Med(id) => {
                    if let Some(m) = self.content.remove(&id) {
                        self.used_bytes = self.used_bytes.saturating_sub(m.data.len());
                    }
                }
            }
        }
    }

    /// Insert an object. Presence is checked before anything is cloned:
    /// a hit that delivers identical bytes costs no allocation at all.
    pub fn put_object(&mut self, obj: &MhegObject) {
        match self.objects.get_mut(&obj.id) {
            Some(slot) => {
                if slot != obj {
                    *slot = obj.clone(); // refreshed content for the same id
                }
            }
            None => {
                self.objects.insert(obj.id, obj.clone());
                self.used_bytes += OBJ_COST;
                self.order.push_back(CacheKey::Obj(obj.id));
                self.evict_to(self.capacity_bytes);
            }
        }
    }

    /// Insert a media object. Media is immutable per id, so a hit is a
    /// no-op — the clone happens only on a miss.
    pub fn put_content(&mut self, m: &MediaObject) {
        let cost = m.data.len();
        if cost > self.capacity_bytes {
            return; // would evict everything for one oversized item
        }
        if self.content.contains_key(&m.id) {
            return;
        }
        self.content.insert(m.id, m.clone());
        self.used_bytes += cost;
        self.order.push_back(CacheKey::Med(m.id));
        self.evict_to(self.capacity_bytes);
    }

    /// Look up an object, counting hit/miss.
    pub fn get_object(&mut self, id: MhegId) -> Option<MhegObject> {
        match self.objects.get(&id) {
            Some(o) => {
                self.hits += 1;
                Some(o.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up content, counting hit/miss.
    pub fn get_content(&mut self, id: MediaId) -> Option<MediaObject> {
        match self.content.get(&id) {
            Some(m) => {
                self.hits += 1;
                Some(m.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Bytes currently accounted.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }
}

/// Flat accounting cost of a cached scenario object.
const OBJ_COST: usize = 512;

/// Deadline / retry / backoff parameters for every request a client
/// issues.
///
/// The default is **no retry**: one attempt with effectively-infinite
/// timeouts, which reproduces the pre-fault-injection client byte for
/// byte on a clean network. Lossy experiments opt into
/// [`RetryPolicy::interactive`] or a hand-built policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total budget per request, measured from first issue. When it
    /// elapses the request fails with a timeout.
    pub deadline: SimDuration,
    /// How long one attempt waits for a response before the client
    /// considers the frame (or its response) lost.
    pub attempt_timeout: SimDuration,
    /// Backoff before re-issue n is `min(base << (n-1), cap)`, stretched
    /// by up to `jitter_frac`.
    pub backoff_base: SimDuration,
    /// Upper bound on a single backoff interval.
    pub backoff_cap: SimDuration,
    /// Deterministic jitter: each backoff is multiplied by a factor drawn
    /// uniformly from `[1, 1 + jitter_frac]` on the client's RNG stream.
    pub jitter_frac: f64,
    /// Maximum issues of the same request (1 = no retry).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::no_retry()
    }
}

impl RetryPolicy {
    /// One attempt, hour-scale timeouts — the legacy clean-network
    /// behavior.
    pub fn no_retry() -> Self {
        RetryPolicy {
            deadline: SimDuration::from_secs(3600),
            attempt_timeout: SimDuration::from_secs(3600),
            backoff_base: SimDuration::from_millis(100),
            backoff_cap: SimDuration::from_secs(5),
            jitter_frac: 0.0,
            max_attempts: 1,
        }
    }

    /// A policy tuned for an interactive telelearning session: 10 s
    /// deadline, 500 ms attempts, 100 ms → 2 s backoff with 50% jitter.
    pub fn interactive() -> Self {
        RetryPolicy {
            deadline: SimDuration::from_secs(10),
            attempt_timeout: SimDuration::from_millis(500),
            backoff_base: SimDuration::from_millis(100),
            backoff_cap: SimDuration::from_secs(2),
            jitter_frac: 0.5,
            max_attempts: 8,
        }
    }

    /// Builder: override the deadline.
    pub fn with_deadline(mut self, d: SimDuration) -> Self {
        self.deadline = d;
        self
    }

    /// Builder: override the per-attempt timeout.
    pub fn with_attempt_timeout(mut self, d: SimDuration) -> Self {
        self.attempt_timeout = d;
        self
    }

    /// Builder: override max attempts.
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Builder: override backoff base/cap.
    pub fn with_backoff(mut self, base: SimDuration, cap: SimDuration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Builder: override the jitter fraction.
    pub fn with_jitter_frac(mut self, f: f64) -> Self {
        self.jitter_frac = f.max(0.0);
        self
    }

    /// Raw (unjittered) backoff before issue `attempt + 1`, with
    /// `attempt` the number of issues already made (≥ 1).
    fn backoff(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(20);
        let raw = self.backoff_base.as_micros().saturating_mul(1u64 << shift);
        SimDuration::from_micros(raw.min(self.backoff_cap.as_micros()))
    }
}

/// A request in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Pending {
    /// Correlation id.
    pub req_id: u64,
    /// The request (kept for retry and diagnostics).
    pub request: Request,
    /// Encoded frame — re-issues are byte-identical (idempotent reads).
    pub frame: Bytes,
    /// When the request was first issued.
    pub first_issued: SimTime,
    /// When the latest attempt was issued.
    pub last_issued: SimTime,
    /// Issues so far (≥ 1).
    pub attempts: u32,
    /// Absolute end of the request's budget.
    pub deadline: SimTime,
    /// When the current attempt is considered lost.
    pub attempt_deadline: SimTime,
    /// Set while backing off: the earliest time to re-issue.
    pub retry_at: Option<SimTime>,
    /// Epoch domain the request is fenced against (the shard group it
    /// was routed to; 0 on an unsharded store).
    pub domain: u64,
    /// Attempt number whose stale-epoch response has already been
    /// counted (0 = none): duplicate stale deliveries of one attempt
    /// bump `stale_epoch` once, not once per frame.
    pub stale_attempt: u32,
    /// Raw id of the request span (0 when the client is untraced).
    /// This is the trace context carried on the wire — constant across
    /// re-issues, so retried frames stay byte-identical.
    pub span: u64,
    /// Raw id of the current attempt's span (0 when untraced).
    pub attempt_span: u64,
}

/// What a response frame did to the client's state.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientEvent {
    /// A pending request completed (possibly with a server-side error in
    /// the envelope body).
    Completed {
        /// The decoded response.
        env: Envelope<Response>,
        /// How many times the request was issued.
        attempts: u32,
        /// First issue → completion.
        latency: SimDuration,
    },
    /// A pending request failed terminally (e.g. its response body could
    /// not be decoded, or the server said unavailable and the budget is
    /// spent).
    Failed {
        /// Correlation id of the failed request.
        req_id: u64,
        /// Why.
        error: DbError,
    },
    /// The server shed the request; the client scheduled a backed-off
    /// re-issue — [`DbClient::poll`] will emit the resend.
    RetryScheduled {
        /// Correlation id.
        req_id: u64,
        /// Earliest re-issue time.
        retry_at: SimTime,
    },
    /// The frame matched nothing in flight (late duplicate of a retried
    /// request, or unsolicited noise) and was dropped.
    Ignored,
}

/// Work the event loop must do on behalf of the client.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// Put this frame back on the wire.
    Resend {
        /// Correlation id.
        req_id: u64,
        /// The byte-identical frame to transmit.
        frame: Bytes,
    },
    /// The request ran out of budget; surface the error to the caller.
    Expired {
        /// Correlation id.
        req_id: u64,
        /// The original request, for diagnostics (boxed: requests can
        /// carry whole media objects, resends must stay small).
        request: Box<Request>,
        /// A retryable timeout error.
        error: DbError,
    },
}

/// Counters and latency histograms for everything the client did.
#[derive(Debug, Clone, Default)]
pub struct DbClientMetrics {
    /// Frames put on the wire (first issues + re-issues).
    pub attempts: u64,
    /// Re-issues only.
    pub retries: u64,
    /// Attempts that timed out without any response.
    pub timeouts: u64,
    /// Requests that exhausted their deadline or attempt budget.
    pub expired: u64,
    /// Requests completed with a response (including server errors).
    pub completed: u64,
    /// Frames dropped as unsolicited / late duplicates.
    pub ignored: u64,
    /// Frames rejected because they carried an epoch older than one the
    /// client has already seen (a stale ex-primary answering after
    /// failover).
    pub stale_epoch: u64,
    /// Response frames whose body failed to decode.
    pub decode_errors: u64,
    /// Request bytes issued (including re-issues).
    pub bytes_sent: u64,
    /// Response bytes consumed.
    pub bytes_received: u64,
    latency: HashMap<RequestKind, Histogram>,
}

/// Latency histogram geometry: 0–60 s in 10 ms bins covers everything an
/// interactive session can survive; slower completions land in overflow.
const LATENCY_HI_SECS: f64 = 60.0;
const LATENCY_BINS: usize = 6000;

impl DbClientMetrics {
    fn record_latency(&mut self, kind: RequestKind, latency: SimDuration) {
        self.latency
            .entry(kind)
            .or_insert_with(|| Histogram::new(0.0, LATENCY_HI_SECS, LATENCY_BINS))
            .record(latency.as_secs_f64());
    }

    /// Completion-latency histogram for one operation, if any completed.
    pub fn latency(&self, kind: RequestKind) -> Option<&Histogram> {
        self.latency.get(&kind)
    }

    /// `q`-quantile of completion latency for one operation, in seconds.
    pub fn latency_quantile(&self, kind: RequestKind, q: f64) -> Option<f64> {
        self.latency.get(&kind)?.quantile(q)
    }

    /// `q`-quantile across all operations, in seconds.
    pub fn overall_latency_quantile(&self, q: f64) -> Option<f64> {
        let mut merged: Option<Histogram> = None;
        for h in self.latency.values() {
            match &mut merged {
                Some(m) => m.merge(h),
                None => merged = Some(h.clone()),
            }
        }
        merged.and_then(|m| m.quantile(q))
    }

    /// Whether this client saw anything a trace sampler should always
    /// keep: a retry, a timeout, an expired request, a stale-epoch
    /// rejection (failover aftermath) or a decode error. Clean sessions
    /// return `false` and stay subject to the head-sampling lottery.
    pub fn tail_sample_signal(&self) -> bool {
        self.retries > 0
            || self.timeouts > 0
            || self.expired > 0
            || self.stale_epoch > 0
            || self.decode_errors > 0
    }

    /// Snapshot every counter and latency histogram into `reg` under
    /// `prefix` (e.g. `client0`). Kinds export in [`RequestKind::ALL`]
    /// order, so output is deterministic despite the internal `HashMap`.
    pub fn export_metrics(&self, reg: &MetricsRegistry, prefix: &str) {
        reg.counter_set(&format!("{prefix}.attempts"), self.attempts);
        reg.counter_set(&format!("{prefix}.retries"), self.retries);
        reg.counter_set(&format!("{prefix}.timeouts"), self.timeouts);
        reg.counter_set(&format!("{prefix}.expired"), self.expired);
        reg.counter_set(&format!("{prefix}.completed"), self.completed);
        reg.counter_set(&format!("{prefix}.ignored"), self.ignored);
        reg.counter_set(&format!("{prefix}.stale_epoch"), self.stale_epoch);
        reg.counter_set(&format!("{prefix}.decode_errors"), self.decode_errors);
        reg.counter_set(&format!("{prefix}.bytes_sent"), self.bytes_sent);
        reg.counter_set(&format!("{prefix}.bytes_received"), self.bytes_received);
        for kind in RequestKind::ALL {
            if let Some(h) = self.latency.get(&kind) {
                reg.record_histogram(&format!("{prefix}.latency.{kind}"), h);
            }
        }
    }
}

/// The navigator-side database client.
pub struct DbClient {
    next_req: u64,
    policy: RetryPolicy,
    pending: HashMap<u64, Pending>,
    rng: SimRng,
    /// Highest failover epoch seen in any response. Responses stamped
    /// with a lower epoch come from a deposed primary and are rejected.
    last_epoch: u64,
    /// Per-domain epoch floors. Each shard group promotes independently,
    /// so fencing is per domain: domain d's floor only rejects responses
    /// routed to d. Domain 0 is the whole store when unsharded.
    floors: HashMap<u64, u64>,
    /// Requests whose attempt timed out during the latest [`DbClient::poll`]
    /// call — the failover signal, scoped so the driver can rotate only
    /// the shard groups that actually went quiet.
    timed_out: Vec<u64>,
    /// Object/content cache.
    pub cache: ClientCache,
    /// Requests that went to the network (cache misses + explicit calls).
    pub network_requests: u64,
    /// What the client has done so far.
    pub metrics: DbClientMetrics,
    /// When set, every request opens a span (nested under the tracer's
    /// current context) plus one child span per attempt, and the request
    /// span's id rides the wire as the trace context.
    tracer: Option<Tracer>,
    /// When set, anomalies (retries, attempt timeouts, stale-epoch
    /// fences, epoch-floor raises) are recorded as flight events. The
    /// recorder is always-on in campus sessions: recording only fires
    /// on anomalous paths, so the happy path pays one `Option` check.
    flight: Option<FlightRecorder>,
}

impl DbClient {
    /// A client with a cache of `cache_bytes` and the default (no-retry)
    /// policy.
    pub fn new(cache_bytes: usize) -> Self {
        DbClient::with_policy(cache_bytes, RetryPolicy::default(), 0x0DB_C11E)
    }

    /// A client with an explicit retry policy. `seed` drives backoff
    /// jitter; a fixed seed makes the whole retry schedule reproducible.
    pub fn with_policy(cache_bytes: usize, policy: RetryPolicy, seed: u64) -> Self {
        DbClient {
            next_req: 1,
            policy,
            pending: HashMap::new(),
            rng: SimRng::seed_from_u64(seed),
            last_epoch: 0,
            floors: HashMap::new(),
            timed_out: Vec::new(),
            cache: ClientCache::new(cache_bytes),
            network_requests: 0,
            metrics: DbClientMetrics::default(),
            tracer: None,
            flight: None,
        }
    }

    /// Attach a tracer; subsequent requests emit request/attempt spans
    /// and carry the request span id on the wire.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Attach a flight recorder; subsequent retries, attempt timeouts,
    /// stale-epoch rejections and epoch-floor raises are recorded as
    /// structured flight events (`a` = epoch domain/shard).
    pub fn set_flight_recorder(&mut self, flight: FlightRecorder) {
        self.flight = Some(flight);
    }

    /// The active retry policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Replace the retry policy (applies to requests issued afterwards).
    pub fn set_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Encode and track a request issued at `now`. Returns `(req_id,
    /// frame)`; the caller transmits the frame.
    pub fn request_at(&mut self, req: Request, now: SimTime) -> (u64, Bytes) {
        let id = self.next_req;
        self.next_req += 1;
        let (span, attempt_span) = match &self.tracer {
            Some(tr) => {
                let s = tr.span(&format!("db.request {}", req.kind()), now);
                tr.attr_u64(s, "req_id", id);
                let a = tr.child(s, "attempt 1", now);
                (s.as_u64(), a.as_u64())
            }
            None => (0, 0),
        };
        let frame = req.encode_traced(id, span);
        self.metrics.attempts += 1;
        self.metrics.bytes_sent += frame.len() as u64;
        self.pending.insert(
            id,
            Pending {
                req_id: id,
                request: req,
                frame: frame.clone(),
                first_issued: now,
                last_issued: now,
                attempts: 1,
                deadline: now + self.policy.deadline,
                attempt_deadline: now + self.policy.attempt_timeout,
                retry_at: None,
                domain: 0,
                stale_attempt: 0,
                span,
                attempt_span,
            },
        );
        self.network_requests += 1;
        (id, frame)
    }

    /// Close a pending request's attempt and request spans with an
    /// `outcome` attribute. No-op when untraced.
    fn end_spans(&self, p: &Pending, outcome: &str, now: SimTime) {
        let Some(tr) = &self.tracer else { return };
        if let Some(a) = SpanId::from_wire(p.attempt_span) {
            tr.attr(a, "outcome", outcome);
            tr.end(a, now);
        }
        if let Some(s) = SpanId::from_wire(p.span) {
            tr.attr(s, "outcome", outcome);
            tr.attr_u64(s, "attempts", u64::from(p.attempts));
            tr.end(s, now);
        }
    }

    /// Encode a request frame for the network. Returns `(req_id, frame)`.
    ///
    /// Deprecated shim: issues at `SimTime::ZERO`, so with a finite
    /// policy the deadline is measured from the epoch. Use
    /// [`DbClient::request_at`].
    #[deprecated(note = "use request_at(req, now) so deadlines are anchored to the clock")]
    pub fn request(&mut self, req: Request) -> (u64, Bytes) {
        self.request_at(req, SimTime::ZERO)
    }

    // --- The paper's query facade (§5.3.2) -------------------------------

    /// `Get_List_Doc()`: ask for the catalogue of courseware documents.
    /// Decode the eventual response with [`Response::into_doc_list`].
    pub fn get_list_doc(&mut self, now: SimTime) -> (u64, Bytes) {
        self.request_at(Request::ListDocs, now)
    }

    /// `Get_Selected_Doc(name)`: fetch a document's full object closure
    /// by title. Decode with [`Response::into_objects`].
    pub fn get_selected_doc(&mut self, name: &str, now: SimTime) -> (u64, Bytes) {
        self.request_at(
            Request::GetDoc {
                name: name.to_string(),
            },
            now,
        )
    }

    /// `GetKeywordTree()`: fetch the keyword taxonomy. Decode with
    /// [`Response::into_keyword_tree`].
    pub fn get_keyword_tree(&mut self, now: SimTime) -> (u64, Bytes) {
        self.request_at(Request::GetKeywordTree, now)
    }

    /// `GetDocByKeyword(keyword)`: find documents under a keyword
    /// (subtree match). Decode with [`Response::into_doc_ids`].
    pub fn get_doc_by_keyword(&mut self, keyword: &str, now: SimTime) -> (u64, Bytes) {
        self.request_at(
            Request::QueryKeyword {
                keyword: keyword.to_string(),
                subtree: true,
            },
            now,
        )
    }

    // --- Cache-aware fetches ---------------------------------------------

    /// Cached-object fetch at `now`: returns the object immediately on a
    /// cache hit, or the request frame to transmit.
    pub fn fetch_object_at(
        &mut self,
        id: MhegId,
        now: SimTime,
    ) -> Result<MhegObject, (u64, Bytes)> {
        if let Some(o) = self.cache.get_object(id) {
            return Ok(o);
        }
        Err(self.request_at(Request::GetObject { id }, now))
    }

    /// Cached-content fetch at `now`.
    pub fn fetch_content_at(
        &mut self,
        id: MediaId,
        now: SimTime,
    ) -> Result<MediaObject, (u64, Bytes)> {
        if let Some(m) = self.cache.get_content(id) {
            return Ok(m);
        }
        Err(self.request_at(Request::GetContent { media: id }, now))
    }

    /// Cached-object fetch anchored at the epoch.
    #[deprecated(note = "use fetch_object_at(id, now)")]
    pub fn fetch_object(&mut self, id: MhegId) -> Result<MhegObject, (u64, Bytes)> {
        self.fetch_object_at(id, SimTime::ZERO)
    }

    /// Cached-content fetch anchored at the epoch.
    #[deprecated(note = "use fetch_content_at(id, now)")]
    pub fn fetch_content(&mut self, id: MediaId) -> Result<MediaObject, (u64, Bytes)> {
        self.fetch_content_at(id, SimTime::ZERO)
    }

    // --- Response path ---------------------------------------------------

    /// Consume a response frame received at `now`.
    ///
    /// Completions feed the cache and the latency histograms. A frame
    /// whose body fails to decode still fails its pending request (the
    /// correlation id is readable from the first eight bytes), so the
    /// slot is freed for the caller to retry — it does not leak. Frames
    /// matching nothing in flight are [`ClientEvent::Ignored`]: with
    /// idempotent re-issue a late duplicate of a completed request is
    /// expected traffic, not a protocol violation.
    pub fn on_frame(&mut self, frame: &Bytes, now: SimTime) -> ClientEvent {
        self.metrics.bytes_received += frame.len() as u64;
        let (env, epoch) = match Response::decode_with_epoch_shared(frame) {
            Ok(pair) => pair,
            Err(e) => {
                self.metrics.decode_errors += 1;
                // Correlate by the id prefix so the pending slot is
                // released rather than leaked.
                if let Some(req_id) = peek_req_id(frame) {
                    if let Some(p) = self.pending.remove(&req_id) {
                        self.end_spans(&p, "decode_error", now);
                        return ClientEvent::Failed { req_id, error: e };
                    }
                }
                self.metrics.ignored += 1;
                return ClientEvent::Ignored;
            }
        };
        if !self.pending.contains_key(&env.req_id) {
            self.metrics.ignored += 1;
            return ClientEvent::Ignored;
        }
        // A response from a deposed primary (older failover epoch than
        // one already observed in the request's domain) must not complete
        // the request — the promoted replica's answer is the
        // authoritative one. Keep the request pending; retry/deadline
        // machinery carries on. Fencing is per epoch domain: a promotion
        // on one shard must not reject healthy answers from another.
        let domain = self.pending.get(&env.req_id).map(|p| p.domain).unwrap_or(0);
        let floor = self.floors.get(&domain).copied().unwrap_or(0);
        if epoch < floor {
            // Count the fenced primary once per attempt it answered:
            // byte-identical re-issues can draw several copies of the
            // same stale response, and those duplicates are `ignored`
            // traffic, not additional stale-epoch observations.
            let counted = match self.pending.get_mut(&env.req_id) {
                Some(p) if p.stale_attempt == p.attempts => false,
                Some(p) => {
                    p.stale_attempt = p.attempts;
                    true
                }
                None => true,
            };
            if counted {
                self.metrics.stale_epoch += 1;
                if let Some(fr) = &self.flight {
                    fr.record(now, FlightKind::StaleEpoch, domain, epoch);
                }
            }
            self.metrics.ignored += 1;
            if let Some(tr) = &self.tracer {
                let span = self
                    .pending
                    .get(&env.req_id)
                    .and_then(|p| SpanId::from_wire(p.span));
                tr.event_with(
                    span,
                    "stale_epoch_rejected",
                    now,
                    &[("epoch", epoch.to_string()), ("floor", floor.to_string())],
                );
            }
            return ClientEvent::Ignored;
        }
        if epoch > floor {
            self.floors.insert(domain, epoch);
            // A rising floor is the client-side fence going up: every
            // response below it from here on is from a deposed primary.
            if let Some(fr) = &self.flight {
                fr.record(now, FlightKind::EpochFence, domain, epoch);
            }
        }
        self.last_epoch = self.last_epoch.max(epoch);
        // Server shed the request and the budget allows another go:
        // schedule a backed-off byte-identical re-issue.
        if let Response::Err(e) = &env.body {
            if e.is_retryable() {
                let p = self.pending.get_mut(&env.req_id).expect("checked above");
                if p.attempts < self.policy.max_attempts {
                    let jitter = 1.0 + self.policy.jitter_frac * self.rng.f64();
                    let backoff = self.policy.backoff(p.attempts).mul_f64(jitter);
                    let retry_at = now + backoff;
                    if retry_at < p.deadline {
                        p.retry_at = Some(retry_at);
                        p.attempt_deadline = p.deadline;
                        if let Some(tr) = &self.tracer {
                            if let Some(a) = SpanId::from_wire(p.attempt_span) {
                                tr.attr(a, "outcome", "shed");
                                tr.end(a, now);
                            }
                            tr.event_with(
                                SpanId::from_wire(p.span),
                                "retry_scheduled",
                                now,
                                &[("retry_at_us", retry_at.as_micros().to_string())],
                            );
                        }
                        return ClientEvent::RetryScheduled {
                            req_id: env.req_id,
                            retry_at,
                        };
                    }
                }
            }
        }
        let p = self.pending.remove(&env.req_id).expect("checked above");
        let outcome = match &env.body {
            Response::Err(_) => "server_error",
            _ => "ok",
        };
        self.end_spans(&p, outcome, now);
        match &env.body {
            Response::Objects(objs) => {
                for o in objs {
                    self.cache.put_object(o);
                }
            }
            Response::Content(m) => self.cache.put_content(m),
            _ => {}
        }
        self.metrics.completed += 1;
        let latency = now - p.first_issued;
        self.metrics.record_latency(p.request.kind(), latency);
        ClientEvent::Completed {
            env,
            attempts: p.attempts,
            latency,
        }
    }

    /// Consume a response frame. Returns the decoded envelope and feeds
    /// the cache; unknown correlation ids are rejected.
    ///
    /// Deprecated shim over [`DbClient::on_frame`] anchored at the epoch.
    #[deprecated(note = "use on_frame(frame, now) for deadline/retry-aware handling")]
    pub fn on_response(&mut self, frame: &[u8]) -> Result<Envelope<Response>, DbError> {
        match self.on_frame(&Bytes::copy_from_slice(frame), SimTime::ZERO) {
            ClientEvent::Completed { env, .. } => Ok(env),
            ClientEvent::Failed { error, .. } => Err(error),
            ClientEvent::RetryScheduled { req_id, .. } => Err(DbError::Unavailable(format!(
                "request {req_id} backing off for retry"
            ))),
            ClientEvent::Ignored => Err(DbError::Malformed("unsolicited response".to_string())),
        }
    }

    /// Advance the retry machinery to `now`. Returns resends and
    /// expirations in ascending `req_id` order (deterministic for a
    /// given seed and fault schedule). Call whenever the clock reaches
    /// [`DbClient::next_wakeup`].
    pub fn poll(&mut self, now: SimTime) -> Vec<ClientAction> {
        self.timed_out.clear();
        let mut ids: Vec<u64> = self.pending.keys().copied().collect();
        ids.sort_unstable();
        let mut actions = Vec::new();
        for id in ids {
            let p = self.pending.get_mut(&id).expect("key from map");
            if now >= p.deadline {
                let p = self.pending.remove(&id).expect("key from map");
                self.metrics.expired += 1;
                self.end_spans(&p, "expired", now);
                actions.push(ClientAction::Expired {
                    req_id: id,
                    error: DbError::Unavailable(format!(
                        "deadline exceeded after {} attempt(s)",
                        p.attempts
                    )),
                    request: Box::new(p.request),
                });
                continue;
            }
            if let Some(retry_at) = p.retry_at {
                if now >= retry_at {
                    p.retry_at = None;
                    p.attempts += 1;
                    p.last_issued = now;
                    p.attempt_deadline = now + self.policy.attempt_timeout;
                    self.metrics.attempts += 1;
                    self.metrics.retries += 1;
                    self.metrics.bytes_sent += p.frame.len() as u64;
                    if let Some(fr) = &self.flight {
                        fr.record(now, FlightKind::Retry, p.domain, u64::from(p.attempts));
                    }
                    if let Some(tr) = &self.tracer {
                        if let Some(s) = SpanId::from_wire(p.span) {
                            let a = tr.child(s, &format!("attempt {}", p.attempts), now);
                            p.attempt_span = a.as_u64();
                        }
                    }
                    actions.push(ClientAction::Resend {
                        req_id: id,
                        frame: p.frame.clone(),
                    });
                }
                continue;
            }
            if now >= p.attempt_deadline {
                self.metrics.timeouts += 1;
                self.timed_out.push(id);
                if let Some(fr) = &self.flight {
                    fr.record(now, FlightKind::Timeout, p.domain, u64::from(p.attempts));
                }
                if let Some(tr) = &self.tracer {
                    if let Some(a) = SpanId::from_wire(p.attempt_span) {
                        tr.attr(a, "outcome", "timeout");
                        tr.end(a, now);
                        p.attempt_span = 0;
                    }
                }
                if p.attempts < self.policy.max_attempts {
                    let jitter = 1.0 + self.policy.jitter_frac * self.rng.f64();
                    let backoff = self.policy.backoff(p.attempts).mul_f64(jitter);
                    let retry_at = now + backoff;
                    if retry_at < p.deadline {
                        p.retry_at = Some(retry_at);
                        continue;
                    }
                }
                let p = self.pending.remove(&id).expect("key from map");
                self.metrics.expired += 1;
                self.end_spans(&p, "expired", now);
                actions.push(ClientAction::Expired {
                    req_id: id,
                    error: DbError::Unavailable(format!(
                        "no response after {} attempt(s)",
                        p.attempts
                    )),
                    request: Box::new(p.request),
                });
            }
        }
        actions
    }

    /// The earliest time at which [`DbClient::poll`] has work to do, if
    /// anything is in flight. Event loops fold this into their timer set.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.pending
            .values()
            .map(|p| p.retry_at.unwrap_or(p.attempt_deadline).min(p.deadline))
            .min()
    }

    /// Highest failover epoch the client has observed in responses.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Highest failover epoch observed in `domain` (a shard group; 0 on
    /// an unsharded store).
    pub fn epoch_floor(&self, domain: u64) -> u64 {
        self.floors.get(&domain).copied().unwrap_or(0)
    }

    /// Tag an in-flight request with the epoch domain it was routed to,
    /// so stale-epoch fencing compares against that shard's floor.
    pub fn set_request_domain(&mut self, req_id: u64, domain: u64) {
        if let Some(p) = self.pending.get_mut(&req_id) {
            p.domain = domain;
        }
    }

    /// Requests whose attempt timed out during the latest
    /// [`DbClient::poll`] call, in ascending `req_id` order — the
    /// failover trigger, scoped to the requests (and hence shards) that
    /// actually went quiet.
    pub fn timed_out(&self) -> &[u64] {
        &self.timed_out
    }

    /// Requests still awaiting responses.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Snapshot of one in-flight request.
    pub fn pending(&self, req_id: u64) -> Option<&Pending> {
        self.pending.get(&req_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::DbServer;
    use mits_mheg::{ClassLibrary, GenericValue};

    /// Loopback: hand the frame to a server, return its response frame.
    fn loopback(server: &DbServer, frame: &[u8]) -> Bytes {
        let env = Request::decode(frame).expect("client frames are valid");
        let (resp, _) = server.handle(&env.body);
        resp.encode(env.req_id)
    }

    fn setup() -> (DbServer, MhegId, MhegId) {
        let mut lib = ClassLibrary::new(1);
        let a = lib.value_content("a", GenericValue::Int(1));
        let course = lib.container("Course", vec![a]);
        let server = DbServer::default();
        server.load_objects(lib.into_objects());
        (server, course, a)
    }

    #[test]
    fn request_response_correlation() {
        let (server, course, _) = setup();
        let mut client = DbClient::new(1 << 20);
        let t = SimTime::ZERO;
        let (id1, f1) = client.get_list_doc(t);
        let (id2, f2) = client.request_at(Request::GetCourseware { root: course }, t);
        assert_ne!(id1, id2);
        assert_eq!(client.pending_count(), 2);
        // Respond out of order.
        let r2 = loopback(&server, &f2);
        let r1 = loopback(&server, &f1);
        match client.on_frame(&r2, t) {
            ClientEvent::Completed { env, attempts, .. } => {
                assert_eq!(env.req_id, id2);
                assert_eq!(attempts, 1);
            }
            other => panic!("{other:?}"),
        }
        match client.on_frame(&r1, t) {
            ClientEvent::Completed { env, .. } => assert_eq!(env.req_id, id1),
            other => panic!("{other:?}"),
        }
        assert_eq!(client.pending_count(), 0);
        assert_eq!(client.metrics.completed, 2);
    }

    #[test]
    fn unsolicited_response_ignored() {
        let mut client = DbClient::new(1 << 20);
        let frame = Response::Ack.encode(999);
        assert_eq!(client.on_frame(&frame, SimTime::ZERO), ClientEvent::Ignored);
        assert_eq!(client.metrics.ignored, 1);
        #[allow(deprecated)]
        let legacy = client.on_response(&frame);
        assert!(legacy.is_err());
    }

    #[test]
    fn decode_error_frees_the_pending_slot() {
        let (_, course, _) = setup();
        let mut client = DbClient::new(1 << 20);
        let (id, _) = client.request_at(Request::GetCourseware { root: course }, SimTime::ZERO);
        assert_eq!(client.pending_count(), 1);
        // A frame carrying the right correlation id but a mangled body.
        let mut bad = id.to_be_bytes().to_vec();
        bad.push(200); // unknown response tag
        match client.on_frame(&Bytes::from(bad), SimTime::ZERO) {
            ClientEvent::Failed { req_id, error } => {
                assert_eq!(req_id, id);
                assert!(matches!(error, DbError::Malformed(_)));
            }
            other => panic!("{other:?}"),
        }
        // The slot is free: the caller can re-issue instead of leaking.
        assert_eq!(client.pending_count(), 0);
        assert_eq!(client.metrics.decode_errors, 1);
    }

    #[test]
    fn objects_cached_after_fetch() {
        let (server, course, a) = setup();
        let mut client = DbClient::new(1 << 20);
        let t = SimTime::ZERO;
        // First fetch misses → network.
        let err = client.fetch_object_at(a, t);
        let (_, frame) = match err {
            Err(x) => x,
            Ok(_) => panic!("cold cache cannot hit"),
        };
        let resp = loopback(&server, &frame);
        client.on_frame(&resp, t);
        // Second fetch hits the cache, no frame.
        let hit = client.fetch_object_at(a, t).expect("cache hit");
        assert_eq!(hit.id, a);
        assert_eq!(client.cache.hits, 1);
        // Courseware fetch caches the whole closure.
        let (_, frame) = client.request_at(Request::GetCourseware { root: course }, t);
        let resp = loopback(&server, &frame);
        client.on_frame(&resp, t);
        assert!(client.fetch_object_at(course, t).is_ok());
    }

    #[test]
    fn timeout_then_retry_then_success_is_deterministic() {
        let (server, _, a) = setup();
        let policy = RetryPolicy::interactive().with_jitter_frac(0.0);
        let mut client = DbClient::with_policy(1 << 20, policy, 42);
        let t0 = SimTime::ZERO;
        let (id, frame) = client.request_at(Request::GetObject { id: a }, t0);
        // Attempt 1 is lost; nothing happens until the 500 ms attempt
        // timeout.
        assert_eq!(client.poll(SimTime::from_millis(499)), vec![]);
        assert_eq!(client.next_wakeup(), Some(SimTime::from_millis(500)));
        // Attempt times out → 100 ms backoff scheduled, no action yet.
        assert_eq!(client.poll(SimTime::from_millis(500)), vec![]);
        assert_eq!(client.metrics.timeouts, 1);
        assert_eq!(client.next_wakeup(), Some(SimTime::from_millis(600)));
        // Backoff elapses → byte-identical resend.
        let actions = client.poll(SimTime::from_millis(600));
        match &actions[..] {
            [ClientAction::Resend { req_id, frame: f }] => {
                assert_eq!(*req_id, id);
                assert_eq!(f, &frame, "re-issue is byte-identical");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(client.metrics.retries, 1);
        // The retry reaches the server; the response completes the request.
        let resp = loopback(&server, &frame);
        match client.on_frame(&resp, SimTime::from_millis(620)) {
            ClientEvent::Completed {
                attempts, latency, ..
            } => {
                assert_eq!(attempts, 2);
                assert_eq!(latency, SimDuration::from_millis(620));
            }
            other => panic!("{other:?}"),
        }
        // And a late duplicate of attempt 1 is quietly dropped.
        assert_eq!(
            client.on_frame(&resp, SimTime::from_millis(650)),
            ClientEvent::Ignored
        );
        // Latency landed in the GetObject histogram.
        let p50 = client
            .metrics
            .latency_quantile(RequestKind::GetObject, 0.5)
            .expect("one sample");
        assert!((p50 - 0.62).abs() < 0.02, "p50 ≈ 620 ms, got {p50}");
    }

    #[test]
    fn traced_retry_opens_one_span_per_attempt() {
        use mits_sim::Tracer;
        let (server, _, a) = setup();
        let policy = RetryPolicy::interactive().with_jitter_frac(0.0);
        let mut client = DbClient::with_policy(1 << 20, policy, 42);
        let tr = Tracer::new();
        client.set_tracer(tr.clone());
        let (id, frame) = client.request_at(Request::GetObject { id: a }, SimTime::ZERO);
        // The frame carries the request span as its trace context.
        let span = client.pending(id).unwrap().span;
        assert_ne!(span, 0);
        assert_eq!(Request::decode(&frame).unwrap().trace, span);
        // Attempt 1 times out, attempt 2 resends — and is byte-identical.
        client.poll(SimTime::from_millis(500));
        let actions = client.poll(SimTime::from_millis(600));
        match &actions[..] {
            [ClientAction::Resend { frame: f, .. }] => {
                assert_eq!(f, &frame, "traced re-issue is byte-identical");
            }
            other => panic!("{other:?}"),
        }
        let resp = loopback(&server, &frame);
        client.on_frame(&resp, SimTime::from_millis(620));
        let spans = tr.spans();
        let req = &spans[span as usize - 1];
        assert_eq!(req.name, "db.request get_object");
        assert_eq!(req.end, Some(SimTime::from_millis(620)));
        let attempts: Vec<_> = spans.iter().filter(|s| s.parent == Some(req.id)).collect();
        assert_eq!(attempts.len(), 2, "one child span per attempt");
        assert_eq!(attempts[0].name, "attempt 1");
        assert_eq!(attempts[0].end, Some(SimTime::from_millis(500)));
        assert_eq!(attempts[1].name, "attempt 2");
        assert_eq!(attempts[1].start, SimTime::from_millis(600));
        assert_eq!(attempts[1].end, Some(SimTime::from_millis(620)));
    }

    #[test]
    fn deadline_expires_requests() {
        let policy = RetryPolicy::interactive()
            .with_jitter_frac(0.0)
            .with_deadline(SimDuration::from_secs(2));
        let mut client = DbClient::with_policy(1 << 20, policy, 7);
        let (id, _) = client.get_keyword_tree(SimTime::ZERO);
        // Never answer; walk the clock past the deadline.
        let mut expired = None;
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(3) {
            t += SimDuration::from_millis(50);
            for a in client.poll(t) {
                if let ClientAction::Expired { req_id, error, .. } = a {
                    expired = Some((req_id, error, t));
                }
            }
        }
        let (req_id, error, at) = expired.expect("request must expire");
        assert_eq!(req_id, id);
        assert!(
            error.is_retryable(),
            "timeout errors are retryable: {error}"
        );
        // The client fails fast once the next retry cannot land inside
        // the budget, so expiry happens at or before the deadline (plus
        // one 50 ms poll step) — never after.
        assert!(at <= SimTime::from_secs(2) + SimDuration::from_millis(50));
        assert!(at >= SimTime::from_secs(1), "but only after real attempts");
        assert_eq!(client.pending_count(), 0);
        assert_eq!(client.metrics.expired, 1);
        assert!(client.metrics.retries >= 2, "it kept trying first");
    }

    #[test]
    fn unavailable_response_triggers_backoff() {
        let policy = RetryPolicy::interactive().with_jitter_frac(0.0);
        let mut client = DbClient::with_policy(1 << 20, policy, 3);
        let (id, _) = client.get_list_doc(SimTime::ZERO);
        let shed = Response::Err(DbError::Unavailable("queue full".into())).encode(id);
        match client.on_frame(&shed, SimTime::from_millis(10)) {
            ClientEvent::RetryScheduled { req_id, retry_at } => {
                assert_eq!(req_id, id);
                assert_eq!(
                    retry_at,
                    SimTime::from_millis(110),
                    "10 ms + 100 ms backoff"
                );
            }
            other => panic!("{other:?}"),
        }
        // Still pending; the resend fires once the backoff elapses.
        assert_eq!(client.pending_count(), 1);
        let actions = client.poll(SimTime::from_millis(110));
        assert!(matches!(&actions[..], [ClientAction::Resend { req_id, .. }] if *req_id == id));
        // Second shed, second (doubled) backoff.
        match client.on_frame(&shed, SimTime::from_millis(120)) {
            ClientEvent::RetryScheduled { retry_at, .. } => {
                assert_eq!(retry_at, SimTime::from_millis(320), "exponential: 200 ms");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_retry_policy_exhausts_immediately_on_shed() {
        // With max_attempts = 1 an Unavailable response is terminal.
        let mut client = DbClient::new(1 << 20);
        let (id, _) = client.get_list_doc(SimTime::ZERO);
        let shed = Response::Err(DbError::Unavailable("queue full".into())).encode(id);
        match client.on_frame(&shed, SimTime::from_millis(1)) {
            ClientEvent::Completed { env, .. } => {
                assert!(matches!(env.body, Response::Err(DbError::Unavailable(_))));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(client.pending_count(), 0);
    }

    #[test]
    fn stale_epoch_responses_are_rejected_but_request_survives() {
        let (server, _, a) = setup();
        let mut client = DbClient::new(1 << 20);
        let t = SimTime::ZERO;
        // A completed request under epoch 2 raises the client's floor.
        let (id1, f1) = client.request_at(Request::GetObject { id: a }, t);
        let env = Request::decode(&f1).unwrap();
        let (resp, _) = server.handle(&env.body);
        match client.on_frame(&resp.encode_with_epoch(id1, 2), t) {
            ClientEvent::Completed { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(client.last_epoch(), 2);
        // A deposed primary (epoch 1) answers the next request: rejected,
        // and the request stays pending for the promoted server.
        let (id2, f2) = client.request_at(Request::GetObject { id: a }, t);
        let env = Request::decode(&f2).unwrap();
        let (resp, _) = server.handle(&env.body);
        assert_eq!(
            client.on_frame(&resp.encode_with_epoch(id2, 1), t),
            ClientEvent::Ignored
        );
        assert_eq!(client.metrics.stale_epoch, 1);
        assert_eq!(client.pending_count(), 1, "request still in flight");
        // The promoted replica (epoch 3) completes it.
        match client.on_frame(&resp.encode_with_epoch(id2, 3), t) {
            ClientEvent::Completed { env, .. } => assert_eq!(env.req_id, id2),
            other => panic!("{other:?}"),
        }
        assert_eq!(client.last_epoch(), 3);
        assert_eq!(client.pending_count(), 0);
    }

    #[test]
    fn stale_epoch_counts_once_per_response_not_per_duplicate() {
        let (server, _, a) = setup();
        let policy = RetryPolicy::interactive().with_jitter_frac(0.0);
        let mut client = DbClient::with_policy(1 << 20, policy, 11);
        let t = SimTime::ZERO;
        // Raise the floor to 2 with a clean completion.
        let (id1, f1) = client.request_at(Request::GetObject { id: a }, t);
        let env = Request::decode(&f1).unwrap();
        let (resp, _) = server.handle(&env.body);
        client.on_frame(&resp.encode_with_epoch(id1, 2), t);
        // The next request draws a stale answer (epoch 1) — and the
        // transport delivers it twice (byte-identical re-issue traffic).
        let (id2, f2) = client.request_at(Request::GetObject { id: a }, t);
        let env = Request::decode(&f2).unwrap();
        let (resp, _) = server.handle(&env.body);
        let stale = resp.encode_with_epoch(id2, 1);
        assert_eq!(client.on_frame(&stale, t), ClientEvent::Ignored);
        assert_eq!(client.on_frame(&stale, t), ClientEvent::Ignored);
        assert_eq!(
            client.metrics.stale_epoch, 1,
            "duplicate stale delivery of one attempt counts once"
        );
        assert_eq!(client.metrics.ignored, 2, "but both frames were dropped");
        // After a retry (a new attempt) the fenced primary answering
        // again is a fresh observation.
        client.poll(SimTime::from_millis(500)); // attempt 1 times out
        client.poll(SimTime::from_millis(600)); // backoff elapses → attempt 2
        assert_eq!(client.metrics.retries, 1);
        assert_eq!(
            client.on_frame(&stale, SimTime::from_millis(610)),
            ClientEvent::Ignored
        );
        assert_eq!(
            client.metrics.stale_epoch, 2,
            "one count per attempt answered"
        );
        // The promoted replica still completes the request.
        match client.on_frame(&resp.encode_with_epoch(id2, 3), SimTime::from_millis(620)) {
            ClientEvent::Completed { env, .. } => assert_eq!(env.req_id, id2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn epoch_floors_are_per_domain() {
        let (server, _, a) = setup();
        let mut client = DbClient::new(1 << 20);
        let t = SimTime::ZERO;
        // Shard 1 promotes to epoch 5.
        let (id1, f1) = client.request_at(Request::GetObject { id: a }, t);
        client.set_request_domain(id1, 1);
        let env = Request::decode(&f1).unwrap();
        let (resp, _) = server.handle(&env.body);
        client.on_frame(&resp.encode_with_epoch(id1, 5), t);
        assert_eq!(client.epoch_floor(1), 5);
        assert_eq!(client.epoch_floor(0), 0);
        // Shard 0 still answers at epoch 0 — healthy, must complete.
        let (id2, f2) = client.request_at(Request::GetObject { id: a }, t);
        client.set_request_domain(id2, 0);
        let env = Request::decode(&f2).unwrap();
        let (resp, _) = server.handle(&env.body);
        match client.on_frame(&resp.encode_with_epoch(id2, 0), t) {
            ClientEvent::Completed { env, .. } => assert_eq!(env.req_id, id2),
            other => panic!("another shard's promotion must not fence shard 0: {other:?}"),
        }
        assert_eq!(client.metrics.stale_epoch, 0);
        // But shard 1's fenced primary (epoch 4 < 5) is rejected.
        let (id3, f3) = client.request_at(Request::GetObject { id: a }, t);
        client.set_request_domain(id3, 1);
        let env = Request::decode(&f3).unwrap();
        let (resp, _) = server.handle(&env.body);
        assert_eq!(
            client.on_frame(&resp.encode_with_epoch(id3, 4), t),
            ClientEvent::Ignored
        );
        assert_eq!(client.metrics.stale_epoch, 1);
    }

    #[test]
    fn poll_reports_timed_out_requests() {
        let policy = RetryPolicy::interactive().with_jitter_frac(0.0);
        let mut client = DbClient::with_policy(1 << 20, policy, 9);
        let (id, _) = client.get_list_doc(SimTime::ZERO);
        assert!(client.timed_out().is_empty());
        client.poll(SimTime::from_millis(500));
        assert_eq!(client.timed_out(), &[id], "attempt timeout recorded");
        // The next poll (backoff elapse → resend) is not a timeout.
        client.poll(SimTime::from_millis(600));
        assert!(client.timed_out().is_empty());
    }

    #[test]
    fn cache_eviction_respects_capacity() {
        use bytes::Bytes;
        use mits_media::{MediaFormat, MediaObject, VideoDims};
        use mits_sim::SimDuration;
        let mut cache = ClientCache::new(10_000);
        for i in 0..10u64 {
            cache.put_content(&MediaObject::new(
                MediaId(i),
                format!("m{i}"),
                MediaFormat::Gif,
                SimDuration::ZERO,
                VideoDims::new(1, 1),
                Bytes::from(vec![0u8; 3_000]),
            ));
        }
        assert!(
            cache.used_bytes() <= 10_000,
            "bounded: {}",
            cache.used_bytes()
        );
        // Oldest entries evicted.
        assert!(cache.get_content(MediaId(0)).is_none());
        assert!(cache.get_content(MediaId(9)).is_some());
    }

    #[test]
    fn oversized_item_not_cached() {
        use bytes::Bytes;
        use mits_media::{MediaFormat, MediaObject, VideoDims};
        use mits_sim::SimDuration;
        let mut cache = ClientCache::new(1_000);
        cache.put_content(&MediaObject::new(
            MediaId(1),
            "big",
            MediaFormat::Mpeg,
            SimDuration::ZERO,
            VideoDims::new(1, 1),
            Bytes::from(vec![0u8; 5_000]),
        ));
        assert_eq!(cache.used_bytes(), 0);
        assert!(cache.get_content(MediaId(1)).is_none());
    }
}
