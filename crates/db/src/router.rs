//! Shard routing and the campus-edge cache tier.
//!
//! [`ShardRouter`] decides, per request, which shard group a frame goes
//! to: single-key requests (object/courseware/content gets, puts) route
//! by ring position; catalogue queries (`ListDocs`, `GetKeywordTree`,
//! `QueryKeyword`) and by-name lookups touch every shard and are
//! scatter/gathered by the caller with the merge helpers here. A missing
//! shard degrades the merged result — it never blocks it.
//!
//! [`EdgeCache`] is the campus-edge tier in front of the ring: media
//! content filled from origin responses, stamped with the response's
//! failover epoch. The monotonic epochs that fence stale primaries
//! (PR 2) double as the invalidation primitive — once a shard is
//! observed at a higher epoch, every entry filled under an older one is
//! evicted on access instead of served, because a deposed primary may
//! have answered with writes the promoted replica never saw.

use crate::protocol::Request;
use crate::ring::HashRing;
use mits_media::{MediaId, MediaObject};
use mits_mheg::{MhegId, MhegObject};
use mits_sim::{FlightKind, FlightRecorder, SimTime};
use std::collections::{HashMap, VecDeque};

/// Where a request must go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Exactly one shard owns the key.
    Shard(usize),
    /// Every shard must be consulted and the results merged.
    Scatter,
}

/// Routes requests over a [`HashRing`].
#[derive(Debug, Clone)]
pub struct ShardRouter {
    ring: HashRing,
}

impl ShardRouter {
    /// A router over `shards` shard groups.
    pub fn new(shards: usize) -> Self {
        ShardRouter {
            ring: HashRing::new(shards),
        }
    }

    /// How many shards the router spans.
    pub fn shards(&self) -> usize {
        self.ring.shards()
    }

    /// The underlying ring (placement decisions for loaders).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The shard owning an object (or document-root) id.
    pub fn shard_for_object(&self, id: MhegId) -> usize {
        self.ring.shard_for_object(id)
    }

    /// The shard owning a media id.
    pub fn shard_for_media(&self, id: MediaId) -> usize {
        self.ring.shard_for_media(id)
    }

    /// Route one request by ring position. `GetDoc` (by name) and
    /// `GetObject` scatter: a document's closure lives with its *root*
    /// OID, which a name or member id alone does not reveal.
    pub fn route(&self, req: &Request) -> Route {
        if self.shards() <= 1 {
            return Route::Shard(0);
        }
        match req {
            Request::GetCourseware { root } => Route::Shard(self.shard_for_object(*root)),
            Request::GetContent { media } => Route::Shard(self.shard_for_media(*media)),
            Request::PutContent { media } => Route::Shard(self.shard_for_media(media.id)),
            Request::ListDocs
            | Request::GetKeywordTree
            | Request::QueryKeyword { .. }
            | Request::GetDoc { .. }
            | Request::GetObject { .. } => Route::Scatter,
            // Object puts route by their own id; whole-document
            // publishing goes through the root-routed facade instead.
            Request::PutObject { object } => Route::Shard(self.shard_for_object(object.id)),
        }
    }
}

/// Merge scatter/gathered document lists: concatenate and order by id so
/// the result is independent of shard arrival order.
pub fn merge_doc_lists(parts: Vec<Vec<(MhegId, String)>>) -> Vec<(MhegId, String)> {
    let mut out: Vec<(MhegId, String)> = parts.into_iter().flatten().collect();
    out.sort();
    out.dedup();
    out
}

/// Merge scatter/gathered keyword-query results into one sorted,
/// deduplicated id list.
pub fn merge_doc_ids(parts: Vec<Vec<MhegId>>) -> Vec<MhegId> {
    let mut out: Vec<MhegId> = parts.into_iter().flatten().collect();
    out.sort();
    out.dedup();
    out
}

/// Pick the winning closure from a scattered by-name / by-id lookup:
/// the first shard that returned objects.
pub fn first_objects(parts: Vec<Vec<MhegObject>>) -> Option<Vec<MhegObject>> {
    parts.into_iter().find(|p| !p.is_empty())
}

/// One cached media object, stamped with the shard and failover epoch it
/// was filled under.
#[derive(Debug, Clone)]
struct EdgeEntry {
    shard: usize,
    epoch: u64,
    media: MediaObject,
}

/// Fixed per-entry bookkeeping cost added to the payload size.
const EDGE_ENTRY_COST: usize = 512;

/// The campus-edge cache: byte-bounded FIFO over media content, with
/// per-shard epoch floors for fencing. All counters are simulated
/// quantities — deterministic under seed.
#[derive(Debug, Clone)]
pub struct EdgeCache {
    capacity: usize,
    used: usize,
    entries: HashMap<MediaId, EdgeEntry>,
    order: VecDeque<MediaId>,
    /// Highest epoch observed per shard; entries below their shard's
    /// floor are fenced.
    floors: Vec<u64>,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that found a fenced (stale-epoch) entry: evicted, never
    /// served.
    pub invalidations: u64,
    /// Fills accepted into the cache.
    pub inserts: u64,
    /// Requests the cache forwarded to the origin shards.
    pub origin_requests: u64,
    /// When set, fence raises and fenced-entry evictions are recorded
    /// as flight events (`a` = shard, `b` = epoch).
    flight: Option<FlightRecorder>,
}

impl EdgeCache {
    /// An edge cache bounded to `capacity` bytes in front of `shards`
    /// shard groups.
    pub fn new(capacity: usize, shards: usize) -> Self {
        EdgeCache {
            capacity,
            used: 0,
            entries: HashMap::new(),
            order: VecDeque::new(),
            floors: vec![0; shards.max(1)],
            hits: 0,
            misses: 0,
            invalidations: 0,
            inserts: 0,
            origin_requests: 0,
            flight: None,
        }
    }

    /// Attach a flight recorder; epoch-fence raises and fenced-entry
    /// invalidations become structured flight events.
    pub fn set_flight_recorder(&mut self, flight: FlightRecorder) {
        self.flight = Some(flight);
    }

    fn cost(media: &MediaObject) -> usize {
        media.data.len() + EDGE_ENTRY_COST
    }

    /// Total lookups, however they resolved.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.invalidations
    }

    /// Current epoch floor for a shard.
    pub fn floor(&self, shard: usize) -> u64 {
        self.floors.get(shard).copied().unwrap_or(0)
    }

    /// Advance a shard's epoch floor at virtual instant `now`. Raising
    /// the floor fences every entry filled under an older epoch: the
    /// next lookup evicts it.
    pub fn observe_epoch(&mut self, shard: usize, epoch: u64, now: SimTime) {
        if let Some(f) = self.floors.get_mut(shard) {
            if epoch > *f {
                *f = epoch;
                if let Some(fr) = &self.flight {
                    fr.record(now, FlightKind::EpochFence, shard as u64, epoch);
                }
            }
        }
    }

    /// Look up a media object at virtual instant `now`. A fenced entry
    /// (filled under an epoch below its shard's floor) is evicted and
    /// counted as an invalidation — the caller must refetch from
    /// origin, exactly as on a miss.
    pub fn get(&mut self, id: MediaId, now: SimTime) -> Option<MediaObject> {
        match self.entries.get(&id) {
            None => {
                self.misses += 1;
                None
            }
            Some(e) if e.epoch < self.floor(e.shard) => {
                self.invalidations += 1;
                if let Some(fr) = &self.flight {
                    fr.record(now, FlightKind::EdgeInvalidation, e.shard as u64, e.epoch);
                }
                self.remove(id);
                None
            }
            Some(e) => {
                self.hits += 1;
                Some(e.media.clone())
            }
        }
    }

    /// Record that a lookup is going to origin (a miss or invalidation
    /// being refilled). Kept separate from [`EdgeCache::get`] so the
    /// `origin_requests <= misses + invalidations` invariant is a real
    /// measurement, not an identity baked into one counter.
    pub fn note_origin(&mut self) {
        self.origin_requests += 1;
    }

    /// Fill the cache from an origin response stamped with the epoch the
    /// client accepted it under. Oversized payloads are passed through
    /// uncached; old entries FIFO out until the new one fits.
    pub fn fill(&mut self, id: MediaId, shard: usize, epoch: u64, media: &MediaObject) {
        let cost = Self::cost(media);
        if cost > self.capacity {
            return;
        }
        self.remove(id);
        while self.used + cost > self.capacity {
            let Some(victim) = self.order.front().copied() else {
                break;
            };
            self.remove(victim);
        }
        self.entries.insert(
            id,
            EdgeEntry {
                shard,
                epoch,
                media: media.clone(),
            },
        );
        self.order.push_back(id);
        self.used += cost;
        self.inserts += 1;
    }

    fn remove(&mut self, id: MediaId) {
        if let Some(e) = self.entries.remove(&id) {
            self.used -= Self::cost(&e.media);
            self.order.retain(|&m| m != id);
        }
    }

    /// Export the cache counters under `prefix` (e.g. `edge`).
    pub fn export_metrics(&self, reg: &mits_sim::MetricsRegistry, prefix: &str) {
        reg.counter_set(&format!("{prefix}.hits"), self.hits);
        reg.counter_set(&format!("{prefix}.misses"), self.misses);
        reg.counter_set(&format!("{prefix}.invalidations"), self.invalidations);
        reg.counter_set(&format!("{prefix}.inserts"), self.inserts);
        reg.counter_set(&format!("{prefix}.origin_requests"), self.origin_requests);
        reg.counter_set(&format!("{prefix}.lookups"), self.lookups());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mits_media::{MediaFormat, VideoDims};
    use mits_sim::{SimDuration, SimTime};

    fn clip(id: u64, bytes: usize) -> MediaObject {
        MediaObject::new(
            MediaId(id),
            format!("clip{id}.mpg"),
            MediaFormat::Mpeg,
            SimDuration::from_secs(1),
            VideoDims::new(160, 120),
            Bytes::from(vec![0u8; bytes]),
        )
    }

    #[test]
    fn single_shard_router_never_scatters() {
        let r = ShardRouter::new(1);
        assert_eq!(r.route(&Request::ListDocs), Route::Shard(0));
        assert_eq!(r.route(&Request::GetKeywordTree), Route::Shard(0));
    }

    #[test]
    fn multi_shard_router_scatters_catalogue_queries() {
        let r = ShardRouter::new(4);
        assert_eq!(r.route(&Request::ListDocs), Route::Scatter);
        assert_eq!(r.route(&Request::GetKeywordTree), Route::Scatter);
        assert_eq!(
            r.route(&Request::QueryKeyword {
                keyword: "telecom".into(),
                subtree: true
            }),
            Route::Scatter
        );
        let root = MhegId::new(3, 9);
        match r.route(&Request::GetCourseware { root }) {
            Route::Shard(s) => assert_eq!(s, r.shard_for_object(root)),
            Route::Scatter => panic!("courseware routes by root"),
        }
    }

    #[test]
    fn merge_helpers_are_order_independent() {
        let a = vec![(MhegId::new(1, 2), "b".to_string())];
        let b = vec![(MhegId::new(1, 1), "a".to_string())];
        let m1 = merge_doc_lists(vec![a.clone(), b.clone()]);
        let m2 = merge_doc_lists(vec![b, a]);
        assert_eq!(m1, m2);
        assert_eq!(m1[0].1, "a");
        let ids = merge_doc_ids(vec![
            vec![MhegId::new(1, 3), MhegId::new(1, 1)],
            vec![MhegId::new(1, 1)],
        ]);
        assert_eq!(ids, vec![MhegId::new(1, 1), MhegId::new(1, 3)]);
    }

    #[test]
    fn edge_cache_hits_after_fill() {
        let mut c = EdgeCache::new(1 << 20, 2);
        assert!(c.get(MediaId(1), SimTime::ZERO).is_none());
        c.note_origin();
        c.fill(MediaId(1), 0, 0, &clip(1, 1024));
        let got = c.get(MediaId(1), SimTime::ZERO).expect("filled");
        assert_eq!(got.data.len(), 1024);
        assert_eq!((c.hits, c.misses, c.origin_requests), (1, 1, 1));
    }

    #[test]
    fn stale_epoch_entry_is_evicted_not_served() {
        let mut c = EdgeCache::new(1 << 20, 2);
        c.fill(MediaId(7), 1, 0, &clip(7, 512));
        // Shard 1 fences its old primary: everything filled under epoch
        // 0 is now suspect.
        c.observe_epoch(1, 2, SimTime::ZERO);
        assert!(
            c.get(MediaId(7), SimTime::ZERO).is_none(),
            "fenced entry must not serve"
        );
        assert_eq!(c.invalidations, 1);
        assert_eq!(c.misses, 0, "an invalidation is not a miss");
        // Refill at the new epoch serves again.
        c.fill(MediaId(7), 1, 2, &clip(7, 512));
        assert!(c.get(MediaId(7), SimTime::ZERO).is_some());
        // Other shards' floors are independent.
        c.fill(MediaId(9), 0, 0, &clip(9, 512));
        assert!(c.get(MediaId(9), SimTime::ZERO).is_some());
    }

    #[test]
    fn fences_and_invalidations_hit_the_flight_recorder() {
        use mits_sim::{FlightKind, FlightRecorder};
        let fr = FlightRecorder::default();
        let mut c = EdgeCache::new(1 << 20, 2);
        c.set_flight_recorder(fr.clone());
        c.fill(MediaId(7), 1, 0, &clip(7, 512));
        c.observe_epoch(1, 2, SimTime::from_secs(5));
        c.observe_epoch(1, 2, SimTime::from_secs(6)); // no raise, no event
        assert!(c.get(MediaId(7), SimTime::from_secs(7)).is_none());
        assert_eq!(fr.total(FlightKind::EpochFence), 1);
        assert_eq!(fr.total(FlightKind::EdgeInvalidation), 1);
        let tail = fr.tail();
        assert_eq!(tail[0].at, SimTime::from_secs(5));
        assert_eq!(tail[1].kind, FlightKind::EdgeInvalidation);
        assert_eq!(tail[1].a, 1, "invalidation names the fenced shard");
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let mut c = EdgeCache::new(2 * (1024 + EDGE_ENTRY_COST), 1);
        c.fill(MediaId(1), 0, 0, &clip(1, 1024));
        c.fill(MediaId(2), 0, 0, &clip(2, 1024));
        c.fill(MediaId(3), 0, 0, &clip(3, 1024));
        assert!(
            c.get(MediaId(1), SimTime::ZERO).is_none(),
            "oldest entry FIFO'd out"
        );
        assert!(c.get(MediaId(3), SimTime::ZERO).is_some());
        // An over-capacity payload passes through uncached.
        c.fill(MediaId(4), 0, 0, &clip(4, 1 << 20));
        assert!(c.get(MediaId(4), SimTime::ZERO).is_none());
    }
}
