//! The keyword tree — §5.5 names `GetKeywordTree()` ("retrieve and
//! display the keywords provided by the database") and
//! `GetDocByKeyword(keyword)` as the query APIs the prototype planned.
//!
//! Keywords may be hierarchical with `/` separators ("telecom/atm/qos");
//! the tree merges all document keywords into one taxonomy students browse
//! in the library screen (Fig 5.7).

use mits_mheg::MhegId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One node of the keyword taxonomy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeywordNode {
    /// Documents directly tagged with the keyword path ending here.
    pub documents: Vec<MhegId>,
    /// Child keywords (ordered for deterministic display).
    pub children: BTreeMap<String, KeywordNode>,
}

/// The whole keyword tree.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeywordTree {
    root: KeywordNode,
    entries: usize,
}

impl KeywordTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tag `doc` with a keyword path like `"telecom/atm"`.
    pub fn insert(&mut self, keyword: &str, doc: MhegId) {
        let mut node = &mut self.root;
        for part in keyword.split('/').filter(|p| !p.is_empty()) {
            node = node.children.entry(part.to_ascii_lowercase()).or_default();
        }
        if !node.documents.contains(&doc) {
            node.documents.push(doc);
            self.entries += 1;
        }
    }

    /// Documents tagged exactly at `keyword`.
    pub fn lookup(&self, keyword: &str) -> Vec<MhegId> {
        match self.node_at(keyword) {
            Some(n) => n.documents.clone(),
            None => Vec::new(),
        }
    }

    /// Documents tagged at `keyword` or anywhere beneath it.
    pub fn lookup_subtree(&self, keyword: &str) -> Vec<MhegId> {
        let Some(node) = self.node_at(keyword) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        collect(node, &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn node_at(&self, keyword: &str) -> Option<&KeywordNode> {
        let mut node = &self.root;
        for part in keyword.split('/').filter(|p| !p.is_empty()) {
            node = node.children.get(&part.to_ascii_lowercase())?;
        }
        Some(node)
    }

    /// Total (keyword, document) pairs.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Flatten to `(path, doc_count)` rows, depth-first — the library
    /// browsing display.
    pub fn outline(&self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        fn walk(node: &KeywordNode, path: &str, out: &mut Vec<(String, usize)>) {
            for (name, child) in &node.children {
                let p = if path.is_empty() {
                    name.clone()
                } else {
                    format!("{path}/{name}")
                };
                out.push((p.clone(), child.documents.len()));
                walk(child, &p, out);
            }
        }
        walk(&self.root, "", &mut out);
        out
    }

    /// Root node (for custom traversals / wire encoding).
    pub fn root(&self) -> &KeywordNode {
        &self.root
    }

    /// Fold another tree's entries into this one — the gather side of a
    /// scatter/gathered `GetKeywordTree` over a sharded store. Duplicate
    /// (path, doc) pairs collapse, so merging is idempotent and the
    /// result is independent of shard arrival order.
    pub fn merge_from(&mut self, other: &KeywordTree) {
        fn walk(tree: &mut KeywordTree, path: &str, node: &KeywordNode) {
            for &doc in &node.documents {
                tree.insert(path, doc);
            }
            for (name, child) in &node.children {
                let p = if path.is_empty() {
                    name.clone()
                } else {
                    format!("{path}/{name}")
                };
                walk(tree, &p, child);
            }
        }
        walk(self, "", &other.root);
    }
}

fn collect(node: &KeywordNode, out: &mut Vec<MhegId>) {
    out.extend_from_slice(&node.documents);
    for child in node.children.values() {
        collect(child, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(n: u64) -> MhegId {
        MhegId::new(1, n)
    }

    #[test]
    fn insert_and_exact_lookup() {
        let mut t = KeywordTree::new();
        t.insert("telecom/atm", doc(1));
        t.insert("telecom/atm", doc(2));
        t.insert("telecom", doc(3));
        assert_eq!(t.lookup("telecom/atm"), vec![doc(1), doc(2)]);
        assert_eq!(t.lookup("telecom"), vec![doc(3)]);
        assert_eq!(t.lookup("biology"), Vec::<MhegId>::new());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicate_tag_ignored() {
        let mut t = KeywordTree::new();
        t.insert("atm", doc(1));
        t.insert("atm", doc(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup("atm"), vec![doc(1)]);
    }

    #[test]
    fn case_insensitive() {
        let mut t = KeywordTree::new();
        t.insert("Telecom/ATM", doc(1));
        assert_eq!(t.lookup("telecom/atm"), vec![doc(1)]);
        assert_eq!(t.lookup("TELECOM/atm"), vec![doc(1)]);
    }

    #[test]
    fn subtree_lookup_gathers_descendants() {
        let mut t = KeywordTree::new();
        t.insert("telecom", doc(1));
        t.insert("telecom/atm", doc(2));
        t.insert("telecom/atm/qos", doc(3));
        t.insert("telecom/isdn", doc(4));
        t.insert("biology", doc(5));
        let all = t.lookup_subtree("telecom");
        assert_eq!(all, vec![doc(1), doc(2), doc(3), doc(4)]);
        assert_eq!(
            t.lookup_subtree(""),
            vec![doc(1), doc(2), doc(3), doc(4), doc(5)]
        );
    }

    #[test]
    fn outline_is_sorted_depth_first() {
        let mut t = KeywordTree::new();
        t.insert("b", doc(1));
        t.insert("a/x", doc(2));
        t.insert("a", doc(3));
        let o = t.outline();
        assert_eq!(
            o,
            vec![
                ("a".to_string(), 1),
                ("a/x".to_string(), 1),
                ("b".to_string(), 1),
            ]
        );
    }

    #[test]
    fn merge_from_is_order_independent_and_idempotent() {
        let mut a = KeywordTree::new();
        a.insert("telecom/atm", doc(1));
        a.insert("biology", doc(2));
        let mut b = KeywordTree::new();
        b.insert("telecom/atm", doc(1));
        b.insert("telecom/isdn", doc(3));
        b.insert("", doc(4));

        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.len(), 4);
        assert_eq!(ab.lookup("telecom/atm"), vec![doc(1)]);
        assert_eq!(ab.lookup(""), vec![doc(4)]);

        // Merging the same shard twice changes nothing.
        let again = {
            let mut t = ab.clone();
            t.merge_from(&b);
            t
        };
        assert_eq!(again, ab);
    }

    #[test]
    fn empty_segments_skipped() {
        let mut t = KeywordTree::new();
        t.insert("//atm//", doc(1));
        assert_eq!(t.lookup("atm"), vec![doc(1)]);
    }
}
