//! MEDIASTORE / MEDIAFILE — the object and content stores (§5.1.1).
//!
//! Thread-safe (parking_lot RwLocks) so integration tests can hammer one
//! server from many client threads, as the real multi-student deployment
//! would.

use bytes::Bytes;
use mits_media::{MediaId, MediaObject};
use mits_mheg::{MhegId, MhegObject, ObjectBody};
use parking_lot::RwLock;
use std::collections::HashMap;

/// The MHEG object store (scenario database).
#[derive(Default)]
pub struct ObjectStore {
    objects: RwLock<HashMap<MhegId, MhegObject>>,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or update an object. Updating bumps the stored version so
    /// "course content can be updated at anytime" (§3.2) is observable.
    pub fn put(&self, mut obj: MhegObject) -> u32 {
        let mut map = self.objects.write();
        if let Some(prev) = map.get(&obj.id) {
            obj.info.version = prev.info.version + 1;
        }
        let v = obj.info.version;
        map.insert(obj.id, obj);
        v
    }

    /// The stored version of an object, without copying it.
    pub fn version_of(&self, id: MhegId) -> Option<u32> {
        self.objects.read().get(&id).map(|o| o.info.version)
    }

    /// Compare-and-set put: succeeds only when the stored version still
    /// equals `expected` (`None` = not stored yet), in which case the
    /// object is stored at `expected + 1` (or 0 for a fresh insert) and
    /// that version is returned. On a mismatch nothing changes and the
    /// *current* version is returned as the error — the caller can see
    /// exactly what raced it. Replica replay uses this so a re-applied
    /// record can never double-bump a version.
    pub fn put_if_version(
        &self,
        mut obj: MhegObject,
        expected: Option<u32>,
    ) -> Result<u32, Option<u32>> {
        let mut map = self.objects.write();
        let current = map.get(&obj.id).map(|o| o.info.version);
        if current != expected {
            return Err(current);
        }
        obj.info.version = match expected {
            Some(v) => v + 1,
            None => 0,
        };
        let v = obj.info.version;
        map.insert(obj.id, obj);
        Ok(v)
    }

    /// Store an object exactly as given, version included — the
    /// snapshot/replay bootstrap path, which must reproduce recorded
    /// versions rather than re-derive them.
    pub fn put_exact(&self, obj: MhegObject) {
        self.objects.write().insert(obj.id, obj);
    }

    /// Fetch a copy of an object.
    pub fn get(&self, id: MhegId) -> Option<MhegObject> {
        self.objects.read().get(&id).cloned()
    }

    /// Remove an object.
    pub fn remove(&self, id: MhegId) -> bool {
        self.objects.write().remove(&id).is_some()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }

    /// Ids of all container objects — the "documents" the list API shows.
    pub fn list_containers(&self) -> Vec<(MhegId, String)> {
        let map = self.objects.read();
        let mut out: Vec<(MhegId, String)> = map
            .values()
            .filter(|o| matches!(o.body, ObjectBody::Container(_)))
            .map(|o| (o.id, o.info.name.clone()))
            .collect();
        out.sort();
        out
    }

    /// Transitive closure of object references from `root` (the shipment
    /// set for a courseware fetch). The root is included; unknown
    /// references are skipped.
    pub fn closure(&self, root: MhegId) -> Vec<MhegObject> {
        let map = self.objects.read();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            if let Some(obj) = map.get(&id) {
                stack.extend(obj.referenced_objects());
                out.push(obj.clone());
            }
        }
        // Deterministic order for the wire.
        out.sort_by_key(|o| o.id);
        out
    }

    /// Media ids referenced by the closure of `root`.
    pub fn media_closure(&self, root: MhegId) -> Vec<MediaId> {
        let mut media: Vec<MediaId> = self
            .closure(root)
            .iter()
            .filter_map(|o| o.referenced_media())
            .collect();
        media.sort();
        media.dedup();
        media
    }

    /// Visit every object (index building).
    pub fn for_each(&self, mut f: impl FnMut(&MhegObject)) {
        for obj in self.objects.read().values() {
            f(obj);
        }
    }
}

/// The bulk content store (MEDIAFILE).
#[derive(Default)]
pub struct ContentStore {
    media: RwLock<HashMap<MediaId, MediaObject>>,
}

impl ContentStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a media object.
    pub fn put(&self, obj: MediaObject) {
        self.media.write().insert(obj.id, obj);
    }

    /// Fetch a media object.
    pub fn get(&self, id: MediaId) -> Option<MediaObject> {
        self.media.read().get(&id).cloned()
    }

    /// Fetch only the payload bytes.
    pub fn get_data(&self, id: MediaId) -> Option<Bytes> {
        self.media.read().get(&id).map(|m| m.data.clone())
    }

    /// Payload size without fetching.
    pub fn size_of(&self, id: MediaId) -> Option<usize> {
        self.media.read().get(&id).map(|m| m.data.len())
    }

    /// Number of stored media objects.
    pub fn len(&self) -> usize {
        self.media.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.media.read().is_empty()
    }

    /// Total stored payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.media
            .read()
            .values()
            .map(|m| m.data.len() as u64)
            .sum()
    }

    /// Visit every media object (checkpointing).
    pub fn for_each(&self, mut f: impl FnMut(&MediaObject)) {
        for m in self.media.read().values() {
            f(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mits_mheg::{ClassLibrary, GenericValue};

    fn store_with_course() -> (ObjectStore, MhegId, Vec<MhegId>) {
        let mut lib = ClassLibrary::new(1);
        let a = lib.value_content("a", GenericValue::Int(1));
        let b = lib.value_content("b", GenericValue::Int(2));
        let scene = lib.composite("scene", vec![a, b], vec![], vec![]);
        let course = lib.container("course", vec![scene]);
        let store = ObjectStore::new();
        for o in lib.into_objects() {
            store.put(o);
        }
        (store, course, vec![a, b, scene])
    }

    #[test]
    fn put_get_round_trip() {
        let (store, course, _) = store_with_course();
        let obj = store.get(course).expect("stored");
        assert_eq!(obj.id, course);
        assert_eq!(store.len(), 4);
        assert!(store.get(MhegId::new(9, 9)).is_none());
    }

    #[test]
    fn update_bumps_version() {
        let (store, course, _) = store_with_course();
        let obj = store.get(course).unwrap();
        assert_eq!(obj.info.version, 0);
        let v1 = store.put(obj.clone());
        assert_eq!(v1, 1);
        let v2 = store.put(obj);
        assert_eq!(v2, 2);
        assert_eq!(store.get(course).unwrap().info.version, 2);
    }

    #[test]
    fn put_if_version_is_compare_and_set() {
        let (store, course, _) = store_with_course();
        let obj = store.get(course).unwrap();
        assert_eq!(store.version_of(course), Some(0));
        // Matching expectation: stored at expected + 1.
        assert_eq!(store.put_if_version(obj.clone(), Some(0)), Ok(1));
        assert_eq!(store.version_of(course), Some(1));
        // Stale expectation: rejected, current version reported, state
        // untouched — a re-applied replica record cannot double-bump.
        assert_eq!(store.put_if_version(obj.clone(), Some(0)), Err(Some(1)));
        assert_eq!(store.version_of(course), Some(1));
        // Expecting absence of a present object also fails.
        assert_eq!(store.put_if_version(obj.clone(), None), Err(Some(1)));
        // Fresh insert via CAS lands at version 0.
        let mut fresh = obj.clone();
        fresh.id = MhegId::new(8, 8);
        fresh.info.version = 99; // ignored: CAS derives the version
        assert_eq!(store.put_if_version(fresh, None), Ok(0));
        assert_eq!(store.version_of(MhegId::new(8, 8)), Some(0));
    }

    #[test]
    fn put_exact_preserves_recorded_version() {
        let (store, course, _) = store_with_course();
        let mut obj = store.get(course).unwrap();
        obj.info.version = 41;
        store.put_exact(obj);
        assert_eq!(store.version_of(course), Some(41));
        // A normal put still bumps from the exact version.
        let obj = store.get(course).unwrap();
        assert_eq!(store.put(obj), 42);
    }

    #[test]
    fn closure_walks_references() {
        let (store, course, members) = store_with_course();
        let closure = store.closure(course);
        assert_eq!(closure.len(), 4, "course + scene + a + b");
        for m in members {
            assert!(closure.iter().any(|o| o.id == m), "{m} in closure");
        }
    }

    #[test]
    fn closure_handles_cycles_and_dangling() {
        let mut lib = ClassLibrary::new(2);
        let a = lib.value_content("a", GenericValue::Int(1));
        // Composite referencing itself and a dangling id.
        let weird = lib.composite("weird", vec![a, MhegId::new(2, 999)], vec![], vec![]);
        let store = ObjectStore::new();
        let mut objs = lib.into_objects();
        // Introduce a cycle: make the composite include itself.
        if let ObjectBody::Composite(c) = &mut objs[1].body {
            c.components.push(weird);
        }
        for o in objs {
            store.put(o);
        }
        let closure = store.closure(weird);
        assert_eq!(closure.len(), 2, "self-cycle and dangling ref tolerated");
    }

    #[test]
    fn list_containers_only() {
        let (store, course, _) = store_with_course();
        let list = store.list_containers();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0], (course, "course".to_string()));
    }

    #[test]
    fn media_closure_dedups() {
        use bytes::Bytes;
        use mits_media::{MediaFormat, MediaObject, VideoDims};
        use mits_sim::SimDuration;
        let m = MediaObject::new(
            MediaId(5),
            "x.mpg",
            MediaFormat::Mpeg,
            SimDuration::from_secs(1),
            VideoDims::new(1, 1),
            Bytes::from_static(b"z"),
        );
        let mut lib = ClassLibrary::new(3);
        let c1 = lib.media_content(&m, (0, 0));
        let c2 = lib.media_content(&m, (5, 5)); // same media, reused!
        let scene = lib.composite("s", vec![c1, c2], vec![], vec![]);
        let store = ObjectStore::new();
        for o in lib.into_objects() {
            store.put(o);
        }
        assert_eq!(store.media_closure(scene), vec![MediaId(5)], "deduplicated");
    }

    #[test]
    fn content_store_basics() {
        use bytes::Bytes;
        use mits_media::{MediaFormat, MediaObject, VideoDims};
        use mits_sim::SimDuration;
        let cs = ContentStore::new();
        assert!(cs.is_empty());
        let m = MediaObject::new(
            MediaId(1),
            "a.wav",
            MediaFormat::Wav,
            SimDuration::from_secs(1),
            VideoDims::default(),
            Bytes::from(vec![1, 2, 3]),
        );
        cs.put(m.clone());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs.get(MediaId(1)), Some(m));
        assert_eq!(cs.get_data(MediaId(1)).unwrap().len(), 3);
        assert_eq!(cs.size_of(MediaId(1)), Some(3));
        assert_eq!(cs.total_bytes(), 3);
        assert!(cs.get(MediaId(2)).is_none());
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let (store, course, _) = store_with_course();
        let store = std::sync::Arc::new(store);
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let st = store.clone();
                s.spawn(move |_| {
                    for _ in 0..1000 {
                        let _ = st.get(course);
                        let _ = st.list_containers();
                    }
                });
            }
            let st = store.clone();
            s.spawn(move |_| {
                for _ in 0..1000 {
                    let obj = st.get(course).unwrap();
                    st.put(obj);
                }
            });
        })
        .unwrap();
        assert_eq!(store.get(course).unwrap().info.version, 1000);
    }
}
