//! Write-ahead logging for the courseware database.
//!
//! The prototype's ObjectStore persisted to disk; the reproduction's
//! stores are in-memory HashMaps, so a server crash would silently lose
//! every object, version bump, and bookmark. This module adds the
//! ARIES-style discipline log-structured stores use: every mutating
//! operation is appended to a [`Wal`] as a length-prefixed,
//! CRC-checksummed [`WalRecord`] *before* it is applied to the store, so
//! replaying the log after a crash reconstructs exactly the state the
//! crash destroyed.
//!
//! ## Frame format
//!
//! ```text
//! [len: u32 BE] [crc32: u32 BE over seq‖payload] [seq: u64 BE] [payload]
//! ```
//!
//! `len` counts the `seq` and `payload` bytes. `seq` is a cluster-wide
//! monotonic record number assigned by the journaling server; replicas
//! preserve the primary's numbering so a record is applied at most once
//! no matter how many times it is shipped or replayed.
//!
//! ## Torn tails
//!
//! A crash can land mid-append. Replay therefore *never panics*: a frame
//! whose length runs past the device, or whose CRC does not match, ends
//! the replay — the good prefix is kept, the tail is truncated, and the
//! [`ReplayReport`] says so. Corruption *within* the good prefix is
//! indistinguishable from a torn tail by design (the scan stops at the
//! first bad frame either way).
//!
//! ## Devices
//!
//! A [`LogDevice`] is the byte-level persistence abstraction. The
//! simulation uses in-memory devices ([`MemLogDevice`], and
//! [`SharedLogDevice`] when the "disk" must survive the `DbServer` that
//! wrote it, i.e. a crash/restart cycle); [`FileLogDevice`] writes a real
//! file so the recovery path is also exercised against an actual
//! filesystem in tests.

use crate::protocol::DbError;
use bytes::{BufMut, Bytes, BytesMut};
use mits_media::MediaObject;
use mits_mheg::{decode_object, encode_object, MhegId, MhegObject, WireFormat};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

// ---------- CRC-32 (IEEE 802.3, reflected) ----------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) over `data` — the checksum guarding every WAL frame.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------- log devices ----------

/// Byte-level persistence for a log: append-only writes plus whole-device
/// reads and truncation. The device is the thing that survives a crash;
/// the `Wal` wrapping it does not.
pub trait LogDevice: Send {
    /// Append bytes at the end of the device.
    fn append(&mut self, data: &[u8]);
    /// The full device contents.
    fn read_all(&self) -> Vec<u8>;
    /// Keep only the first `len` bytes (torn-tail cleanup, checkpoints).
    fn truncate_to(&mut self, len: usize);
    /// Current device length in bytes.
    fn len(&self) -> usize;
    /// True when the device holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A `Vec<u8>`-backed device private to its owner.
#[derive(Debug, Default, Clone)]
pub struct MemLogDevice {
    data: Vec<u8>,
}

impl MemLogDevice {
    /// An empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// A device pre-loaded with `data` (recovery tests).
    pub fn with_data(data: Vec<u8>) -> Self {
        MemLogDevice { data }
    }
}

impl LogDevice for MemLogDevice {
    fn append(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }
    fn read_all(&self) -> Vec<u8> {
        self.data.clone()
    }
    fn truncate_to(&mut self, len: usize) {
        self.data.truncate(len);
    }
    fn len(&self) -> usize {
        self.data.len()
    }
}

/// A device whose bytes outlive the server that wrote them — the
/// simulation's stand-in for a disk that survives a process crash. Clone
/// handles share the same storage.
#[derive(Debug, Default, Clone)]
pub struct SharedLogDevice {
    data: Arc<Mutex<Vec<u8>>>,
}

impl SharedLogDevice {
    /// An empty shared device.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared device pre-loaded with `data` (recovery tests).
    pub fn with_data(data: Vec<u8>) -> Self {
        SharedLogDevice {
            data: Arc::new(Mutex::new(data)),
        }
    }

    /// Snapshot of the device contents.
    pub fn snapshot(&self) -> Vec<u8> {
        self.data.lock().clone()
    }

    /// Overwrite the device contents (checkpoint rewrite).
    pub fn reset(&self, data: &[u8]) {
        let mut d = self.data.lock();
        d.clear();
        d.extend_from_slice(data);
    }

    /// Corrupt one byte in place (fault-injection tests).
    pub fn flip_bit(&self, pos: usize, bit: u8) {
        let mut d = self.data.lock();
        if pos < d.len() {
            d[pos] ^= 1 << (bit & 7);
        }
    }
}

impl LogDevice for SharedLogDevice {
    fn append(&mut self, data: &[u8]) {
        self.data.lock().extend_from_slice(data);
    }
    fn read_all(&self) -> Vec<u8> {
        self.data.lock().clone()
    }
    fn truncate_to(&mut self, len: usize) {
        self.data.lock().truncate(len);
    }
    fn len(&self) -> usize {
        self.data.lock().len()
    }
}

/// A real file on disk — exercised by tests so the recovery path is not
/// simulation-only.
#[derive(Debug)]
pub struct FileLogDevice {
    path: std::path::PathBuf,
    len: usize,
}

impl FileLogDevice {
    /// Open (or create) the log file at `path`.
    pub fn open(path: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let len = match std::fs::metadata(&path) {
            Ok(m) => m.len() as usize,
            Err(_) => {
                std::fs::write(&path, [])?;
                0
            }
        };
        Ok(FileLogDevice { path, len })
    }
}

impl LogDevice for FileLogDevice {
    fn append(&mut self, data: &[u8]) {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .expect("log file opened at construction");
        f.write_all(data).expect("append to log file");
        self.len += data.len();
    }
    fn read_all(&self) -> Vec<u8> {
        std::fs::read(&self.path).unwrap_or_default()
    }
    fn truncate_to(&mut self, len: usize) {
        let mut data = self.read_all();
        data.truncate(len);
        std::fs::write(&self.path, &data).expect("rewrite log file");
        self.len = data.len();
    }
    fn len(&self) -> usize {
        self.len
    }
}

// ---------- records ----------

/// One durable mutation. Object and media payloads ride the same TLV
/// interchange encoding the wire protocol uses, so a record carries the
/// object's *exact* version — replaying is idempotent, never a re-bump.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An object was stored at the version recorded inside it.
    PutObject {
        /// The object, version included.
        object: MhegObject,
    },
    /// An object was removed.
    RemoveObject {
        /// Its id.
        id: MhegId,
    },
    /// A media object was stored.
    PutContent {
        /// The media object, payload included.
        media: MediaObject,
    },
    /// A navigator bookmark was saved (durable resume position).
    BookmarkAdd {
        /// Student number.
        student: u32,
        /// Bookmark id.
        id: u32,
        /// Bookmarked document.
        document: MhegId,
        /// Unit within it, if any.
        unit: Option<u32>,
        /// Student's note.
        note: String,
    },
    /// A navigator bookmark was removed.
    BookmarkRemove {
        /// Student number.
        student: u32,
        /// Bookmark id.
        id: u32,
    },
}

const TAG_PUT_OBJECT: u8 = 1;
const TAG_REMOVE_OBJECT: u8 = 2;
const TAG_PUT_CONTENT: u8 = 3;
const TAG_BOOKMARK_ADD: u8 = 4;
const TAG_BOOKMARK_REMOVE: u8 = 5;

impl WalRecord {
    /// Encode the record payload (no frame header).
    pub fn encode(&self) -> Bytes {
        let mut w = BytesMut::with_capacity(64);
        match self {
            WalRecord::PutObject { object } => {
                w.put_u8(TAG_PUT_OBJECT);
                let enc = encode_object(object, WireFormat::Tlv);
                w.put_u32(enc.len() as u32);
                w.put_slice(&enc);
            }
            WalRecord::RemoveObject { id } => {
                w.put_u8(TAG_REMOVE_OBJECT);
                w.put_u32(id.app);
                w.put_u64(id.num);
            }
            WalRecord::PutContent { media } => {
                w.put_u8(TAG_PUT_CONTENT);
                w.put_u64(media.id.0);
                put_str(&mut w, &media.name);
                w.put_u8(media.format.wire_tag());
                w.put_u64(media.duration.as_micros());
                w.put_u32(media.dims.width);
                w.put_u32(media.dims.height);
                w.put_u32(media.data.len() as u32);
                w.put_slice(&media.data);
            }
            WalRecord::BookmarkAdd {
                student,
                id,
                document,
                unit,
                note,
            } => {
                w.put_u8(TAG_BOOKMARK_ADD);
                w.put_u32(*student);
                w.put_u32(*id);
                w.put_u32(document.app);
                w.put_u64(document.num);
                match unit {
                    Some(u) => {
                        w.put_u8(1);
                        w.put_u32(*u);
                    }
                    None => w.put_u8(0),
                }
                put_str(&mut w, note);
            }
            WalRecord::BookmarkRemove { student, id } => {
                w.put_u8(TAG_BOOKMARK_REMOVE);
                w.put_u32(*student);
                w.put_u32(*id);
            }
        }
        w.freeze()
    }

    /// Decode a record payload.
    pub fn decode(data: &[u8]) -> Result<WalRecord, DbError> {
        WalRecord::decode_rd(Rd {
            d: data,
            shared: None,
            p: 0,
        })
    }

    /// Decode a record payload from a shared frame: a `PutContent`
    /// record's media bytes become a view of `payload`'s backing buffer
    /// instead of a fresh allocation, so replica shipment does not copy
    /// the media once per replica.
    pub fn decode_shared(payload: &Bytes) -> Result<WalRecord, DbError> {
        WalRecord::decode_rd(Rd {
            d: payload,
            shared: Some(payload),
            p: 0,
        })
    }

    fn decode_rd(mut r: Rd<'_>) -> Result<WalRecord, DbError> {
        let rec = match r.u8()? {
            TAG_PUT_OBJECT => {
                let n = r.u32()? as usize;
                let raw = r.take(n)?;
                let object = decode_object(raw, WireFormat::Tlv)
                    .map_err(|e| DbError::Malformed(e.to_string()))?;
                WalRecord::PutObject { object }
            }
            TAG_REMOVE_OBJECT => WalRecord::RemoveObject {
                id: MhegId::new(r.u32()?, r.u64()?),
            },
            TAG_PUT_CONTENT => {
                let id = mits_media::MediaId(r.u64()?);
                let name = r.str()?;
                let format = mits_media::MediaFormat::from_wire_tag(r.u8()?)
                    .ok_or_else(|| DbError::Malformed("bad media format".into()))?;
                let duration = mits_sim::SimDuration::from_micros(r.u64()?);
                let dims = mits_media::VideoDims::new(r.u32()?, r.u32()?);
                let n = r.u32()? as usize;
                let data = r.bytes(n)?;
                WalRecord::PutContent {
                    media: MediaObject::new(id, name, format, duration, dims, data),
                }
            }
            TAG_BOOKMARK_ADD => {
                let student = r.u32()?;
                let id = r.u32()?;
                let document = MhegId::new(r.u32()?, r.u64()?);
                let unit = match r.u8()? {
                    0 => None,
                    _ => Some(r.u32()?),
                };
                let note = r.str()?;
                WalRecord::BookmarkAdd {
                    student,
                    id,
                    document,
                    unit,
                    note,
                }
            }
            TAG_BOOKMARK_REMOVE => WalRecord::BookmarkRemove {
                student: r.u32()?,
                id: r.u32()?,
            },
            t => return Err(DbError::Malformed(format!("unknown wal tag {t}"))),
        };
        if r.p != r.d.len() {
            return Err(DbError::Malformed("trailing bytes in wal record".into()));
        }
        Ok(rec)
    }
}

fn put_str(w: &mut BytesMut, s: &str) {
    w.put_u32(s.len() as u32);
    w.put_slice(s.as_bytes());
}

struct Rd<'a> {
    d: &'a [u8],
    /// When decoding straight out of a shipped frame, the frame itself —
    /// lets `bytes` return zero-copy views instead of allocations.
    shared: Option<&'a Bytes>,
    p: usize,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DbError> {
        let end = self
            .p
            .checked_add(n)
            .filter(|&e| e <= self.d.len())
            .ok_or_else(|| DbError::Malformed("truncated wal record".into()))?;
        let s = &self.d[self.p..end];
        self.p = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DbError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DbError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, DbError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn str(&mut self) -> Result<String, DbError> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| DbError::Malformed(e.to_string()))
    }
    fn bytes(&mut self, n: usize) -> Result<Bytes, DbError> {
        let start = self.p;
        let raw = self.take(n)?;
        Ok(match self.shared {
            Some(frame) => frame.slice(start..start + n),
            None => Bytes::copy_from_slice(raw),
        })
    }
}

// ---------- framing ----------

/// Bytes of frame header before the checksummed region.
pub const FRAME_HEADER: usize = 8;

/// Wrap a record payload in a checksummed frame carrying `seq`.
pub fn encode_frame(seq: u64, payload: &[u8]) -> Bytes {
    let mut body = BytesMut::with_capacity(8 + payload.len());
    body.put_u64(seq);
    body.put_slice(payload);
    let mut f = BytesMut::with_capacity(FRAME_HEADER + body.len());
    f.put_u32(body.len() as u32);
    f.put_u32(crc32(&body));
    f.put_slice(&body);
    f.freeze()
}

/// Verify one frame and split it into `(seq, payload, frame_len)`.
/// `Err` means the bytes at `data` do not start with an intact frame.
pub fn decode_frame(data: &[u8]) -> Result<(u64, &[u8], usize), DbError> {
    if data.len() < FRAME_HEADER {
        return Err(DbError::Malformed("torn frame header".into()));
    }
    let len = u32::from_be_bytes(data[..4].try_into().expect("4")) as usize;
    let crc = u32::from_be_bytes(data[4..8].try_into().expect("4"));
    if len < 8 || data.len() < FRAME_HEADER + len {
        return Err(DbError::Malformed("torn frame body".into()));
    }
    let body = &data[FRAME_HEADER..FRAME_HEADER + len];
    if crc32(body) != crc {
        return Err(DbError::Malformed("wal frame crc mismatch".into()));
    }
    let seq = u64::from_be_bytes(body[..8].try_into().expect("8"));
    Ok((seq, &body[8..], FRAME_HEADER + len))
}

/// [`decode_frame`] for a shared frame: the returned payload is a
/// zero-copy view of `frame`'s backing buffer.
pub fn decode_frame_shared(frame: &Bytes) -> Result<(u64, Bytes, usize), DbError> {
    let (seq, payload, flen) = decode_frame(frame)?;
    let start = flen - payload.len();
    Ok((seq, frame.slice(start..flen), flen))
}

/// What a replay scan found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Intact records decoded.
    pub records: u64,
    /// Bytes of intact frames consumed.
    pub bytes: u64,
    /// A torn or corrupt frame ended the scan before the device did.
    pub torn_tail: bool,
    /// Bytes discarded past the good prefix.
    pub truncated_bytes: u64,
    /// Human-readable account of what was discarded, if anything.
    pub warning: Option<String>,
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} records / {} bytes", self.records, self.bytes)?;
        if let Some(w) = &self.warning {
            write!(f, " ({w})")?;
        }
        Ok(())
    }
}

/// Tolerantly scan a byte run for frames: decode the longest intact
/// prefix, report (never panic on) a torn or corrupt tail.
pub fn read_frames(data: &[u8]) -> (Vec<(u64, WalRecord)>, ReplayReport) {
    let mut out = Vec::new();
    let mut report = ReplayReport::default();
    let mut pos = 0usize;
    while pos < data.len() {
        match decode_frame(&data[pos..])
            .and_then(|(seq, payload, flen)| WalRecord::decode(payload).map(|rec| (seq, rec, flen)))
        {
            Ok((seq, rec, flen)) => {
                out.push((seq, rec));
                report.records += 1;
                report.bytes += flen as u64;
                pos += flen;
            }
            Err(e) => {
                report.torn_tail = true;
                report.truncated_bytes = (data.len() - pos) as u64;
                report.warning = Some(format!(
                    "log truncated at byte {pos}: {e} ({} bytes dropped)",
                    data.len() - pos
                ));
                break;
            }
        }
    }
    (out, report)
}

// ---------- the log ----------

/// The write-ahead log: an append cursor over a [`LogDevice`].
pub struct Wal {
    dev: Box<dyn LogDevice>,
    next_seq: u64,
    /// Records appended through this handle.
    pub appended_records: u64,
    /// Frame bytes appended through this handle.
    pub appended_bytes: u64,
}

impl Wal {
    /// A log over `dev`, continuing after whatever intact records the
    /// device already holds. A torn tail is truncated off the device.
    /// Returns the log, the surviving records, and the replay report.
    pub fn recover(mut dev: Box<dyn LogDevice>) -> (Wal, Vec<(u64, WalRecord)>, ReplayReport) {
        let data = dev.read_all();
        let (records, report) = read_frames(&data);
        if report.torn_tail {
            dev.truncate_to(report.bytes as usize);
        }
        let next_seq = records.iter().map(|(s, _)| s + 1).max().unwrap_or(0);
        (
            Wal {
                dev,
                next_seq,
                appended_records: 0,
                appended_bytes: 0,
            },
            records,
            report,
        )
    }

    /// A log over an empty (or to-be-ignored) device, starting at `seq`.
    pub fn create(dev: Box<dyn LogDevice>, seq: u64) -> Wal {
        Wal {
            dev,
            next_seq: seq,
            appended_records: 0,
            appended_bytes: 0,
        }
    }

    /// Journal one record. Returns its sequence number and the framed
    /// bytes (for shipping to a replica).
    pub fn append(&mut self, rec: &WalRecord) -> (u64, Bytes) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame = encode_frame(seq, &rec.encode());
        self.dev.append(&frame);
        self.appended_records += 1;
        self.appended_bytes += frame.len() as u64;
        (seq, frame)
    }

    /// Append a frame shipped from a peer, preserving its sequence
    /// number. Frames older than the cursor are verified but *not*
    /// re-appended (duplicate shipment). Returns the decoded record and
    /// its seq.
    pub fn append_frame(&mut self, frame: &Bytes) -> Result<(u64, WalRecord), DbError> {
        let (seq, payload, flen) = decode_frame_shared(frame)?;
        if flen != frame.len() {
            return Err(DbError::Malformed("trailing bytes after wal frame".into()));
        }
        let rec = WalRecord::decode_shared(&payload)?;
        if seq >= self.next_seq {
            self.dev.append(frame);
            self.appended_records += 1;
            self.appended_bytes += frame.len() as u64;
            self.next_seq = seq + 1;
        }
        Ok((seq, rec))
    }

    /// The next sequence number this log will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Advance the cursor (resync from a peer that is further ahead).
    pub fn advance_seq_to(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    /// Drop every frame from the device (after a checkpoint captured
    /// them); the sequence cursor keeps counting.
    pub fn truncate(&mut self) {
        self.dev.truncate_to(0);
    }

    /// Bytes currently on the device.
    pub fn device_len(&self) -> usize {
        self.dev.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mits_mheg::{ClassLibrary, GenericValue};

    fn sample_records() -> Vec<WalRecord> {
        let mut lib = ClassLibrary::new(3);
        let id = lib.value_content("v", GenericValue::Int(7));
        let object = lib.get(id).unwrap().clone();
        vec![
            WalRecord::PutObject { object },
            WalRecord::RemoveObject {
                id: MhegId::new(3, 9),
            },
            WalRecord::PutContent {
                media: MediaObject::new(
                    mits_media::MediaId(4),
                    "clip.mpg",
                    mits_media::MediaFormat::Mpeg,
                    mits_sim::SimDuration::from_secs(2),
                    mits_media::VideoDims::new(64, 48),
                    Bytes::from(vec![1, 2, 3]),
                ),
            },
            WalRecord::BookmarkAdd {
                student: 12,
                id: 0,
                document: MhegId::new(1, 1),
                unit: Some(3),
                note: "resume here".into(),
            },
            WalRecord::BookmarkRemove { student: 12, id: 0 },
        ]
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        for rec in sample_records() {
            let enc = rec.encode();
            let dec = WalRecord::decode(&enc).unwrap_or_else(|e| panic!("{rec:?}: {e}"));
            assert_eq!(dec, rec);
        }
    }

    #[test]
    fn append_replay_round_trip() {
        let mut wal = Wal::create(Box::new(MemLogDevice::new()), 0);
        let recs = sample_records();
        for r in &recs {
            wal.append(r);
        }
        assert_eq!(wal.next_seq(), recs.len() as u64);
        let data = wal.dev.read_all();
        let (replayed, report) = read_frames(&data);
        assert!(!report.torn_tail);
        assert_eq!(report.records, recs.len() as u64);
        assert_eq!(
            replayed.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
            recs
        );
        assert_eq!(
            replayed.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            (0..recs.len() as u64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn torn_tail_truncated_and_warned() {
        let mut wal = Wal::create(Box::new(MemLogDevice::new()), 0);
        for r in sample_records() {
            wal.append(&r);
        }
        let mut data = wal.dev.read_all();
        let full = data.len();
        data.truncate(full - 3); // tear the last frame
        let dev = MemLogDevice::with_data(data);
        let (wal2, records, report) = Wal::recover(Box::new(dev));
        assert_eq!(records.len(), sample_records().len() - 1);
        assert!(report.torn_tail);
        assert!(report.warning.is_some());
        // The device itself was cleaned: a second recovery is quiet.
        let (_, records2, report2) =
            Wal::recover(Box::new(MemLogDevice::with_data(wal2.dev.read_all())));
        assert_eq!(records2.len(), records.len());
        assert!(!report2.torn_tail);
    }

    #[test]
    fn corrupt_middle_record_stops_replay_cleanly() {
        let mut wal = Wal::create(Box::new(MemLogDevice::new()), 0);
        for r in sample_records() {
            wal.append(&r);
        }
        let mut data = wal.dev.read_all();
        data[FRAME_HEADER + 9] ^= 0x40; // corrupt inside the first frame's payload
        let (records, report) = read_frames(&data);
        assert!(records.is_empty(), "first frame is bad, nothing survives");
        assert!(report.torn_tail);
        assert!(report.warning.unwrap().contains("crc"),);
    }

    #[test]
    fn shipped_frames_preserve_seq_and_dedup() {
        let mut primary = Wal::create(Box::new(MemLogDevice::new()), 0);
        let mut replica = Wal::create(Box::new(MemLogDevice::new()), 0);
        let recs = sample_records();
        let mut frames = Vec::new();
        for r in &recs {
            let (_, f) = primary.append(r);
            frames.push(f);
        }
        for f in &frames {
            let (_, rec) = replica.append_frame(f).unwrap();
            assert!(recs.contains(&rec));
        }
        assert_eq!(replica.next_seq(), primary.next_seq());
        let before = replica.device_len();
        // Duplicate shipment: verified, decoded, but not re-appended.
        replica.append_frame(&frames[0]).unwrap();
        assert_eq!(replica.device_len(), before);
    }

    #[test]
    fn file_device_round_trips() {
        let path = std::env::temp_dir().join(format!("mits-wal-test-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let dev = FileLogDevice::open(&path).unwrap();
            let mut wal = Wal::create(Box::new(dev), 0);
            for r in sample_records() {
                wal.append(&r);
            }
        }
        let dev = FileLogDevice::open(&path).unwrap();
        let (_, records, report) = Wal::recover(Box::new(dev));
        assert_eq!(records.len(), sample_records().len());
        assert!(!report.torn_tail);
        let _ = std::fs::remove_file(&path);
    }
}
