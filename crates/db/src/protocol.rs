//! The client-server wire protocol (Fig 3.5).
//!
//! "A database server waits and listens for a service request from a
//! client. When such a request is received, the server retrieves objects
//! in the database according to the information provided by the client.
//! Then it establishes connections to the client and transmits the MHEG
//! objects or the content data through the network."
//!
//! Requests and responses travel as framed binary messages over the
//! reliable transport. MHEG objects ride in their own interchange (TLV)
//! encoding — the protocol never re-describes them; that is the whole
//! point of an interchange format.

use crate::index::KeywordTree;
use bytes::{BufMut, Bytes, BytesMut};
use mits_media::{MediaFormat, MediaId, MediaObject, VideoDims};
use mits_mheg::{decode_object, encode_object, MhegId, MhegObject, WireFormat};
use mits_sim::SimDuration;
use std::fmt;

/// Errors a server can return / decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The named thing does not exist.
    NotFound(String),
    /// The message could not be decoded.
    Malformed(String),
    /// The server is shedding load (queue past its overload threshold);
    /// the request is safe to retry after a backoff.
    Unavailable(String),
    /// The expected response did not have this shape (typed extraction
    /// on the wrong variant). Never travels on the wire.
    UnexpectedResponse(&'static str),
}

impl DbError {
    /// May an identical re-issue of the request succeed later?
    pub fn is_retryable(&self) -> bool {
        matches!(self, DbError::Unavailable(_))
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NotFound(s) => write!(f, "not found: {s}"),
            DbError::Malformed(s) => write!(f, "malformed message: {s}"),
            DbError::Unavailable(s) => write!(f, "server unavailable: {s}"),
            DbError::UnexpectedResponse(want) => write!(f, "expected {want} response"),
        }
    }
}

impl std::error::Error for DbError {}

/// The shape of a [`Request`], for per-operation accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RequestKind {
    ListDocs,
    GetDoc,
    GetObject,
    GetCourseware,
    GetContent,
    GetKeywordTree,
    QueryKeyword,
    PutObject,
    PutContent,
}

impl RequestKind {
    /// Stable human-readable name (paper spelling where one exists).
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::ListDocs => "get_list_doc",
            RequestKind::GetDoc => "get_selected_doc",
            RequestKind::GetObject => "get_object",
            RequestKind::GetCourseware => "get_courseware",
            RequestKind::GetContent => "get_content",
            RequestKind::GetKeywordTree => "get_keyword_tree",
            RequestKind::QueryKeyword => "get_doc_by_keyword",
            RequestKind::PutObject => "put_object",
            RequestKind::PutContent => "put_content",
        }
    }

    /// All kinds, for iteration in reports.
    pub const ALL: [RequestKind; 9] = [
        RequestKind::ListDocs,
        RequestKind::GetDoc,
        RequestKind::GetObject,
        RequestKind::GetCourseware,
        RequestKind::GetContent,
        RequestKind::GetKeywordTree,
        RequestKind::QueryKeyword,
        RequestKind::PutObject,
        RequestKind::PutContent,
    ];
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `Get_List_Doc()`: list all documents (containers).
    ListDocs,
    /// `Get_Selected_Doc(name)`: fetch a document's object closure by name.
    GetDoc {
        /// Document (container) name.
        name: String,
    },
    /// Fetch one object by id.
    GetObject {
        /// Object id.
        id: MhegId,
    },
    /// Fetch the full object closure of a courseware root.
    GetCourseware {
        /// Root (container or composite) id.
        root: MhegId,
    },
    /// Fetch bulk content data.
    GetContent {
        /// Media id.
        media: MediaId,
    },
    /// `GetKeywordTree()`.
    GetKeywordTree,
    /// `GetDocByKeyword(keyword)`; `subtree` widens to descendants.
    QueryKeyword {
        /// Keyword path.
        keyword: String,
        /// Include descendant keywords.
        subtree: bool,
    },
    /// Author site: store an object.
    PutObject {
        /// The object.
        object: MhegObject,
    },
    /// Production center: store a media object.
    PutContent {
        /// The media object.
        media: MediaObject,
    },
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Document list: (id, name) pairs.
    DocList(Vec<(MhegId, String)>),
    /// One or more MHEG objects.
    Objects(Vec<MhegObject>),
    /// A media object with payload.
    Content(MediaObject),
    /// The keyword taxonomy.
    KeywordTree(KeywordTree),
    /// Document ids matching a query.
    DocIds(Vec<MhegId>),
    /// Write acknowledged.
    Ack,
    /// Failure.
    Err(DbError),
}

impl Request {
    /// The request's shape.
    pub fn kind(&self) -> RequestKind {
        match self {
            Request::ListDocs => RequestKind::ListDocs,
            Request::GetDoc { .. } => RequestKind::GetDoc,
            Request::GetObject { .. } => RequestKind::GetObject,
            Request::GetCourseware { .. } => RequestKind::GetCourseware,
            Request::GetContent { .. } => RequestKind::GetContent,
            Request::GetKeywordTree => RequestKind::GetKeywordTree,
            Request::QueryKeyword { .. } => RequestKind::QueryKeyword,
            Request::PutObject { .. } => RequestKind::PutObject,
            Request::PutContent { .. } => RequestKind::PutContent,
        }
    }
}

impl Response {
    /// Typed extraction: document list.
    pub fn into_doc_list(self) -> Result<Vec<(MhegId, String)>, DbError> {
        match self {
            Response::DocList(list) => Ok(list),
            Response::Err(e) => Err(e),
            _ => Err(DbError::UnexpectedResponse("doc list")),
        }
    }

    /// Typed extraction: object set.
    pub fn into_objects(self) -> Result<Vec<MhegObject>, DbError> {
        match self {
            Response::Objects(objs) => Ok(objs),
            Response::Err(e) => Err(e),
            _ => Err(DbError::UnexpectedResponse("objects")),
        }
    }

    /// Typed extraction: media content.
    pub fn into_content(self) -> Result<MediaObject, DbError> {
        match self {
            Response::Content(m) => Ok(m),
            Response::Err(e) => Err(e),
            _ => Err(DbError::UnexpectedResponse("content")),
        }
    }

    /// Typed extraction: keyword taxonomy.
    pub fn into_keyword_tree(self) -> Result<KeywordTree, DbError> {
        match self {
            Response::KeywordTree(t) => Ok(t),
            Response::Err(e) => Err(e),
            _ => Err(DbError::UnexpectedResponse("keyword tree")),
        }
    }

    /// Typed extraction: matching document ids.
    pub fn into_doc_ids(self) -> Result<Vec<MhegId>, DbError> {
        match self {
            Response::DocIds(ids) => Ok(ids),
            Response::Err(e) => Err(e),
            _ => Err(DbError::UnexpectedResponse("doc ids")),
        }
    }

    /// Typed extraction: write acknowledgement.
    pub fn into_ack(self) -> Result<(), DbError> {
        match self {
            Response::Ack => Ok(()),
            Response::Err(e) => Err(e),
            _ => Err(DbError::UnexpectedResponse("ack")),
        }
    }
}

/// Read the correlation id off a frame without decoding the body.
///
/// The `req_id` is always the first big-endian `u64` on the wire, so a
/// client can still correlate (and fail) a pending request whose response
/// body arrives corrupted.
pub fn peek_req_id(frame: &[u8]) -> Option<u64> {
    let raw: [u8; 8] = frame.get(..8)?.try_into().ok()?;
    Some(u64::from_be_bytes(raw))
}

/// Read a response's trace context off a frame without decoding the
/// body. Returns the raw span id (0 = untraced); the trace rides right
/// after the correlation id and epoch.
pub fn peek_response_trace(frame: &[u8]) -> Option<u64> {
    let raw: [u8; 8] = frame.get(16..24)?.try_into().ok()?;
    Some(u64::from_be_bytes(raw))
}

/// A correlated protocol message (request or response share the id).
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<T> {
    /// Correlation id chosen by the client.
    pub req_id: u64,
    /// Trace context: the client-side request span id, or 0 when the
    /// issuer is not tracing. Echoed verbatim by the server so every
    /// hop of a query — including retries and failovers — lands under
    /// one span tree.
    pub trace: u64,
    /// Payload.
    pub body: T,
}

// ---------- wire helpers ----------

struct W(BytesMut);

impl W {
    fn new() -> Self {
        W(BytesMut::with_capacity(128))
    }
    fn u8(&mut self, v: u8) {
        self.0.put_u8(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.put_u32(v);
    }
    fn u64(&mut self, v: u64) {
        self.0.put_u64(v);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.put_slice(s.as_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.0.put_slice(b);
    }
    fn id(&mut self, id: MhegId) {
        self.u32(id.app);
        self.u64(id.num);
    }
    fn fin(self) -> Bytes {
        self.0.freeze()
    }
}

struct R<'a> {
    d: &'a [u8],
    /// When decoding straight off a wire frame, the frame itself — lets
    /// [`R::bytes`] return zero-copy views instead of copies.
    shared: Option<&'a Bytes>,
    p: usize,
}

type DR<T> = Result<T, DbError>;

impl<'a> R<'a> {
    fn new(d: &'a [u8]) -> Self {
        R {
            d,
            shared: None,
            p: 0,
        }
    }

    /// Reader whose byte fields alias `frame`'s backing storage.
    fn new_shared(frame: &'a Bytes) -> Self {
        R {
            d: frame,
            shared: Some(frame),
            p: 0,
        }
    }
    fn take(&mut self, n: usize) -> DR<&'a [u8]> {
        let end = self.p.checked_add(n).ok_or_else(truncated)?;
        if end > self.d.len() {
            return Err(truncated());
        }
        let s = &self.d[self.p..end];
        self.p = end;
        Ok(s)
    }
    fn u8(&mut self) -> DR<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> DR<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> DR<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn str(&mut self) -> DR<String> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|e| DbError::Malformed(e.to_string()))
    }
    fn bytes(&mut self) -> DR<Bytes> {
        let n = self.u32()? as usize;
        let start = self.p;
        let raw = self.take(n)?;
        Ok(match self.shared {
            // Zero-copy: a 200 KB media body decoded off the wire stays a
            // view into the frame the transport delivered.
            Some(frame) => frame.slice(start..start + n),
            None => Bytes::copy_from_slice(raw),
        })
    }
    fn id(&mut self) -> DR<MhegId> {
        Ok(MhegId::new(self.u32()?, self.u64()?))
    }
    fn done(&self) -> DR<()> {
        if self.p == self.d.len() {
            Ok(())
        } else {
            Err(DbError::Malformed("trailing bytes".into()))
        }
    }
}

fn truncated() -> DbError {
    DbError::Malformed("truncated".into())
}

fn write_media(w: &mut W, m: &MediaObject) {
    w.u64(m.id.0);
    w.str(&m.name);
    w.u8(m.format.wire_tag());
    w.u64(m.duration.as_micros());
    w.u32(m.dims.width);
    w.u32(m.dims.height);
    w.bytes(&m.data);
}

fn read_media(r: &mut R<'_>) -> DR<MediaObject> {
    let id = MediaId(r.u64()?);
    let name = r.str()?;
    let format = MediaFormat::from_wire_tag(r.u8()?)
        .ok_or_else(|| DbError::Malformed("bad media format".into()))?;
    let duration = SimDuration::from_micros(r.u64()?);
    let dims = VideoDims::new(r.u32()?, r.u32()?);
    let data = r.bytes()?;
    Ok(MediaObject::new(id, name, format, duration, dims, data))
}

fn write_object(w: &mut W, o: &MhegObject) {
    let enc = encode_object(o, WireFormat::Tlv);
    w.bytes(&enc);
}

fn read_object(r: &mut R<'_>) -> DR<MhegObject> {
    let raw = r.bytes()?;
    decode_object(&raw, WireFormat::Tlv).map_err(|e| DbError::Malformed(e.to_string()))
}

fn write_tree_node(w: &mut W, node: &crate::index::KeywordNode) {
    w.u32(node.documents.len() as u32);
    for d in &node.documents {
        w.id(*d);
    }
    w.u32(node.children.len() as u32);
    for (name, child) in &node.children {
        w.str(name);
        write_tree_node(w, child);
    }
}

fn read_tree_into(r: &mut R<'_>, tree: &mut KeywordTree, path: &str) -> DR<()> {
    let ndocs = r.u32()? as usize;
    for _ in 0..ndocs {
        let d = r.id()?;
        tree.insert(path, d);
    }
    let nchildren = r.u32()? as usize;
    for _ in 0..nchildren {
        let name = r.str()?;
        let sub = if path.is_empty() {
            name.clone()
        } else {
            format!("{path}/{name}")
        };
        read_tree_into(r, tree, &sub)?;
    }
    Ok(())
}

// ---------- request codec ----------

impl Request {
    /// Encode an enveloped request with no trace context.
    pub fn encode(&self, req_id: u64) -> Bytes {
        self.encode_traced(req_id, 0)
    }

    /// Encode an enveloped request carrying a trace context (the
    /// client's request span id; 0 = untraced). The trace rides right
    /// after the correlation id, before the operation tag.
    pub fn encode_traced(&self, req_id: u64, trace: u64) -> Bytes {
        let mut w = W::new();
        w.u64(req_id);
        w.u64(trace);
        match self {
            Request::ListDocs => w.u8(1),
            Request::GetDoc { name } => {
                w.u8(2);
                w.str(name);
            }
            Request::GetObject { id } => {
                w.u8(3);
                w.id(*id);
            }
            Request::GetCourseware { root } => {
                w.u8(4);
                w.id(*root);
            }
            Request::GetContent { media } => {
                w.u8(5);
                w.u64(media.0);
            }
            Request::GetKeywordTree => w.u8(6),
            Request::QueryKeyword { keyword, subtree } => {
                w.u8(7);
                w.str(keyword);
                w.u8(*subtree as u8);
            }
            Request::PutObject { object } => {
                w.u8(8);
                write_object(&mut w, object);
            }
            Request::PutContent { media } => {
                w.u8(9);
                write_media(&mut w, media);
            }
        }
        w.fin()
    }

    /// Decode an enveloped request.
    pub fn decode(data: &[u8]) -> DR<Envelope<Request>> {
        Self::decode_r(R::new(data))
    }

    /// Decode an enveloped request whose byte fields (media bodies,
    /// encoded objects) alias the frame instead of being copied.
    pub fn decode_shared(frame: &Bytes) -> DR<Envelope<Request>> {
        Self::decode_r(R::new_shared(frame))
    }

    fn decode_r(mut r: R<'_>) -> DR<Envelope<Request>> {
        let req_id = r.u64()?;
        let trace = r.u64()?;
        let body = match r.u8()? {
            1 => Request::ListDocs,
            2 => Request::GetDoc { name: r.str()? },
            3 => Request::GetObject { id: r.id()? },
            4 => Request::GetCourseware { root: r.id()? },
            5 => Request::GetContent {
                media: MediaId(r.u64()?),
            },
            6 => Request::GetKeywordTree,
            7 => Request::QueryKeyword {
                keyword: r.str()?,
                subtree: r.u8()? != 0,
            },
            8 => Request::PutObject {
                object: read_object(&mut r)?,
            },
            9 => Request::PutContent {
                media: read_media(&mut r)?,
            },
            t => return Err(DbError::Malformed(format!("unknown request tag {t}"))),
        };
        r.done()?;
        Ok(Envelope {
            req_id,
            trace,
            body,
        })
    }
}

// ---------- response codec ----------

impl Response {
    /// Encode an enveloped response at failover epoch 0 (single-server
    /// deployments and tests).
    pub fn encode(&self, req_id: u64) -> Bytes {
        self.encode_with_epoch(req_id, 0)
    }

    /// Encode an enveloped response stamped with the answering server's
    /// failover `epoch`. The epoch rides right after the correlation id,
    /// so clients can reject a stale primary's answer without decoding
    /// the body.
    pub fn encode_with_epoch(&self, req_id: u64, epoch: u64) -> Bytes {
        self.encode_with_epoch_traced(req_id, epoch, 0)
    }

    /// Encode an enveloped response stamped with the failover `epoch`
    /// and echoing the request's trace context (0 = untraced). The
    /// trace rides after the epoch so [`peek_response_trace`] can read
    /// it without decoding the body.
    pub fn encode_with_epoch_traced(&self, req_id: u64, epoch: u64, trace: u64) -> Bytes {
        let mut w = W::new();
        w.u64(req_id);
        w.u64(epoch);
        w.u64(trace);
        match self {
            Response::DocList(list) => {
                w.u8(1);
                w.u32(list.len() as u32);
                for (id, name) in list {
                    w.id(*id);
                    w.str(name);
                }
            }
            Response::Objects(objs) => {
                w.u8(2);
                w.u32(objs.len() as u32);
                for o in objs {
                    write_object(&mut w, o);
                }
            }
            Response::Content(m) => {
                w.u8(3);
                write_media(&mut w, m);
            }
            Response::KeywordTree(t) => {
                w.u8(4);
                write_tree_node(&mut w, t.root());
            }
            Response::DocIds(ids) => {
                w.u8(5);
                w.u32(ids.len() as u32);
                for id in ids {
                    w.id(*id);
                }
            }
            Response::Ack => w.u8(6),
            Response::Err(e) => {
                w.u8(7);
                match e {
                    DbError::NotFound(s) => {
                        w.u8(1);
                        w.str(s);
                    }
                    DbError::Malformed(s) => {
                        w.u8(2);
                        w.str(s);
                    }
                    DbError::Unavailable(s) => {
                        w.u8(3);
                        w.str(s);
                    }
                    // Local-only error; degrade to a malformed report if it
                    // somehow reaches the wire.
                    DbError::UnexpectedResponse(want) => {
                        w.u8(2);
                        w.str(want);
                    }
                }
            }
        }
        w.fin()
    }

    /// Decode an enveloped response, discarding the epoch stamp.
    pub fn decode(data: &[u8]) -> DR<Envelope<Response>> {
        Ok(Self::decode_with_epoch(data)?.0)
    }

    /// Decode an enveloped response along with the server's failover
    /// epoch.
    pub fn decode_with_epoch(data: &[u8]) -> DR<(Envelope<Response>, u64)> {
        Self::decode_with_epoch_r(R::new(data))
    }

    /// Like [`Response::decode_with_epoch`], but byte fields (media
    /// bodies) alias the frame instead of being copied out of it.
    pub fn decode_with_epoch_shared(frame: &Bytes) -> DR<(Envelope<Response>, u64)> {
        Self::decode_with_epoch_r(R::new_shared(frame))
    }

    fn decode_with_epoch_r(mut r: R<'_>) -> DR<(Envelope<Response>, u64)> {
        let req_id = r.u64()?;
        let epoch = r.u64()?;
        let trace = r.u64()?;
        let body = match r.u8()? {
            1 => {
                let n = r.u32()? as usize;
                let mut list = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let id = r.id()?;
                    let name = r.str()?;
                    list.push((id, name));
                }
                Response::DocList(list)
            }
            2 => {
                let n = r.u32()? as usize;
                let mut objs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    objs.push(read_object(&mut r)?);
                }
                Response::Objects(objs)
            }
            3 => Response::Content(read_media(&mut r)?),
            4 => {
                let mut tree = KeywordTree::new();
                read_tree_into(&mut r, &mut tree, "")?;
                Response::KeywordTree(tree)
            }
            5 => {
                let n = r.u32()? as usize;
                let mut ids = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    ids.push(r.id()?);
                }
                Response::DocIds(ids)
            }
            6 => Response::Ack,
            7 => {
                let kind = r.u8()?;
                let msg = r.str()?;
                Response::Err(match kind {
                    1 => DbError::NotFound(msg),
                    3 => DbError::Unavailable(msg),
                    _ => DbError::Malformed(msg),
                })
            }
            t => return Err(DbError::Malformed(format!("unknown response tag {t}"))),
        };
        r.done()?;
        Ok((
            Envelope {
                req_id,
                trace,
                body,
            },
            epoch,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mits_mheg::{ClassLibrary, GenericValue};

    fn sample_object() -> MhegObject {
        let mut lib = ClassLibrary::new(4);
        let id = lib.value_content("v", GenericValue::Str("x<y>&\"".into()));
        lib.get(id).unwrap().clone()
    }

    fn sample_media() -> MediaObject {
        MediaObject::new(
            MediaId(12),
            "intro.mpg",
            MediaFormat::Mpeg,
            SimDuration::from_secs(30),
            VideoDims::new(320, 240),
            Bytes::from(vec![1, 2, 3, 4, 5]),
        )
    }

    #[test]
    fn all_requests_round_trip() {
        let reqs = vec![
            Request::ListDocs,
            Request::GetDoc {
                name: "ATM Course".into(),
            },
            Request::GetObject {
                id: MhegId::new(3, 9),
            },
            Request::GetCourseware {
                root: MhegId::new(3, 1),
            },
            Request::GetContent { media: MediaId(42) },
            Request::GetKeywordTree,
            Request::QueryKeyword {
                keyword: "telecom/atm".into(),
                subtree: true,
            },
            Request::PutObject {
                object: sample_object(),
            },
            Request::PutContent {
                media: sample_media(),
            },
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            let wire = req.encode(i as u64);
            let env = Request::decode(&wire).unwrap_or_else(|e| panic!("{req:?}: {e}"));
            assert_eq!(env.req_id, i as u64);
            assert_eq!(env.body, req);
        }
    }

    #[test]
    fn all_responses_round_trip() {
        let mut tree = KeywordTree::new();
        tree.insert("telecom/atm", MhegId::new(1, 1));
        tree.insert("telecom", MhegId::new(1, 2));
        let resps = vec![
            Response::DocList(vec![
                (MhegId::new(1, 1), "A".into()),
                (MhegId::new(1, 2), "B".into()),
            ]),
            Response::Objects(vec![sample_object()]),
            Response::Content(sample_media()),
            Response::KeywordTree(tree),
            Response::DocIds(vec![MhegId::new(1, 1)]),
            Response::Ack,
            Response::Err(DbError::NotFound("nope".into())),
            Response::Err(DbError::Malformed("bad".into())),
            Response::Err(DbError::Unavailable("queue full".into())),
        ];
        for (i, resp) in resps.into_iter().enumerate() {
            let wire = resp.encode(100 + i as u64);
            let env = Response::decode(&wire).unwrap_or_else(|e| panic!("{resp:?}: {e}"));
            assert_eq!(env.req_id, 100 + i as u64);
            assert_eq!(env.body, resp);
        }
    }

    #[test]
    fn truncation_rejected() {
        let wire = Request::GetDoc {
            name: "hello".into(),
        }
        .encode(1);
        for cut in 0..wire.len() {
            assert!(Request::decode(&wire[..cut]).is_err(), "cut {cut}");
        }
        let wire = Response::Content(sample_media()).encode(1);
        for cut in 0..wire.len() {
            assert!(Response::decode(&wire[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut wire = Request::ListDocs.encode(1).to_vec();
        wire.push(0);
        assert!(Request::decode(&wire).is_err());
    }

    #[test]
    fn unknown_tags_rejected() {
        let mut w = W::new();
        w.u64(1);
        w.u64(0); // trace
        w.u8(200);
        assert!(Request::decode(&w.fin()).is_err());
    }

    #[test]
    fn trace_context_round_trips_on_both_directions() {
        let wire = Request::ListDocs.encode_traced(5, 77);
        let env = Request::decode(&wire).unwrap();
        assert_eq!((env.req_id, env.trace), (5, 77));
        // The untraced shim stamps 0.
        assert_eq!(
            Request::decode(&Request::ListDocs.encode(5)).unwrap().trace,
            0
        );

        let wire = Response::Ack.encode_with_epoch_traced(5, 3, 77);
        assert_eq!(peek_req_id(&wire), Some(5));
        assert_eq!(peek_response_trace(&wire), Some(77));
        let (env, epoch) = Response::decode_with_epoch(&wire).unwrap();
        assert_eq!((env.req_id, epoch, env.trace), (5, 3, 77));
        assert_eq!(peek_response_trace(&wire[..20]), None);
    }

    #[test]
    fn epoch_rides_after_the_correlation_id() {
        let wire = Response::Ack.encode_with_epoch(7, 42);
        assert_eq!(peek_req_id(&wire), Some(7));
        let (env, epoch) = Response::decode_with_epoch(&wire).unwrap();
        assert_eq!((env.req_id, epoch), (7, 42));
        assert_eq!(env.body, Response::Ack);
        // The epoch-less shims agree: encode stamps 0, decode discards.
        let (env, epoch) = Response::decode_with_epoch(&Response::Ack.encode(9)).unwrap();
        assert_eq!((env.req_id, epoch), (9, 0));
        assert_eq!(Response::decode(&wire).unwrap().req_id, 7);
    }
}
