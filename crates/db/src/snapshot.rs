//! Checkpoints: a snapshot is a *compacted log*.
//!
//! A checkpoint writes the server's entire state as ordinary WAL frames
//! (PutObject / PutContent records carrying exact versions) behind a
//! small header, then truncates the live log — recovery replays the
//! snapshot first and the WAL tail after it, through one tolerant
//! reader. Reusing the frame codec means the snapshot inherits the CRC
//! protection and the torn-tail discipline for free.
//!
//! ## Format
//!
//! ```text
//! [magic: u32 BE] [through_seq: u64 BE] [frames...]
//! ```
//!
//! `through_seq` is the journal cursor at checkpoint time: every record
//! with `seq < through_seq` is folded into the snapshot, so recovery
//! applies only WAL records with `seq >= through_seq` on top.

use crate::wal::{encode_frame, read_frames, ReplayReport, WalRecord};
use bytes::{BufMut, Bytes, BytesMut};

/// Snapshot file magic ("MSNP").
pub const SNAPSHOT_MAGIC: u32 = 0x4D53_4E50;

/// Serialize a snapshot holding `records`, folding the log up to (not
/// including) `through_seq`.
pub fn write_snapshot(through_seq: u64, records: &[WalRecord]) -> Bytes {
    let mut out = BytesMut::with_capacity(12 + records.len() * 64);
    out.put_u32(SNAPSHOT_MAGIC);
    out.put_u64(through_seq);
    for rec in records {
        // Snapshot frames reuse the journal cursor as their seq: they
        // represent "state as of through_seq", and replaying them is
        // idempotent regardless of the number.
        out.put_slice(&encode_frame(through_seq, &rec.encode()));
    }
    out.freeze()
}

/// Parse a snapshot. Tolerant like WAL replay: an empty or absent device
/// yields a clean empty snapshot; a bad magic or torn frame keeps the
/// good prefix and warns in the report. Returns `(through_seq, records,
/// report)`.
pub fn read_snapshot(data: &[u8]) -> (u64, Vec<WalRecord>, ReplayReport) {
    if data.is_empty() {
        return (0, Vec::new(), ReplayReport::default());
    }
    if data.len() < 12 || u32::from_be_bytes(data[..4].try_into().expect("4")) != SNAPSHOT_MAGIC {
        let report = ReplayReport {
            torn_tail: true,
            truncated_bytes: data.len() as u64,
            warning: Some("snapshot header unreadable; ignoring snapshot".into()),
            ..Default::default()
        };
        return (0, Vec::new(), report);
    }
    let through_seq = u64::from_be_bytes(data[4..12].try_into().expect("8"));
    let (frames, mut report) = read_frames(&data[12..]);
    report.bytes += 12;
    (
        through_seq,
        frames.into_iter().map(|(_, r)| r).collect(),
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mits_mheg::{ClassLibrary, GenericValue};

    fn records() -> Vec<WalRecord> {
        let mut lib = ClassLibrary::new(5);
        let a = lib.value_content("a", GenericValue::Int(1));
        let b = lib.value_content("b", GenericValue::Int(2));
        let mut oa = lib.get(a).unwrap().clone();
        oa.info.version = 3;
        let ob = lib.get(b).unwrap().clone();
        vec![
            WalRecord::PutObject { object: oa },
            WalRecord::PutObject { object: ob },
        ]
    }

    #[test]
    fn snapshot_round_trips_with_versions() {
        let recs = records();
        let snap = write_snapshot(17, &recs);
        let (through, out, report) = read_snapshot(&snap);
        assert_eq!(through, 17);
        assert_eq!(out, recs);
        assert!(!report.torn_tail);
        // Versions inside the snapshot are exact.
        match &out[0] {
            WalRecord::PutObject { object } => assert_eq!(object.info.version, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_and_garbage_snapshots_never_panic() {
        let (through, recs, report) = read_snapshot(&[]);
        assert_eq!((through, recs.len()), (0, 0));
        assert!(!report.torn_tail, "absence is not corruption");
        let (through, recs, report) = read_snapshot(b"not a snapshot at all");
        assert_eq!((through, recs.len()), (0, 0));
        assert!(report.torn_tail);
        assert!(report.warning.is_some());
    }

    #[test]
    fn torn_snapshot_keeps_good_prefix() {
        let snap = write_snapshot(5, &records());
        let cut = snap.len() - 4;
        let (through, out, report) = read_snapshot(&snap[..cut]);
        assert_eq!(through, 5);
        assert_eq!(out.len(), 1, "second frame torn off");
        assert!(report.torn_tail);
    }
}
