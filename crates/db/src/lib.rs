//! # mits-db — the courseware database
//!
//! "The courseware database is a large, distributed, object-oriented,
//! multimedia database. It stores all the MHEG objects as well as the
//! content data of these objects" (§3.4.2). The prototype used ObjectStore
//! on a SUN/ULTRA; this crate is the in-Rust equivalent, preserving the
//! two design decisions the paper highlights:
//!
//! 1. **Content is stored separately from scenario** — MHEG objects
//!    reference media by id; "content objects of large size are
//!    transmitted only at the time they are requested" ([`store`]).
//! 2. **Client-server access** over the network with a small request/
//!    response protocol ([`protocol`]), so "users are hidden from the
//!    details of data operation" (Fig 3.5). The client module reproduces
//!    the prototype's `Get_List_Doc()` / `Get_Selected_Doc()` APIs plus
//!    the "future work" APIs the thesis names: `GetKeywordTree()` and
//!    `GetDocByKeyword(keyword)` ([`client`], [`index`]).
//!
//! The server ([`server`]) is deterministic: each request yields a
//! response plus a modelled service time (CPU + storage I/O), which
//! `mits-core` feeds into the discrete-event clock for experiment F3.5
//! (client-server scalability).

pub mod client;
pub mod index;
pub mod protocol;
pub mod ring;
pub mod router;
pub mod server;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use client::{
    ClientAction, ClientCache, ClientEvent, DbClient, DbClientMetrics, Pending, RetryPolicy,
};
pub use index::KeywordTree;
pub use protocol::{
    peek_req_id, peek_response_trace, DbError, Envelope, Request, RequestKind, Response,
};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use router::{first_objects, merge_doc_ids, merge_doc_lists, EdgeCache, Route, ShardRouter};
pub use server::{CheckpointStats, DbServer, RecoveryReport, ServiceModel};
pub use snapshot::{read_snapshot, write_snapshot, SNAPSHOT_MAGIC};
pub use store::{ContentStore, ObjectStore};
pub use wal::{
    crc32, decode_frame, encode_frame, read_frames, FileLogDevice, LogDevice, MemLogDevice,
    ReplayReport, SharedLogDevice, Wal, WalRecord,
};
