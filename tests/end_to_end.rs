//! Cross-crate integration: the full courseware life cycle of Fig 3.3 —
//! production → authoring → storage → delivery → presentation — over the
//! simulated network, including failure injection and narrowband access.

use mits::atm::LinkProfile;
use mits::author::{
    compile_imd, validate_imd, Behavior, BehaviorAction, BehaviorCondition, ElementKind,
    ImDocument, Scene, Section, Subsection, TimelineEntry,
};
use mits::core::{ClientId, CodSession, MitsSystem, SystemConfig};
use mits::media::{CaptureSpec, MediaFormat, MediaObject, ProductionCenter, VideoDims};
use mits::mheg::{MhegId, MhegObject};
use mits::sim::SimDuration;

/// A three-scene course with interaction and shared media.
fn build_course(seed: u64) -> (Vec<MhegObject>, Vec<MediaObject>, MhegId, String) {
    let mut studio = ProductionCenter::new(seed);
    let intro = studio.capture(&CaptureSpec::video(
        "intro.mpg",
        MediaFormat::Mpeg,
        SimDuration::from_secs(1),
        VideoDims::new(320, 240),
    ));
    let shared_logo = studio.capture(&CaptureSpec::image(
        "logo.gif",
        MediaFormat::Gif,
        VideoDims::new(100, 60),
    ));
    let audio = studio.capture(&CaptureSpec::audio(
        "talk.wav",
        MediaFormat::Wav,
        SimDuration::from_secs(1),
    ));
    let mut doc = ImDocument::new("Integration Course");
    doc.keywords = vec!["telecom/atm/integration".into()];
    doc.sections.push(Section {
        title: "sec".into(),
        subsections: vec![Subsection {
            title: "sub".into(),
            scenes: vec![
                Scene::new("one")
                    .element("v", ElementKind::Media((&intro).into()))
                    .element("logo", ElementKind::Media((&shared_logo).into()))
                    .element("skip", ElementKind::Button("Skip".into()))
                    .entry(TimelineEntry::at_start("v"))
                    .entry(TimelineEntry::at_start("logo").at(300, 0))
                    .entry(TimelineEntry::at_start("skip").at(0, 220))
                    .behavior(Behavior::when(
                        BehaviorCondition::Clicked("skip".into()),
                        vec![BehaviorAction::NextScene],
                    )),
                Scene::new("two")
                    .element("a", ElementKind::Media((&audio).into()))
                    .element("logo", ElementKind::Media((&shared_logo).into()))
                    .entry(TimelineEntry::at_start("a"))
                    .entry(TimelineEntry::at_start("logo").at(300, 0)),
                Scene::new("three")
                    .element("t", ElementKind::Caption("fin".into()))
                    .entry(
                        TimelineEntry::at_start("t").for_duration(SimDuration::from_millis(500)),
                    ),
            ],
        }],
    });
    assert!(validate_imd(&doc).is_empty());
    let compiled = compile_imd(77, &doc);
    (
        compiled.objects,
        studio.catalogue().to_vec(),
        compiled.root,
        "Integration Course".to_string(),
    )
}

#[test]
fn publish_fetch_present_over_broadband() {
    let (objects, media, root, name) = build_course(1);
    let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
    let publish_time = sys.publish(&objects, &media).unwrap();
    assert!(publish_time > SimDuration::ZERO);
    let mut session = CodSession::open(&mut sys, ClientId(0), root, &name).unwrap();
    session.start().unwrap();
    session.auto_play(SimDuration::from_secs(15)).unwrap();
    assert!(session.report.completed, "{:?}", session.report);
    // Shared logo fetched once, reused in scene two from the cache: only
    // one stall entry can carry the audio fetch.
    let (hits, _) = sys.client_cache_stats(ClientId(0));
    assert!(hits >= 1, "logo cache hit expected");
}

#[test]
fn course_survives_lossy_network() {
    let (objects, media, root, name) = build_course(2);
    // 0.1 % cell loss: AAL5 PDUs die regularly; the ARQ must recover all.
    let lossy = LinkProfile {
        loss_rate: 1e-3,
        ..LinkProfile::atm_oc3()
    };
    let mut sys = MitsSystem::build(&SystemConfig::broadband(1).with_access(lossy)).unwrap();
    sys.load_directly(objects, media.clone());
    let mut session = CodSession::open(&mut sys, ClientId(0), root, &name).unwrap();
    session.start().unwrap();
    session.auto_play(SimDuration::from_secs(15)).unwrap();
    assert!(
        session.report.completed,
        "ARQ recovers losses: {:?}",
        session.report
    );
}

#[test]
fn interactive_session_over_isdn() {
    let (objects, media, root, name) = build_course(3);
    let mut sys =
        MitsSystem::build(&SystemConfig::broadband(1).with_access(LinkProfile::isdn_128k()))
            .unwrap();
    sys.load_directly(objects, media);
    let mut session = CodSession::open(&mut sys, ClientId(0), root, &name).unwrap();
    session.start().unwrap();
    // Startup over ISDN: ~190 kB of MPEG ≈ 12+ s.
    assert!(
        session.report.startup().as_secs_f64() > 5.0,
        "ISDN startup {}",
        session.report.startup()
    );
    session.play(SimDuration::from_millis(300)).unwrap();
    session.click("Skip").unwrap();
    assert_eq!(session.current_unit(), Some(1));
    session.auto_play(SimDuration::from_secs(15)).unwrap();
    assert!(session.report.completed);
}

#[test]
fn two_students_take_the_course_independently() {
    let (objects, media, root, name) = build_course(4);
    let mut sys = MitsSystem::build(&SystemConfig::broadband(2)).unwrap();
    sys.load_directly(objects, media);
    // Student 0 finishes first, then student 1 (virtual time is shared,
    // state must not leak between endpoints).
    for c in 0..2 {
        let mut session = CodSession::open(&mut sys, ClientId(c), root, &name).unwrap();
        session.start().unwrap();
        session.auto_play(SimDuration::from_secs(15)).unwrap();
        assert!(session.report.completed, "client {c}");
        assert!(
            session.report.bytes_transferred > 0,
            "client {c} paid the network"
        );
    }
}

#[test]
fn library_queries_match_course_keywords() {
    let (objects, media, root, _) = build_course(5);
    let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
    sys.publish(&objects, &media).unwrap();
    let (ids, _) = sys.get_doc_by_keyword(ClientId(0), "telecom").unwrap();
    assert_eq!(ids, vec![root]);
    let (ids, _) = sys
        .get_doc_by_keyword(ClientId(0), "telecom/atm/integration")
        .unwrap();
    assert_eq!(ids, vec![root]);
    let (ids, _) = sys.get_doc_by_keyword(ClientId(0), "biology").unwrap();
    assert!(ids.is_empty());
}

#[test]
fn scalability_latency_grows_with_client_count() {
    // F3.5 shape: mean fetch latency grows as concurrent clients contend
    // for the server and its backbone link.
    let (objects, media, root, _) = build_course(6);
    let mut latencies = Vec::new();
    for &n in &[1usize, 8] {
        let mut sys = MitsSystem::build(&SystemConfig::broadband(n)).unwrap();
        sys.load_directly(objects.clone(), media.clone());
        // All clients fetch the scenario closure back-to-back; measure the
        // total virtual time for the batch.
        let started = sys.now();
        for c in 0..n {
            sys.fetch_courseware(ClientId(c), root).unwrap();
        }
        let total = sys.now().since(started).as_secs_f64() / n as f64;
        latencies.push(total);
    }
    assert!(
        latencies[1] > latencies[0] * 0.5,
        "per-client cost should not shrink with contention: {latencies:?}"
    );
}

#[test]
fn corrupted_request_rejected_not_crashing() {
    use mits::db::Request;
    // Protocol robustness: a malformed frame must decode to an error.
    let wire = Request::ListDocs.encode(1);
    for cut in 0..wire.len() {
        assert!(Request::decode(&wire[..cut]).is_err());
    }
    let mut bad = wire.to_vec();
    bad[16] = 99; // unknown tag (after the req-id and trace fields)
    assert!(Request::decode(&bad).is_err());
}

#[test]
fn fetch_and_play_survives_seeded_cell_loss() {
    use mits::atm::{FaultPlan, LinkFaults};
    use mits::db::RetryPolicy;
    // 5% cell loss on the student's access uplink (requests and ACKs):
    // the full fetch-and-play pipeline must still complete, and because
    // every fault draws from the seeded fault RNG, two runs must agree
    // on every retry/timeout/loss count.
    let run = || {
        let (objects, media, root, name) = build_course(7);
        let cfg = SystemConfig::broadband(1)
            .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(60)));
        let mut sys = MitsSystem::build(&cfg).unwrap();
        let plan = FaultPlan::none().with_link(
            sys.client_host(ClientId(0)),
            sys.switch(),
            LinkFaults::loss(0.05),
        );
        sys.net.set_fault_plan(plan);
        sys.load_directly(objects, media);
        // A browsing burst before the course starts: each query pushes a
        // request frame and an ACK through the lossy uplink.
        for _ in 0..20 {
            sys.get_list_doc(ClientId(0)).unwrap();
        }
        let mut session = CodSession::open(&mut sys, ClientId(0), root, &name).unwrap();
        session.start().unwrap();
        session.auto_play(SimDuration::from_secs(15)).unwrap();
        assert!(session.report.completed, "{:?}", session.report);
        assert!(!session.report.is_degraded(), "all content arrived");
        let m = sys.client_metrics(ClientId(0)).clone();
        let faults = sys.net.fault_stats();
        (
            m.attempts,
            m.retries,
            m.timeouts,
            m.completed,
            faults.total_losses(),
            faults.faulted_cells,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "seeded fault schedule must replay exactly");
    assert!(a.4 > 0, "the plan destroyed cells: {a:?}");
    assert!(
        a.3 >= 23,
        "queries + objects + content all completed: {a:?}"
    );
}
