//! Integration of the TeleSchool services (§5.2.1) around one cohort:
//! registration, classroom, bulletin, discussion, exercises, billing,
//! bookmarks — the "seamless integrated environment" claim.

use mits::mheg::MhegId;
use mits::navigator::{BookmarkStore, NavigatorUi, Screen, UiEvent, UiOutcome};
use mits::school::{
    Answer, BillingLedger, BulletinBoard, Course, CourseCode, DiscussionRoom, ExerciseBank,
    Facility, Grade, ProblemKind, ServiceKind, StudentRegistry,
};
use mits::sim::{SimDuration, SimTime};

fn school_with_course() -> StudentRegistry {
    let mut reg = StudentRegistry::new();
    reg.add_program("Telecommunications");
    reg.add_course(Course {
        code: CourseCode("TEL101".into()),
        name: "ATM Networks".into(),
        program: "Telecommunications".into(),
        planned_sessions: 5,
        courseware: Some(MhegId::new(1, 1)),
    })
    .unwrap();
    reg
}

#[test]
fn cohort_registers_and_studies() {
    let mut school = school_with_course();
    let mut numbers = Vec::new();
    for i in 0..5 {
        let mut ui = NavigatorUi::new();
        ui.handle(UiEvent::ClickRegister, &mut school);
        ui.handle(
            UiEvent::SubmitGeneralInfo {
                name: format!("Student {i}"),
                address: format!("{i} Campus Rd"),
                email: format!("s{i}@uottawa.ca"),
            },
            &mut school,
        );
        ui.handle(
            UiEvent::SelectCourse(CourseCode("TEL101".into())),
            &mut school,
        );
        match ui.handle(UiEvent::FinishRegistration, &mut school) {
            UiOutcome::Registered(n) => numbers.push(n),
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(school.student_count(), 5);
    assert_eq!(school.enrollment_statistics()[0].1, 5);
    // Each studies a different number of sessions.
    for (i, n) in numbers.iter().enumerate() {
        for _ in 0..=i {
            school
                .record_session(*n, &CourseCode("TEL101".into()), Some(i as u32))
                .unwrap();
        }
    }
    let progress = school.progress_statistics();
    assert!(
        (progress[0].1 - 0.6).abs() < 1e-9,
        "1+2+3+4+5 of 25 sessions"
    );
}

#[test]
fn bulletin_and_exercise_interplay() {
    let mut school = school_with_course();
    let alice = school.register("Alice", "", "");
    let bob = school.register("Bob", "", "");

    let mut bank = ExerciseBank::new();
    let q = bank.add(
        "TEL101",
        "ATM cell size?",
        ProblemKind::MultipleChoice {
            options: vec!["48".into(), "53".into()],
            correct: 1,
        },
        10,
    );
    assert_eq!(
        bank.submit(alice, q, &Answer::Choice(1)).unwrap().grade,
        Grade::Correct
    );
    assert_eq!(
        bank.submit(bob, q, &Answer::Choice(0)).unwrap().grade,
        Grade::Incorrect
    );

    // The administration posts the mistake analysis to the board
    // (§5.2.1: "analysis of the common mistakes in an exercise").
    let mistakes = bank.mistake_analysis("TEL101");
    let mut board = BulletinBoard::new();
    let post = board.post(
        "exercise-help",
        "administration",
        SimTime::from_secs(3600),
        "Common mistakes in exercise 1",
        &format!(
            "problem {} missed by {:.0}%",
            mistakes[0].0,
            mistakes[0].1 * 100.0
        ),
    );
    assert_eq!(board.unread_count(bob), 1);
    board.mark_read(bob, post);
    assert_eq!(board.unread_count(bob), 0);
    assert_eq!(board.unread_count(alice), 1, "alice has not read it");

    // Contest standings.
    let standings = bank.standings("TEL101");
    assert_eq!(standings[0], (alice, 10));
    assert_eq!(standings[1], (bob, 0));
}

#[test]
fn discussion_room_by_platform_resources() {
    let mut school = school_with_course();
    let alice = school.register("Alice", "", "");
    let bob = school.register("Bob", "", "");
    // Alice is on the lab's ATM workstation; Bob dials in by modem.
    let alice_facility = Facility::best_for(155_000_000, true);
    let bob_facility = Facility::best_for(28_800, false);
    assert_eq!(alice_facility, Facility::Conference);
    assert_eq!(bob_facility, Facility::Email);
    // The room degrades to what everyone supports.
    let common = alice_facility.min(bob_facility);
    let mut room = DiscussionRoom::new("AAL5 questions", common);
    assert_eq!(room.facility, Facility::Email);
    room.join(alice);
    room.join(bob);
    assert!(room.say(alice, SimTime::ZERO, "why does one lost cell kill a PDU?"));
    assert!(room.say(bob, SimTime::from_secs(60), "the CRC covers the whole PDU"));
    assert_eq!(room.log().len(), 2);
}

#[test]
fn billing_accumulates_across_services() {
    let mut school = school_with_course();
    let alice = school.register("Alice", "", "");
    let mut ledger = BillingLedger::new();
    ledger.record(
        alice,
        ServiceKind::Registration,
        SimTime::ZERO,
        SimDuration::ZERO,
    );
    ledger.record(
        alice,
        ServiceKind::Classroom,
        SimTime::from_secs(100),
        SimDuration::from_secs(30 * 60),
    );
    ledger.record(
        alice,
        ServiceKind::Facilitation,
        SimTime::from_secs(4000),
        SimDuration::from_secs(5 * 60),
    );
    // $25 + 30 min × 5¢ + 5 min × 20¢ = $25 + $1.50 + $1.00.
    assert_eq!(ledger.balance(alice), 2_500_000 + 150_000 + 100_000);
    assert_eq!(ledger.statement(alice).len(), 3);
}

#[test]
fn bookmarks_follow_the_student() {
    let mut school = school_with_course();
    let alice = school.register("Alice", "", "");
    let mut bookmarks = BookmarkStore::new();
    let course_doc = MhegId::new(1, 1);
    bookmarks.add(alice, course_doc, Some(2), "good AAL5 figure");
    bookmarks.add(alice, course_doc, None, "whole course");
    assert_eq!(bookmarks.list(alice).len(), 2);
    assert_eq!(bookmarks.list(alice)[0].unit, Some(2));
    assert_eq!(bookmarks.referencing(course_doc), 2);
}

#[test]
fn navigator_guards_against_out_of_order_flows() {
    let mut school = school_with_course();
    let mut ui = NavigatorUi::new();
    // Cannot open the classroom before authenticating.
    let out = ui.handle(
        UiEvent::OpenClassroom(CourseCode("TEL101".into())),
        &mut school,
    );
    assert!(matches!(out, UiOutcome::Rejected(_)));
    // Cannot select a course before submitting the profile dialogs.
    ui.handle(UiEvent::ClickRegister, &mut school);
    let out = ui.handle(
        UiEvent::SelectCourse(CourseCode("TEL101".into())),
        &mut school,
    );
    assert!(matches!(out, UiOutcome::Rejected(_)));
    assert_eq!(
        ui.screen(),
        &Screen::RegisterGeneral,
        "stays on the profile dialog"
    );
}
