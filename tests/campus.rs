//! Campus lifecycle integration tests: the determinism contract of the
//! memory-bounded runner under work stealing, admission-window edges,
//! and retire-under-fault.
//!
//! The campus digest is the repo's best regression tripwire — it folds
//! every session's observables in student-index order, so any
//! scheduling leak (worker identity, steal order, admission timing)
//! shows up as a digest mismatch between thread counts.

use bytes::Bytes;
use mits::core::{Campus, CampusWorkload};
use mits::db::RetryPolicy;
use mits::media::{MediaFormat, MediaId, MediaObject, VideoDims};
use mits::mheg::{ClassLibrary, GenericValue};
use mits::sim::{SimDuration, SimTime};

fn workload(clips: usize, clip_bytes: usize) -> CampusWorkload {
    let mut lib = ClassLibrary::new(1);
    let v = lib.value_content("v", GenericValue::Int(1));
    let root = lib.container("Course", vec![v]);
    let media = (0..clips)
        .map(|i| {
            let data: Vec<u8> = (0..clip_bytes)
                .map(|j| ((i * 13 + j * 5) % 251) as u8)
                .collect();
            MediaObject::new(
                MediaId(700 + i as u64),
                format!("clip{i}.mpg"),
                MediaFormat::Mpeg,
                SimDuration::from_secs(1),
                VideoDims::new(160, 120),
                Bytes::from(data),
            )
        })
        .collect();
    CampusWorkload {
        objects: lib.into_objects(),
        media,
        root,
    }
}

/// Admit-order determinism at 1k students: the digest, merged metrics
/// and sampled-trace bundle must be byte-identical on 1, 2 and 8
/// threads (work stealing may run batches in any order; the frontier
/// merge must hide it), and identical again under an admission window
/// of 1 and of the whole population.
#[test]
fn thousand_students_are_deterministic_under_stealing_and_windows() {
    let students = 1000;
    let w = workload(1, 2048);
    let base = Campus::new(students, 42)
        .threads(1)
        .workload(w.clone())
        .run()
        .unwrap();
    assert_eq!(base.students, students);
    assert_eq!(
        base.metrics.counter("campus.sessions"),
        Some(students as u64)
    );

    let variants: [(usize, usize); 3] = [(2, 0), (8, 1), (8, students)];
    for (threads, window) in variants {
        let r = Campus::new(students, 42)
            .threads(threads)
            .max_concurrent(window)
            .workload(w.clone())
            .run()
            .unwrap();
        assert_eq!(
            base.digest, r.digest,
            "digest drifted at threads={threads} window={window}"
        );
        assert_eq!(base.bytes, r.bytes);
        assert_eq!(
            base.metrics.to_json(),
            r.metrics.to_json(),
            "metrics drifted at threads={threads} window={window}"
        );
        assert_eq!(
            base.traces_jsonl(),
            r.traces_jsonl(),
            "traces drifted at threads={threads} window={window}"
        );
    }
}

/// A session that dies mid-run (its database server crashes and never
/// restarts) still retires: the campus completes, the failure is
/// counted and folded into the digest, the dead session's trace is
/// tail-sampled — and all of it is thread-count invariant.
#[test]
fn crashed_session_retires_and_folds_into_the_rollup() {
    let w = workload(1, 2048);
    let campus = |threads: usize| {
        Campus::new(6, 77)
            .threads(threads)
            .workload(w.clone())
            .trace_sample_rate(0.0) // only tail sampling below
            .configure_sessions(|spec, config| {
                if spec.student == 3 {
                    // Student 3's server dies before the first fetch and
                    // never comes back; the bounded retry deadline turns
                    // that into a session failure instead of an endless
                    // ARQ storm.
                    config
                        .with_retry(
                            RetryPolicy::interactive().with_deadline(SimDuration::from_secs(2)),
                        )
                        .with_crash(SimTime::from_millis(1), 0)
                } else {
                    config
                }
            })
    };

    let base = campus(1).run().unwrap();
    assert_eq!(base.students, 6, "campus must complete despite the crash");
    assert_eq!(base.sessions_failed, 1);
    assert_eq!(base.metrics.counter("campus.sessions_failed"), Some(1));
    assert_eq!(base.metrics.counter("campus.sessions"), Some(6));
    assert_eq!(
        base.traces.len(),
        1,
        "the dead session must be tail-sampled"
    );
    assert_eq!(base.traces[0].student, 3);

    for threads in [2, 8] {
        let r = campus(threads).run().unwrap();
        assert_eq!(base.digest, r.digest, "threads={threads}");
        assert_eq!(base.metrics.to_json(), r.metrics.to_json());
        assert_eq!(base.traces_jsonl(), r.traces_jsonl());
        assert_eq!(r.sessions_failed, 1);
    }
}

/// The failure marker must reach the digest: a campus with the crash is
/// distinguishable from the same campus without it.
#[test]
fn failed_sessions_change_the_campus_digest() {
    let w = workload(1, 2048);
    let clean = Campus::new(4, 9)
        .threads(2)
        .workload(w.clone())
        .run()
        .unwrap();
    let faulty = Campus::new(4, 9)
        .threads(2)
        .workload(w.clone())
        .configure_sessions(|spec, config| {
            if spec.student == 2 {
                config
                    .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(2)))
                    .with_crash(SimTime::from_millis(1), 0)
            } else {
                config
            }
        })
        .run()
        .unwrap();
    assert_eq!(clean.sessions_failed, 0);
    assert_eq!(faulty.sessions_failed, 1);
    assert_ne!(clean.digest, faulty.digest);
}
