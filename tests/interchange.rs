//! Interchange integrity across the whole stack: a compiled courseware
//! shipped through either wire format (Fig 2.9) presents identically to
//! one loaded directly — the "real-time, reusable information interchange
//! through heterogeneous platforms" claim.

use mits::author::{
    compile_hyperdoc, compile_imd, ElementKind, HyperDocument, ImDocument, Scene, Section,
    Subsection, TimelineEntry,
};
use mits::media::{CaptureSpec, MediaFormat, ProductionCenter, VideoDims};
use mits::mheg::{decode_object, encode_object, MhegObject, PresentationEvent, WireFormat};
use mits::navigator::PresentationSession;
use mits::sim::{SimDuration, SimTime};

fn sample_course() -> (Vec<MhegObject>, &'static str) {
    let mut studio = ProductionCenter::new(11);
    let clip = studio.capture(&CaptureSpec::video(
        "clip.mpg",
        MediaFormat::Mpeg,
        SimDuration::from_secs(1),
        VideoDims::new(160, 120),
    ));
    let mut doc = ImDocument::new("Wire Course");
    doc.sections.push(Section {
        title: "s".into(),
        subsections: vec![Subsection {
            title: "ss".into(),
            scenes: vec![
                Scene::new("a")
                    .element("v", ElementKind::Media((&clip).into()))
                    .entry(TimelineEntry::at_start("v")),
                Scene::new("b")
                    .element("t", ElementKind::Caption("end".into()))
                    .entry(
                        TimelineEntry::at_start("t").for_duration(SimDuration::from_millis(300)),
                    ),
            ],
        }],
    });
    (compile_imd(88, &doc).objects, "Wire Course")
}

/// Run a presentation to completion, returning its event log rendered to
/// strings (timestamps included).
fn event_log(objects: Vec<MhegObject>, name: &str) -> Vec<String> {
    let mut p = PresentationSession::load(objects, name).unwrap();
    p.start().unwrap();
    let mut log = Vec::new();
    for step in 1..=40 {
        p.advance(SimTime::from_millis(step * 100)).unwrap();
        for e in p.events() {
            log.push(format!("{e:?}"));
        }
        if p.completed() {
            break;
        }
    }
    assert!(p.completed(), "presentation must finish");
    log
}

#[test]
fn tlv_shipment_presents_identically() {
    let (objects, name) = sample_course();
    let shipped: Vec<MhegObject> = objects
        .iter()
        .map(|o| {
            let wire = encode_object(o, WireFormat::Tlv);
            decode_object(&wire, WireFormat::Tlv).expect("decode")
        })
        .collect();
    assert_eq!(event_log(objects, name), event_log(shipped, name));
}

#[test]
fn sgml_shipment_presents_identically() {
    let (objects, name) = sample_course();
    let shipped: Vec<MhegObject> = objects
        .iter()
        .map(|o| {
            let wire = encode_object(o, WireFormat::Sgml);
            decode_object(&wire, WireFormat::Sgml).expect("decode")
        })
        .collect();
    assert_eq!(event_log(objects, name), event_log(shipped, name));
}

#[test]
fn cross_coded_objects_are_equal() {
    // Author encodes in SGML (editing-friendly), database re-encodes in
    // TLV (compact) — §2.2.2.4's heterogeneous-platform interchange.
    let (objects, _) = sample_course();
    for o in &objects {
        let via_sgml =
            decode_object(&encode_object(o, WireFormat::Sgml), WireFormat::Sgml).unwrap();
        let via_tlv =
            decode_object(&encode_object(&via_sgml, WireFormat::Tlv), WireFormat::Tlv).unwrap();
        assert_eq!(&via_tlv, o);
    }
}

#[test]
fn hyperdoc_ships_and_navigates_after_round_trip() {
    let doc = HyperDocument::figure_4_3_example();
    let compiled = compile_hyperdoc(89, &doc);
    let shipped: Vec<MhegObject> = compiled
        .objects
        .iter()
        .map(|o| decode_object(&encode_object(o, WireFormat::Tlv), WireFormat::Tlv).unwrap())
        .collect();
    let mut p = PresentationSession::load(shipped, "Fig 4.3 navigation example").unwrap();
    p.start().unwrap();
    p.click("Test Your Knowledge").unwrap();
    p.click("53 bytes").unwrap();
    assert_eq!(
        p.current_unit(),
        Some(4),
        "navigation works on shipped objects"
    );
}

#[test]
fn presentation_events_deterministic_across_runs() {
    let (objects, name) = sample_course();
    let a = event_log(objects.clone(), name);
    let b = event_log(objects, name);
    assert_eq!(a, b);
    assert!(a.iter().any(|e| e.contains("Started")));
    assert!(a.iter().any(|e| e.contains("Completed")));
}

#[test]
fn wire_size_accounting() {
    // TLV is the compact transfer syntax; SGML is the readable one.
    let (objects, _) = sample_course();
    let tlv: usize = objects
        .iter()
        .map(|o| encode_object(o, WireFormat::Tlv).len())
        .sum();
    let sgml: usize = objects
        .iter()
        .map(|o| encode_object(o, WireFormat::Sgml).len())
        .sum();
    assert!(tlv < sgml, "TLV {tlv} >= SGML {sgml}?");
    // Sanity: a whole two-scene course's scenario fits in a few kB —
    // the separate-content design keeps scenarios light (§3.4.2).
    assert!(tlv < 16 * 1024, "scenario bytes: {tlv}");
}

#[test]
fn unused_import_guard() {
    // PresentationEvent is used in event_log via Debug formatting.
    let _ = std::mem::size_of::<PresentationEvent>();
}
