//! Durability and failover, end to end: a server killed mid-session
//! comes back from its write-ahead log with the exact store state a
//! crash-free run would have, and a hot-standby replica keeps the
//! telelearning session running while the primary is down.

use mits::author::{
    compile_imd, ElementKind, ImDocument, Scene, Section, Subsection, TimelineEntry,
};
use mits::core::{ClientId, CodSession, MitsSystem, SystemConfig};
use mits::db::{RetryPolicy, SharedLogDevice};
use mits::media::{CaptureSpec, MediaFormat, MediaObject, ProductionCenter, VideoDims};
use mits::mheg::{MhegId, MhegObject};
use mits::navigator::DurableBookmarks;
use mits::school::StudentNumber;
use mits::sim::{SimDuration, SimTime};

/// A small two-scene course (video then image).
fn course(seed: u32) -> (Vec<MhegObject>, Vec<MediaObject>, MhegId, String) {
    let mut pc = ProductionCenter::new(seed as u64);
    let clip = pc.capture(&CaptureSpec::video(
        "intro.mpg",
        MediaFormat::Mpeg,
        SimDuration::from_millis(500),
        VideoDims::new(160, 120),
    ));
    let img = pc.capture(&CaptureSpec::image(
        "diagram.gif",
        MediaFormat::Gif,
        VideoDims::new(320, 240),
    ));
    let mut doc = ImDocument::new("Durable Course");
    doc.keywords = vec!["telecom/atm".into()];
    doc.sections.push(Section {
        title: "s".into(),
        subsections: vec![Subsection {
            title: "ss".into(),
            scenes: vec![
                Scene::new("video")
                    .element("v", ElementKind::Media((&clip).into()))
                    .entry(TimelineEntry::at_start("v")),
                Scene::new("image")
                    .element("d", ElementKind::Media((&img).into()))
                    .entry(TimelineEntry::at_start("d").for_duration(SimDuration::from_secs(1))),
            ],
        }],
    });
    let compiled = compile_imd(seed, &doc);
    (
        compiled.objects,
        vec![clip, img],
        compiled.root,
        "Durable Course".to_string(),
    )
}

/// The tentpole acceptance test: a `ServerCrash` mid-session followed by
/// a restart yields a recovered store — objects, versions, media — whose
/// digest is byte-identical to a crash-free run observed at the same
/// virtual time. Bookmarks ride the same WAL discipline on the
/// navigator side and are checked alongside.
#[test]
fn crash_recovery_matches_crash_free_run_at_same_sim_time() {
    let (objects, media, root, _) = course(11);
    let observe_at = SimTime::from_secs(30);

    // Crash-free twin.
    let mut clean = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
    clean.publish(&objects, &media).unwrap();
    clean.pump_until(observe_at).unwrap();
    let want = clean.db().state_digest();

    // Same workload, but the server dies at t=10 s and restarts at
    // t=12 s. The publish finished long before; recovery must replay
    // every journaled mutation, version bumps included.
    let cfg = SystemConfig::broadband(1)
        .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(120)))
        .with_crash(SimTime::from_secs(10), 0)
        .with_restart(SimTime::from_secs(12), 0);
    let mut sys = MitsSystem::build(&cfg).unwrap();
    sys.publish(&objects, &media).unwrap();
    assert!(sys.now() < SimTime::from_secs(10), "published pre-crash");
    sys.pump_until(observe_at).unwrap();
    assert!(sys.server_up(0), "restarted on schedule");
    assert_eq!(
        sys.db().state_digest(),
        want,
        "recovered store is byte-identical to the crash-free run"
    );
    let report = sys.last_recovery.as_ref().expect("recovery ran");
    assert!(report.replayed_bytes() > 0, "it actually replayed the WAL");
    assert!(!report.torn_tail, "clean shutdown of the device");

    // The recovered server answers the paper facade correctly.
    let (objs, _) = sys.fetch_courseware(ClientId(0), root).unwrap();
    assert_eq!(objs.len(), objects.len());

    // Bookmarks: same journal-first discipline, same survival guarantee.
    let dev = SharedLogDevice::new();
    let alice = StudentNumber(1);
    let mut crash_free = mits::navigator::BookmarkStore::new();
    {
        let mut bm = DurableBookmarks::new(Box::new(dev.clone()));
        let a = bm.add(alice, root, Some(1), "the QoS scene");
        bm.add(alice, root, None, "whole course");
        bm.remove(alice, a);
        // Mirror the same operations on a store that never crashes.
        let a = crash_free.add(alice, root, Some(1), "the QoS scene");
        crash_free.add(alice, root, None, "whole course");
        crash_free.remove(alice, a);
    }
    let (recovered, rep) = DurableBookmarks::recover(Box::new(dev));
    assert!(!rep.torn_tail);
    assert_eq!(recovered.store().list(alice), crash_free.list(alice));
    assert_eq!(recovered.store().referencing(root), 1);
}

/// The failover acceptance test: with the primary down, the paper's
/// `Get_Selected_Doc` succeeds against the replica inside the client's
/// deadline, and a full Course-On-Demand session completes with zero
/// degraded elements — the student never notices the crash.
#[test]
fn failover_session_completes_with_zero_degraded_elements() {
    let (objects, media, root, name) = course(12);
    let cfg = SystemConfig::broadband(1)
        .with_replica()
        .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(60)))
        .with_crash(SimTime::from_secs(5), 0);
    let mut sys = MitsSystem::build(&cfg).unwrap();
    sys.load_directly(objects.clone(), media.clone());

    // Kill the primary, then ask for the document by name.
    sys.pump_until(SimTime::from_secs(6)).unwrap();
    assert!(!sys.server_up(0), "primary is down");
    assert!(sys.server_up(1), "replica is up");
    let (objs, t) = sys.get_selected_doc(ClientId(0), &name).unwrap();
    assert_eq!(objs.len(), objects.len());
    assert!(
        t < SimDuration::from_secs(60),
        "answered inside the client deadline: {t}"
    );
    assert!(sys.failovers > 0, "the client switched servers");
    assert_eq!(sys.active_server(ClientId(0)), 1, "now on the replica");

    // A whole course plays through against the replica: every content
    // object arrives, nothing degrades to a placeholder.
    let mut session = CodSession::open(&mut sys, ClientId(0), root, &name).unwrap();
    session.start().unwrap();
    session.auto_play(SimDuration::from_secs(10)).unwrap();
    let report = &session.report;
    assert!(report.completed, "the course ran to the end");
    assert!(
        !report.is_degraded(),
        "zero degraded elements: {:?}",
        report.degraded
    );
    assert!(report.bytes_transferred > 0);
}

/// Determinism: the same crash schedule and seed replay to the same
/// digest, recovery byte count, and failover count.
#[test]
fn crash_schedule_replays_deterministically() {
    let run = || {
        let (objects, media, _, _) = course(13);
        let cfg = SystemConfig::broadband(1)
            .with_replica()
            .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(60)))
            .with_crash(SimTime::from_secs(5), 0)
            .with_restart(SimTime::from_secs(20), 0)
            .with_checkpoint_every(SimDuration::from_secs(8));
        let mut sys = MitsSystem::build(&cfg).unwrap();
        sys.publish(&objects, &media).unwrap();
        sys.pump_until(SimTime::from_secs(40)).unwrap();
        (
            sys.db().state_digest(),
            sys.db_at(1).state_digest(),
            sys.last_recovery.as_ref().map(|r| r.replayed_bytes()),
            sys.failovers,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "seeded crash/recovery must replay exactly");
    assert_eq!(a.0, a.1, "primary and replica converge after restart");
}
