//! Replay faithfulness across the fault matrix (the replay
//! observatory's core guarantee): for every fault family the campus
//! supports — link loss, shard outage, crash/restart, replica
//! failover, and the full correlated fault storm — extracting any
//! session and re-running it standalone at maximum instrumentation
//! must reproduce the campus digest layer for layer *and* the
//! session's outcome flags, on 1 and 8 worker threads and at both
//! admission-window extremes. Faithfulness is a hard error inside
//! `Campus::replay`, so these tests assert `Ok` plus the report flags.

use bytes::Bytes;
use mits::atm::{FaultPlan, LinkFaults};
use mits::core::{fault_storm_slos, sharded_workloads, Campus, CampusWorkload, FaultStorm};
use mits::db::RetryPolicy;
use mits::media::{MediaFormat, MediaId, MediaObject, VideoDims};
use mits::mheg::{ClassLibrary, GenericValue};
use mits::sim::{derive_seed, SimDuration, SimTime};

const STUDENTS: usize = 6;

fn workload(clips: usize, clip_bytes: usize) -> CampusWorkload {
    let mut lib = ClassLibrary::new(1);
    let v = lib.value_content("v", GenericValue::Int(1));
    let root = lib.container("Course", vec![v]);
    let media = (0..clips)
        .map(|i| {
            let data: Vec<u8> = (0..clip_bytes)
                .map(|j| ((i * 13 + j * 5) % 251) as u8)
                .collect();
            MediaObject::new(
                MediaId(700 + i as u64),
                format!("clip{i}.mpg"),
                MediaFormat::Mpeg,
                SimDuration::from_secs(1),
                VideoDims::new(160, 120),
                Bytes::from(data),
            )
        })
        .collect();
    CampusWorkload {
        objects: lib.into_objects(),
        media,
        root,
    }
}

/// Replay `student` under every schedule extreme — serial and 8-way,
/// admission window of one and of the whole population — and assert
/// the faithfulness proof holds, the replay handle seed matches the
/// campus derivation, the outcome flags reproduce, and the extracted
/// bundle itself is schedule-invariant.
fn assert_faithful<F>(mk: F, base_seed: u64, student: usize, expect_failed: Option<bool>)
where
    F: Fn() -> Campus,
{
    let population = {
        let r = mk().replay(student).expect("baseline replay is faithful");
        assert_eq!(r.bundle.seed, derive_seed(base_seed, student as u64));
        r
    };
    for (threads, window) in [(1, 1), (1, STUDENTS), (8, 1), (8, STUDENTS)] {
        let campus = mk().threads(threads).max_concurrent(window);
        let r = campus
            .replay(student)
            .unwrap_or_else(|e| panic!("replay unfaithful at {threads}t/{window}w: {e}"));
        assert!(r.digest_match, "digest proof at {threads}t/{window}w");
        assert!(
            r.breach_reproduced,
            "outcome flags reproduce at {threads}t/{window}w"
        );
        assert_eq!(r.bundle.student, student);
        if let Some(failed) = expect_failed {
            assert_eq!(r.bundle.failed, failed, "campaign outcome as staged");
            assert_eq!(r.report.failed, failed, "replayed outcome as staged");
        }
        // The extracted bundle never depends on the schedule that ran it.
        assert_eq!(
            r.bundle, population.bundle,
            "bundle at {threads}t/{window}w"
        );
        assert_eq!(
            r.report.layers.final_digest(),
            Some(r.bundle.digest),
            "layer trace folds to the proven digest"
        );
    }
}

/// Random cell loss on every link: the session's retransmissions are
/// seed-driven, so the solo re-run must walk the identical recovery
/// path the campus run took.
#[test]
fn replay_is_faithful_under_link_loss() {
    // Clips stay small: loss applies per cell, so a PDU's survival
    // odds shrink exponentially with its cell count and a large clip
    // would never reassemble.
    let w = workload(2, 2_048);
    let mk = move || {
        Campus::new(STUDENTS, 42)
            .workload(w.clone())
            .configure_sessions(|_, base| {
                base.with_fault_plan(FaultPlan::uniform(LinkFaults::loss(0.01)))
                    .with_retry(
                        RetryPolicy::interactive().with_deadline(SimDuration::from_secs(120)),
                    )
            })
    };
    assert_faithful(mk, 42, 3, Some(false));
}

/// A shard-wide link outage that clears: sessions on the dark shard
/// stall and retry through the window, and the replay reproduces the
/// stall timing exactly.
#[test]
fn replay_is_faithful_under_shard_outage() {
    let mk = || {
        Campus::new(STUDENTS, 7)
            .workloads(sharded_workloads(2, 2, 30_000))
            .configure_sessions(|_, base| {
                base.with_shards(2)
                    .with_retry(
                        RetryPolicy::interactive().with_deadline(SimDuration::from_secs(30)),
                    )
                    .with_shard_outage(1, SimTime::from_millis(1), SimTime::from_millis(40))
            })
    };
    // Student 1 lives on the darkened shard 1.
    assert_faithful(mk, 7, 1, None);
}

/// Primary crash followed by a restart: the recovery (reconnect,
/// replayed WAL, resumed fetches) is part of the digest, so the solo
/// re-run must recover identically.
#[test]
fn replay_is_faithful_across_crash_and_restart() {
    let w = workload(2, 30_000);
    let mk = move || {
        Campus::new(STUDENTS, 11)
            .workload(w.clone())
            .configure_sessions(|_, base| {
                base.with_retry(
                    RetryPolicy::interactive().with_deadline(SimDuration::from_secs(30)),
                )
                .with_crash(SimTime::from_millis(1), 0)
                .with_restart(SimTime::from_millis(20), 0)
            })
    };
    assert_faithful(mk, 11, 2, None);
}

/// Primary crash with a live replica: the failover handoff must land
/// on the same replica state at the same virtual instant in the
/// replay.
#[test]
fn replay_is_faithful_across_replica_failover() {
    let w = workload(2, 30_000);
    let mk = move || {
        Campus::new(STUDENTS, 13)
            .workload(w.clone())
            .configure_sessions(|_, base| {
                base.with_replica()
                    .with_retry(
                        RetryPolicy::interactive().with_deadline(SimDuration::from_secs(30)),
                    )
                    .with_crash(SimTime::from_millis(1), 0)
            })
    };
    assert_faithful(mk, 13, 4, None);
}

/// The full correlated storm (crash pair + shard-wide outage): the
/// victim's session *fails* at the retry deadline in the campaign, and
/// the replay must reproduce that breach — failure marker in the
/// digest, `failed` flag, and all.
#[test]
fn replay_reproduces_the_storm_victims_breach() {
    let storm = FaultStorm::new(3, 1, SimTime::from_millis(2), SimTime::from_secs(120));
    let mk = move || {
        let s = storm.clone();
        Campus::new(9, 42)
            .workloads(sharded_workloads(3, 2, 60_000))
            .slos(fault_storm_slos(1.0 / 3.0))
            .configure_sessions(move |_, base| s.apply(base))
            .fault_schedule(storm.schedule())
    };
    // Student 1 lives on victim shard 1 (student % shards).
    assert_faithful(&mk, 42, 1, Some(true));

    // The bundle carries the fault-schedule slice covering the breach,
    // and the weathermap covers every hop the victim's cells crossed.
    let r = mk().replay(1).expect("storm victim replays faithfully");
    assert_eq!(r.bundle.faults.len(), 1);
    assert_eq!(r.bundle.faults[0].label, "fault_storm.shard1");
    assert!(!r.route.is_empty(), "victim route captured");
    assert!(
        r.weathermap.starts_with("{\"t\":\"weathermap\",\"v\":1,"),
        "versioned weathermap: {}",
        &r.weathermap[..60.min(r.weathermap.len())]
    );
    for (from, to) in &r.route {
        assert!(
            r.weathermap
                .contains(&format!("\"from\":\"{from}\",\"to\":\"{to}\"")),
            "weathermap misses hop {from}->{to}"
        );
    }
    assert!(!r.trace_jsonl.is_empty(), "trace kept at rate 1.0");
    assert!(!r.waterfall.is_empty(), "waterfall renders the replay");
    assert!(!r.profile_top.is_empty(), "profiler renders the replay");
}

/// A healthy campus, replayed off the extremes of the admission
/// window: the pure-extraction path (no faults at all) stays faithful
/// too, and a student outside the population is a named error.
#[test]
fn replay_rejects_unknown_students() {
    let w = workload(1, 4_096);
    let campus = Campus::new(3, 5).workload(w);
    let err = campus.replay(99).unwrap_err();
    assert!(
        err.to_string().contains("outside this campus"),
        "names the population: {err}"
    );
}
