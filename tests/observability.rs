//! The tracing + metrics subsystem, end to end: identical seeds yield
//! byte-identical JSONL traces even under heavy cell loss, and the
//! trace of a retried, failed-over database query carries a span for
//! every attempt, every network hop, and the WAL replay — correctly
//! nested.

use mits::atm::{FaultPlan, LinkFaults};
use mits::author::{
    compile_imd, ElementKind, ImDocument, Scene, Section, Subsection, TimelineEntry,
};
use mits::core::{ClientId, CodSession, MitsSystem, SystemConfig};
use mits::db::RetryPolicy;
use mits::media::{CaptureSpec, MediaFormat, MediaObject, ProductionCenter, VideoDims};
use mits::mheg::MhegObject;
use mits::sim::{profile_tracer, SimDuration, SimTime, SloReport, SpanInfo, Verdict};
use std::collections::BTreeMap;

fn course() -> (Vec<MhegObject>, Vec<MediaObject>, mits::mheg::MhegId) {
    let mut studio = ProductionCenter::new(81);
    let clip = studio.capture(&CaptureSpec::video(
        "intro.mpg",
        MediaFormat::Mpeg,
        SimDuration::from_millis(400),
        VideoDims::new(160, 120),
    ));
    let diagram = studio.capture(&CaptureSpec::image(
        "diagram.gif",
        MediaFormat::Gif,
        VideoDims::new(320, 240),
    ));
    let mut doc = ImDocument::new("Traced Course");
    doc.sections.push(Section {
        title: "s".into(),
        subsections: vec![Subsection {
            title: "ss".into(),
            scenes: vec![
                Scene::new("video")
                    .element("v", ElementKind::Media((&clip).into()))
                    .entry(TimelineEntry::at_start("v")),
                Scene::new("image")
                    .element("d", ElementKind::Media((&diagram).into()))
                    .entry(TimelineEntry::at_start("d").for_duration(SimDuration::from_secs(1))),
            ],
        }],
    });
    let compiled = compile_imd(82, &doc);
    (compiled.objects, vec![clip, diagram], compiled.root)
}

/// One faulty-network CodSession, returning the full JSONL trace.
fn lossy_session_trace() -> String {
    let (objects, media, root) = course();
    let cfg = SystemConfig::broadband(1)
        .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(60)));
    let mut system = MitsSystem::build(&cfg).unwrap();
    let student = system.client_host(ClientId(0));
    system.net.set_fault_plan(FaultPlan::none().with_link(
        student,
        system.switch(),
        LinkFaults::loss(0.30),
    ));
    system.load_directly(objects, media);
    let mut session = CodSession::open(&mut system, ClientId(0), root, "Traced Course").unwrap();
    session.start().unwrap();
    session.auto_play(SimDuration::from_secs(5)).unwrap();
    session.finish();
    assert!(session.report.completed);
    drop(session);
    system.tracer.to_jsonl()
}

#[test]
fn same_seed_lossy_traces_are_byte_identical() {
    let a = lossy_session_trace();
    let b = lossy_session_trace();
    assert!(!a.is_empty());
    assert_eq!(a, b, "identical seeds must yield byte-identical traces");
}

fn children<'a>(spans: &'a [SpanInfo], parent: &SpanInfo) -> Vec<&'a SpanInfo> {
    spans
        .iter()
        .filter(|s| s.parent == Some(parent.id))
        .collect()
}

#[test]
fn failed_over_query_trace_has_every_attempt_hop_and_replay() {
    let (objects, media, root) = course();
    let cfg = SystemConfig::broadband(1)
        .with_replica()
        .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(60)))
        .with_crash(SimTime::from_secs(2), 0)
        .with_restart(SimTime::from_secs(20), 0);
    let mut system = MitsSystem::build(&cfg).unwrap();
    system.load_directly(objects.clone(), media);
    // Run straight into the crash, so the fetch starts against the
    // primary and completes against the replica after a retry.
    system.pump_until(SimTime::from_micros(1_999_700)).unwrap();
    let (objs, _) = system.fetch_courseware(ClientId(0), root).unwrap();
    assert_eq!(objs.len(), objects.len());
    assert!(system.failovers > 0, "the fetch crossed a failover");
    // Let the scheduled restart replay the journal.
    system.pump_until(SimTime::from_secs(25)).unwrap();

    let spans = system.tracer.spans();

    // The failed-over request span: attempts attr >= 2, outcome ok.
    let req = spans
        .iter()
        .find(|s| {
            s.name == "db.request get_courseware"
                && s.attrs.iter().any(|(k, v)| k == "outcome" && v == "ok")
        })
        .expect("a completed get_courseware request span");
    let attempts: u64 = req
        .attrs
        .iter()
        .find(|(k, _)| k == "attempts")
        .map(|(_, v)| v.parse().unwrap())
        .expect("attempts attr");
    assert!(attempts >= 2, "the crash forced a re-attempt: {attempts}");

    // One child span per attempt, in order, plus the hops and the
    // replica's service span — all nested under the request span.
    let kids = children(&spans, req);
    for n in 1..=attempts {
        assert!(
            kids.iter().any(|s| s.name == format!("attempt {n}")),
            "missing span for attempt {n}"
        );
    }
    assert!(
        kids.iter().any(|s| s.name == "net.uplink"),
        "uplink hop span missing"
    );
    assert!(
        kids.iter().any(|s| s.name == "net.downlink"),
        "downlink hop span missing"
    );
    assert!(
        kids.iter()
            .any(|s| s.name == "server1.serve get_courseware"),
        "the replica's service span is missing: {:?}",
        kids.iter().map(|s| &s.name).collect::<Vec<_>>()
    );

    // The restart produced a recovery span with a nested WAL replay
    // (and a resync from the live replica).
    let recover = spans
        .iter()
        .find(|s| s.name == "server0.recover")
        .expect("recovery span");
    assert!(recover.end.is_some(), "recovery span closed");
    let rkids = children(&spans, recover);
    assert!(
        rkids.iter().any(|s| s.name == "wal.replay"),
        "WAL replay span missing"
    );
    assert!(
        rkids.iter().any(|s| s.name == "replica.resync"),
        "resync span missing"
    );

    // Every span's parent exists and opened no later than the child.
    for s in &spans {
        if let Some(pid) = s.parent {
            let p = spans
                .iter()
                .find(|c| c.id == pid)
                .expect("parent span exists");
            assert!(
                p.start <= s.start,
                "{} starts before parent {}",
                s.name,
                p.name
            );
        }
    }
}

#[test]
fn metrics_registry_covers_every_layer() {
    let (objects, media, root) = course();
    let mut system = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
    system.publish(&objects, &media).unwrap();
    let mut session = CodSession::open(&mut system, ClientId(0), root, "Traced Course").unwrap();
    session.start().unwrap();
    session.auto_play(SimDuration::from_secs(5)).unwrap();
    session.finish();
    drop(session);
    let names = system.metrics.names();
    for prefix in [
        "atm.link.",
        "atm.vc.",
        "db.server0.wal.",
        "client0.",
        "author.",
        "mheg.",
        "presentation.",
        "system.",
    ] {
        assert!(
            names.iter().any(|n| n.starts_with(prefix)),
            "no {prefix} metrics in {names:?}"
        );
    }
    assert!(
        system.metrics.get_counter("db.server0.wal.bytes_journaled") > Some(0),
        "publishing journaled bytes"
    );
    assert!(system.metrics.get_counter("system.requests_sent") > Some(0));
}

#[test]
fn profiler_folds_a_real_session_into_layers() {
    let (objects, media, root) = course();
    let mut system = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
    system.load_directly(objects, media);
    let mut session = CodSession::open(&mut system, ClientId(0), root, "Traced Course").unwrap();
    session.start().unwrap();
    session.auto_play(SimDuration::from_secs(5)).unwrap();
    session.finish();
    drop(session);

    let profile = profile_tracer(&system.tracer);
    let layer = |name: &str| {
        profile
            .layers
            .iter()
            .find(|l| l.layer == name)
            .unwrap_or_else(|| panic!("no {name} layer in {:?}", profile.layers))
    };
    // The session touched every layer the classifier knows about.
    assert!(layer("navigator").inclusive_us > 0, "cod spans folded");
    assert!(layer("db").spans > 0, "request/serve spans folded");
    assert!(layer("atm").self_us > 0, "wire time is self time");
    // Network hops have no children: inclusive == self.
    let atm = layer("atm");
    assert_eq!(atm.inclusive_us, atm.self_us);
    // Self times tile the trace: no layer exceeds the total.
    for l in &profile.layers {
        assert!(l.self_us <= profile.total_self_us);
    }
    // Rendering is stable and mentions each layer row.
    let top = profile.render_top(8);
    assert_eq!(top, profile_tracer(&system.tracer).render_top(8));
    assert!(top.contains("navigator"), "{top}");
    assert!(top.contains("top spans by self time:"), "{top}");
}

#[test]
fn slo_verdicts_from_a_live_system_snapshot() {
    let (objects, media, root) = course();
    let mut system = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
    system.load_directly(objects, media);
    let mut session = CodSession::open(&mut system, ClientId(0), root, "Traced Course").unwrap();
    session.start().unwrap();
    session.auto_play(SimDuration::from_secs(5)).unwrap();
    session.finish();
    drop(session);

    let snapshot = system.metrics.snapshot();
    let report = SloReport::evaluate(
        &mits::core::default_campus_slos(),
        &snapshot,
        &BTreeMap::new(),
    );
    assert_eq!(report.outcomes.len(), 4, "{}", report.to_json());
    // A clean single-seat session breaches nothing.
    assert_eq!(report.breaches(), 0, "{}", report.to_json());
    let retry = report
        .outcomes
        .iter()
        .find(|o| o.name == "retry_rate")
        .unwrap();
    assert_eq!(retry.verdict, Verdict::Pass);
    assert_eq!(retry.observed, 0.0, "fault-free run never retries");
    // The verdict JSON is stable byte for byte.
    assert_eq!(
        report.to_json(),
        SloReport::evaluate(
            &mits::core::default_campus_slos(),
            &snapshot,
            &BTreeMap::new()
        )
        .to_json()
    );
}

/// The campus rollup carries the sharded-deployment observability
/// surface: `EdgeCache` counters and per-shard scatter/gather legs, so
/// a dashboard built on the merged snapshot sees the edge tier and
/// every shard's query fan-out without scraping individual sessions.
#[test]
fn campus_rollup_exposes_edge_and_scatter_metrics() {
    use mits::core::{fault_storm_slos, sharded_workloads, Campus, FaultStorm};

    const SHARDS: usize = 3;
    let mut storm = FaultStorm::new(SHARDS, 1, SimTime::from_millis(2), SimTime::from_secs(120));
    storm.edge_cache_bytes = 1 << 20;
    let report = Campus::new(6, 42)
        .threads(2)
        .workloads(sharded_workloads(SHARDS, 2, 100_000))
        .slos(fault_storm_slos(1.0 / SHARDS as f64))
        .configure_sessions(move |_, base| storm.apply_calm(base))
        .run()
        .unwrap();

    let m = &report.metrics;
    // EdgeCache counters, exported under the `edge.` prefix.
    for name in [
        "edge.hits",
        "edge.misses",
        "edge.invalidations",
        "edge.inserts",
        "edge.origin_requests",
        "edge.lookups",
    ] {
        assert!(m.counter(name).is_some(), "missing {name}");
    }
    // The edge tier actually saw traffic in a calm sharded campus.
    assert!(m.counter("edge.lookups").unwrap() > 0);
    // Scatter/gather fan-out, totalled and broken out per shard.
    assert!(m.counter("system.scatter_queries").is_some());
    for d in 0..SHARDS {
        let legs = format!("system.shard{d}.scatter_legs");
        let errs = format!("system.shard{d}.scatter_leg_errors");
        assert!(m.counter(&legs).is_some(), "missing {legs}");
        assert!(m.counter(&errs).is_some(), "missing {errs}");
    }
    // Calm twin: no leg ever errors.
    for d in 0..SHARDS {
        assert_eq!(
            m.counter(&format!("system.shard{d}.scatter_leg_errors")),
            Some(0)
        );
    }
}
