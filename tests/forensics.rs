//! The flight-recorder forensics layer, end to end: the windowed
//! telemetry timeline and exemplar selection must be byte-identical
//! across thread counts and admission windows, and a seeded fault storm
//! must auto-produce a reproducible incident bundle whose causal chain
//! names the injected fault on the correct shard.

use mits::core::{fault_storm_slos, sharded_workloads, Campus, CampusReport, FaultStorm};
use mits::sim::{derive_seed, Exemplar, SimTime};

const SHARDS: usize = 3;
const STUDENTS: usize = 9;
const VICTIM: usize = 1;

fn storm() -> FaultStorm {
    FaultStorm::new(
        SHARDS,
        VICTIM,
        SimTime::from_millis(2),
        SimTime::from_secs(120),
    )
}

fn run_campaign(threads: usize, max_concurrent: usize, stormy: bool) -> CampusReport {
    let s = storm();
    let mut campus = Campus::new(STUDENTS, 42)
        .threads(threads)
        .max_concurrent(max_concurrent)
        .workloads(sharded_workloads(SHARDS, 2, 100_000))
        .slos(fault_storm_slos(1.0 / SHARDS as f64))
        .configure_sessions(move |_, base| {
            if stormy {
                s.apply(base)
            } else {
                s.apply_calm(base)
            }
        });
    if stormy {
        campus = campus.fault_schedule(storm().schedule());
    }
    campus.run().unwrap()
}

/// Exemplars of the merged session-duration histogram, as comparable
/// tuples (value bits, trace, span, instant).
fn exemplar_keys(report: &CampusReport) -> Vec<(u64, u64, u64, u64)> {
    report
        .metrics
        .histogram("campus.session_secs")
        .map(|h| {
            h.exemplars()
                .map(|e: &Exemplar| (e.value.to_bits(), e.trace_id, e.span_id, e.at.as_micros()))
                .collect()
        })
        .unwrap_or_default()
}

/// The determinism gate for the new surfaces: timeline JSON, forensic
/// bundle JSON and exemplar identities are byte-identical whether the
/// campus runs serially, on eight workers, or throttled to two
/// admitted sessions at a time.
#[test]
fn timeline_and_bundles_are_byte_identical_across_schedules() {
    let serial = run_campaign(1, STUDENTS, true);
    let wide = run_campaign(8, STUDENTS, true);
    let narrow = run_campaign(8, 2, true);

    assert_eq!(serial.digest, wide.digest);
    assert_eq!(serial.digest, narrow.digest);

    let tl = serial.timeline_json();
    assert!(tl.starts_with("{\"v\":1,"), "versioned timeline: {tl}");
    assert_eq!(tl, wide.timeline_json());
    assert_eq!(tl, narrow.timeline_json());

    let fx = serial.forensics_json();
    assert_eq!(fx, wide.forensics_json());
    assert_eq!(fx, narrow.forensics_json());

    let ex = exemplar_keys(&serial);
    assert!(!ex.is_empty(), "merged histogram keeps exemplars");
    assert_eq!(ex, exemplar_keys(&wide));
    assert_eq!(ex, exemplar_keys(&narrow));
}

/// A seeded storm campaign auto-produces at least one bundle whose
/// causal chain starts at the injected fault, labelled with the victim
/// shard and its onset window; a second identical campaign reproduces
/// the bundles byte for byte, and the calm twin produces none.
#[test]
fn storm_bundle_names_the_injected_fault_and_reproduces() {
    let hit = run_campaign(2, STUDENTS, true);
    assert!(!hit.forensics.is_empty(), "storm must yield a bundle");
    for b in &hit.forensics {
        let suspect = b.suspect.as_ref().expect("bundle aligns with the storm");
        assert_eq!(suspect.label, format!("fault_storm.shard{VICTIM}"));
        assert_eq!(suspect.shard, VICTIM as u64);
        assert_eq!(suspect.onset, SimTime::from_millis(2));
        // The chain leads with the fault, inside the breach window.
        let first = &b.chain[0];
        assert_eq!(first.stage, "fault");
        assert!(first.label.contains(&format!("shard {VICTIM}")));
        assert!(b.window_start <= suspect.onset && suspect.onset < b.window_end);
        assert!(!b.students.is_empty());
        // Every bundle exemplar resolves to a sampled trace: anomalous
        // sessions are always tail-sampled, so the flight recorder, the
        // exemplar and the trace tell one joined-up story.
        for e in &b.exemplars {
            assert!(
                hit.traces.iter().any(|t| t.student as u64 == e.trace_id),
                "exemplar trace {} not sampled",
                e.trace_id
            );
        }
        // Every implicated student ships with a ready-to-run replay
        // handle whose seed matches the campus derivation, so
        // `Campus::replay` can re-run the victim without guessing.
        assert_eq!(b.replays.len(), b.students.len());
        for (&s, &(rs, seed)) in b.students.iter().zip(&b.replays) {
            assert_eq!(rs, s);
            assert_eq!(seed, derive_seed(42, s));
        }
    }

    let again = run_campaign(2, STUDENTS, true);
    assert_eq!(hit.forensics_json(), again.forensics_json());
    assert_eq!(hit.timeline_json(), again.timeline_json());

    let calm = run_campaign(2, STUDENTS, false);
    assert!(calm.forensics.is_empty(), "calm twin stays incident-free");
    assert_eq!(calm.forensics_json(), "[]");
}
