//! The partitioned courseware store, end to end: a seeded fault storm
//! whose blast radius is exactly the victim shard, scatter/gather
//! queries that degrade to partial results instead of hanging, and a
//! campus-edge cache whose entries are fenced by failover epochs.

use mits::core::{
    fault_storm_slos, sharded_workloads, Campus, CampusRollup, ClientId, FaultStorm, MitsSystem,
    ReportSink, SessionReport, SystemConfig,
};
use mits::db::RetryPolicy;
use mits::sim::{SimDuration, SimTime};

const SHARDS: usize = 3;
const STUDENTS: usize = 9;
const VICTIM: usize = 1;

/// The reference storm: at 2 ms (mid-session — each clip takes ~15 ms
/// to cross OC-3) the victim shard's primary and replica crash together
/// and the group's links stay down for the rest of the session.
fn storm() -> FaultStorm {
    FaultStorm::new(
        SHARDS,
        VICTIM,
        SimTime::from_millis(2),
        SimTime::from_secs(120),
    )
}

/// Collects per-session outcomes in student order plus the rollup SLOs.
#[derive(Default)]
struct OutcomeSink {
    digests: Vec<(usize, u64)>,
    failed: Vec<usize>,
    anomalous: Vec<usize>,
    slo_json: String,
    breaches: usize,
}

impl ReportSink for OutcomeSink {
    fn session(&mut self, r: &SessionReport) {
        self.digests.push((r.student, r.digest));
        if r.failed {
            self.failed.push(r.student);
        }
        if r.anomalous {
            self.anomalous.push(r.student);
        }
    }
    fn rollup(&mut self, rollup: &CampusRollup) {
        self.slo_json = rollup.slo.to_json();
        self.breaches = rollup.slo.breaches();
    }
}

fn run_campaign(seed: u64, stormy: bool) -> OutcomeSink {
    let s = storm();
    let mut sink = OutcomeSink::default();
    Campus::new(STUDENTS, seed)
        .threads(2)
        .workloads(sharded_workloads(SHARDS, 2, 300_000))
        .slos(fault_storm_slos(1.0 / SHARDS as f64))
        .configure_sessions(move |_, base| {
            if stormy {
                s.apply(base)
            } else {
                s.apply_calm(base)
            }
        })
        .run_with(&mut sink)
        .unwrap();
    sink
}

/// The survival gate: killing shard k mid-campus degrades *only* the
/// sessions whose working set hashes to shard k. Every healthy-shard
/// session's digest is byte-identical to its storm-free twin, and the
/// storm SLOs — which budget exactly the victim's share of sessions —
/// report zero breaches.
#[test]
fn storm_blast_radius_is_exactly_the_victim_shard() {
    let hit = run_campaign(77, true);
    let twin = run_campaign(77, false);

    let victims: Vec<usize> = (0..STUDENTS).filter(|s| s % SHARDS == VICTIM).collect();
    assert_eq!(hit.failed, victims, "exactly the victim residue class");
    assert_eq!(hit.anomalous, victims, "healthy sessions saw nothing");
    assert!(twin.failed.is_empty(), "the calm twin is storm-free");
    assert!(twin.anomalous.is_empty());

    for (&(s, d), &(ts, td)) in hit.digests.iter().zip(&twin.digests) {
        assert_eq!(s, ts, "sessions stream in student order");
        if s % SHARDS == VICTIM {
            assert_ne!(d, td, "victim session {s} must feel the storm");
        } else {
            assert_eq!(d, td, "healthy session {s} must be byte-identical");
        }
    }
    assert_eq!(hit.breaches, 0, "blast radius leaked: {}", hit.slo_json);
    assert_eq!(twin.breaches, 0, "{}", twin.slo_json);
}

/// The storm is deterministic under its seed: same seed, same campus
/// digest and metrics bytes; a different seed moves the digest.
#[test]
fn fault_storm_is_deterministic_under_seed() {
    let run = |seed: u64| {
        let s = storm();
        Campus::new(STUDENTS, seed)
            .threads(2)
            .workloads(sharded_workloads(SHARDS, 2, 300_000))
            .slos(fault_storm_slos(1.0 / SHARDS as f64))
            .configure_sessions(move |_, base| s.apply(base))
            .run()
            .unwrap()
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.digest, b.digest, "same seed, same storm");
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    assert_eq!(a.slo.to_json(), b.slo.to_json());
    let c = run(6);
    assert_ne!(a.digest, c.digest, "the seed must reach the storm digest");
}

/// Scatter/gather queries against a ring with a dead shard degrade to
/// the reachable shards' results — bounded by the client's retry
/// deadline, never the hour-long call timeout, and never a hang.
#[test]
fn scatter_gather_degrades_to_partial_results_not_a_hang() {
    let workloads = sharded_workloads(SHARDS, 1, 40_000);
    let cfg = SystemConfig::broadband(1)
        .with_shards(SHARDS)
        .with_retry(RetryPolicy::interactive())
        .with_shard_crash(SimTime::from_millis(1), VICTIM, 0);
    let mut sys = MitsSystem::build(&cfg).unwrap();
    for w in &workloads {
        sys.load_doc(&w.objects, &w.media, w.root);
    }

    let (all, _) = sys.get_list_doc(ClientId(0)).unwrap();
    assert_eq!(all.len(), SHARDS, "one document per shard before the crash");

    sys.pump_until(SimTime::from_millis(2)).unwrap();
    assert!(!sys.server_up(sys.server_index(VICTIM, 0)), "victim down");

    let before = sys.now();
    let (partial, _) = sys.get_list_doc(ClientId(0)).unwrap();
    assert_eq!(partial.len(), SHARDS - 1, "victim's entry degraded away");
    assert!(partial
        .iter()
        .all(|(id, _)| sys.shard_of_object(*id) != VICTIM));
    assert!(sys.scatter_partial >= 1, "the degradation was counted");
    assert!(
        sys.now().since(before) <= SimDuration::from_secs(11),
        "the dead leg resolved at the client's 10 s deadline, not the call timeout"
    );

    // The keyword tree scatters the same way: reachable shards merge,
    // the dead one contributes nothing, and the call still returns.
    let (tree, _) = sys.get_keyword_tree(ClientId(0)).unwrap();
    assert!(tree.is_empty(), "these workloads carry no keywords");
}

/// A hot-document flash crowd with the edge tier on: the origin serves
/// the document once, every later client is absorbed at the campus
/// edge, and origin requests never exceed misses + invalidations.
#[test]
fn flash_crowd_is_absorbed_at_the_campus_edge() {
    const CLIENTS: usize = 8;
    let workloads = sharded_workloads(SHARDS, 1, 100_000);
    let hot = workloads[0].media[0].clone();
    let build = |edge_bytes: usize| {
        let cfg = SystemConfig::broadband(CLIENTS)
            .with_shards(SHARDS)
            .with_edge_cache(edge_bytes);
        let mut sys = MitsSystem::build(&cfg).unwrap();
        for w in &workloads {
            sys.load_doc(&w.objects, &w.media, w.root);
        }
        sys
    };

    let mut warm = build(4 << 20);
    for c in 0..CLIENTS {
        let (m, _) = warm.fetch_content(ClientId(c), hot.id).unwrap();
        assert_eq!(m.data, hot.data, "edge hits serve the same bytes");
    }
    let edge = warm.edge_cache().unwrap();
    assert_eq!(edge.origin_requests, 1, "origin saw the crowd once");
    assert_eq!(edge.misses, 1);
    assert_eq!(edge.hits, CLIENTS as u64 - 1);
    assert!(
        edge.origin_requests <= edge.misses + edge.invalidations,
        "origin load is bounded by misses + invalidations"
    );
    assert_eq!(warm.requests_sent, 1, "one wire request total");

    // The same crowd without the edge tier hits the origin every time.
    let mut cold = build(0);
    for c in 0..CLIENTS {
        cold.fetch_content(ClientId(c), hot.id).unwrap();
    }
    assert!(cold.edge_cache().is_none());
    assert_eq!(
        cold.requests_sent, CLIENTS as u64,
        "every client paid origin"
    );
}

/// Epoch fencing at the edge: entries filled under the deposed
/// primary's epoch are evicted — counted as invalidations, never served
/// — once any response from the promoted replica raises the shard's
/// floor. After the invalidation the edge refills at the new epoch and
/// serves hits again, including across failback.
#[test]
fn failover_fences_edge_entries_filled_by_the_deposed_primary() {
    let workloads = sharded_workloads(SHARDS, 1, 60_000);
    let hot = workloads[0].media[0].clone();
    let hot_shard = 0usize;
    let cfg = SystemConfig::broadband(3)
        .with_shards(SHARDS)
        .with_replica()
        .with_edge_cache(4 << 20)
        .with_retry(RetryPolicy::interactive())
        .with_shard_crash(SimTime::from_millis(40), hot_shard, 0)
        .with_shard_restart(SimTime::from_secs(2), hot_shard, 0);
    let mut sys = MitsSystem::build(&cfg).unwrap();
    for w in &workloads {
        sys.load_doc(&w.objects, &w.media, w.root);
    }

    // Client 0 warms the edge under the original primary's epoch.
    sys.fetch_content(ClientId(0), hot.id).unwrap();
    {
        let edge = sys.edge_cache().unwrap();
        assert_eq!((edge.origin_requests, edge.invalidations), (1, 0));
    }

    // The primary dies; client 1's courseware fetch fails over to the
    // replica and its promoted epoch raises the edge's shard floor.
    sys.pump_until(SimTime::from_millis(45)).unwrap();
    assert!(!sys.server_up(sys.server_index(hot_shard, 0)));
    sys.fetch_courseware(ClientId(1), workloads[0].root)
        .unwrap();
    assert!(sys.failovers >= 1, "client 1 rotated to the replica");

    // Client 1's media fetch finds the stale-epoch entry: it must be
    // evicted (an invalidation, not a hit) and refilled from the
    // replica at the promoted epoch.
    let (m, _) = sys.fetch_content(ClientId(1), hot.id).unwrap();
    assert_eq!(m.data, hot.data);
    {
        let edge = sys.edge_cache().unwrap();
        assert_eq!(edge.invalidations, 1, "stale entry evicted, not served");
        assert_eq!(edge.origin_requests, 2, "the eviction went back to origin");
        assert_eq!(edge.hits, 0, "the fenced entry never counted as a hit");
    }

    // After failback the refilled entry is current: client 2 hits.
    // (The failover fetch burned its 500 ms attempt timeout, so the
    // clock is far past the crash by now; the restart lands at 2 s.)
    sys.pump_until(SimTime::from_secs(3)).unwrap();
    assert!(sys.server_up(sys.server_index(hot_shard, 0)), "failed back");
    let (m, dt) = sys.fetch_content(ClientId(2), hot.id).unwrap();
    assert_eq!(m.data, hot.data);
    assert_eq!(dt, SimDuration::ZERO, "served at the edge");
    {
        let edge = sys.edge_cache().unwrap();
        assert_eq!(edge.hits, 1);
        assert_eq!(edge.invalidations, 1, "no further evictions");
        assert!(edge.origin_requests <= edge.misses + edge.invalidations);
    }
}

/// The classic single-shard deployment is untouched by all of this: a
/// `shards = 1` config routes every request to the one store and keeps
/// the scatter counters dark.
#[test]
fn single_shard_deployment_never_scatters() {
    let workloads = sharded_workloads(1, 1, 20_000);
    let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
    let w = &workloads[0];
    sys.load_doc(&w.objects, &w.media, w.root);
    sys.get_list_doc(ClientId(0)).unwrap();
    sys.fetch_courseware(ClientId(0), w.root).unwrap();
    sys.fetch_content(ClientId(0), w.media[0].id).unwrap();
    assert_eq!(sys.shards(), 1);
    assert_eq!(sys.scatter_queries, 0, "no scatter on one shard");
    assert!(sys.edge_cache().is_none(), "no edge tier unless configured");
}
