//! Concurrency integration: the courseware database server is shared
//! state ("all the information stored digitally can be shared by a big
//! amount of users at a specific time", §2.1.2). These tests hammer one
//! server from many OS threads — the in-process analog of many navigator
//! processes — and check nothing tears.

use mits::author::{
    compile_imd, ElementKind, ImDocument, Scene, Section, Subsection, TimelineEntry,
};
use mits::db::{DbServer, Request, Response};
use mits::media::{CaptureSpec, MediaFormat, ProductionCenter, VideoDims};
use mits::mheg::MhegId;
use mits::navigator::PresentationSession;
use mits::sim::{SimDuration, SimTime};
use std::sync::Arc;

fn loaded_server() -> (Arc<DbServer>, MhegId, String) {
    let mut studio = ProductionCenter::new(21);
    let clip = studio.capture(&CaptureSpec::video(
        "clip.mpg",
        MediaFormat::Mpeg,
        SimDuration::from_millis(300),
        VideoDims::new(160, 120),
    ));
    let mut doc = ImDocument::new("Concurrent Course");
    doc.keywords = vec!["telecom/atm".into()];
    doc.sections.push(Section {
        title: "s".into(),
        subsections: vec![Subsection {
            title: "ss".into(),
            scenes: vec![Scene::new("only")
                .element("v", ElementKind::Media((&clip).into()))
                .entry(TimelineEntry::at_start("v"))],
        }],
    });
    let compiled = compile_imd(99, &doc);
    let server = DbServer::default();
    server.load_objects(compiled.objects);
    server.load_media(studio.catalogue().to_vec());
    (
        Arc::new(server),
        compiled.root,
        "Concurrent Course".to_string(),
    )
}

#[test]
fn many_threads_fetch_and_present() {
    let (server, root, name) = loaded_server();
    crossbeam::thread::scope(|scope| {
        for t in 0..8 {
            let server = server.clone();
            let name = name.clone();
            scope.spawn(move |_| {
                for _ in 0..20 {
                    let (resp, _) = server.handle(&Request::GetCourseware { root });
                    let Response::Objects(objects) = resp else {
                        panic!("thread {t}: bad response")
                    };
                    let mut p = PresentationSession::load(objects, &name).unwrap();
                    p.start().unwrap();
                    p.advance(SimTime::from_secs(2)).unwrap();
                    assert!(p.completed(), "thread {t}");
                }
            });
        }
    })
    .unwrap();
    assert_eq!(*server.requests_served.read(), 8 * 20);
}

#[test]
fn concurrent_reads_with_author_updates() {
    let (server, root, _) = loaded_server();
    crossbeam::thread::scope(|scope| {
        // Readers.
        for _ in 0..4 {
            let server = server.clone();
            scope.spawn(move |_| {
                for _ in 0..200 {
                    let (resp, _) = server.handle(&Request::GetCourseware { root });
                    match resp {
                        Response::Objects(objs) => assert!(!objs.is_empty()),
                        other => panic!("{other:?}"),
                    }
                    let (resp, _) = server.handle(&Request::ListDocs);
                    assert!(matches!(resp, Response::DocList(_)));
                }
            });
        }
        // An author republishing the container object repeatedly
        // ("updated in both the content and the scenario at anytime").
        let server2 = server.clone();
        scope.spawn(move |_| {
            let (resp, _) = server2.handle(&Request::GetObject { id: root });
            let Response::Objects(mut objs) = resp else {
                panic!()
            };
            let obj = objs.pop().unwrap();
            for _ in 0..200 {
                let (resp, _) = server2.handle(&Request::PutObject {
                    object: obj.clone(),
                });
                assert_eq!(resp, Response::Ack);
            }
        });
    })
    .unwrap();
    // The container's version advanced under concurrent readers.
    let (resp, _) = server.handle(&Request::GetObject { id: root });
    let Response::Objects(objs) = resp else {
        panic!()
    };
    assert_eq!(objs[0].info.version, 200);
}

#[test]
fn concurrent_keyword_queries() {
    let (server, root, _) = loaded_server();
    crossbeam::thread::scope(|scope| {
        for _ in 0..6 {
            let server = server.clone();
            scope.spawn(move |_| {
                for _ in 0..300 {
                    let (resp, _) = server.handle(&Request::QueryKeyword {
                        keyword: "telecom".into(),
                        subtree: true,
                    });
                    assert_eq!(resp, Response::DocIds(vec![root]));
                }
            });
        }
    })
    .unwrap();
}
