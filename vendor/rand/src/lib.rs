//! Minimal, offline, API-compatible subset of the `rand` crate.
//!
//! The workspace only uses `rand` to expose its `RngCore` trait on the
//! deterministic simulation RNG, so this stub provides exactly that
//! surface and nothing more.

use std::fmt;

/// Error type reported by fallible RNG operations.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
