//! Minimal, offline, API-compatible subset of `serde`.
//!
//! The workspace hand-rolls every wire codec; the `Serialize` /
//! `Deserialize` derives are kept purely as markers, so the traits here
//! are empty and the derives expand to nothing.

pub use serde_derive::{Deserialize, Serialize};
