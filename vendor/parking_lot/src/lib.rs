//! Minimal, offline, API-compatible subset of `parking_lot`.
//!
//! Backed by `std::sync` primitives. The signature difference that
//! matters to callers — `lock()`/`read()`/`write()` returning guards
//! directly instead of a `LockResult` — is preserved; poisoning is
//! transparently ignored, matching parking_lot semantics.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}
