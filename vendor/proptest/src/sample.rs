//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly from a fixed set of values.
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below_usize(self.options.len())].clone()
    }
}

/// Uniform choice among `options` (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}
