//! Minimal, offline, API-compatible subset of `proptest`.
//!
//! Strategies are deterministic generators seeded from the test's
//! fully-qualified name (override with `PROPTEST_SEED`); there is no
//! shrinking, so a failing case reports the case number and message
//! rather than a minimized input. The macro and strategy surface match
//! real proptest closely enough that the workspace's property tests
//! compile unchanged against either.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function that runs the body over generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            // Strategies are built once; shadowed per-case below by the
            // values they generate.
            let ($($arg,)+) = ($($strat,)+);
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            __case,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(*__left == *__right, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{:?}` == `{:?}`",
            __left,
            __right
        );
    }};
}

/// Reject the current case (skip, not fail) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among several strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -5i64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn regex_classes_generate_matching(s in "[a-z]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn oneof_and_collections(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..6)) {
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&b| b == 1 || b == 2));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("fixed");
        let mut b = TestRng::for_test("fixed");
        let s: String = Strategy::generate(&"[ -~<>&\"]{0,40}", &mut a);
        let t: String = Strategy::generate(&"[ -~<>&\"]{0,40}", &mut b);
        assert_eq!(s, t);
    }
}
