//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option`s of an inner strategy's values.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.chance(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Some` about three quarters of the time, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
