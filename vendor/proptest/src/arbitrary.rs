//! `any::<T>()` for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Full-range strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly printable ASCII with an occasional wider code point.
        if rng.chance(0.9) {
            (b' ' + rng.below(95) as u8) as char
        } else {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('?')
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.f64() * 2.0 - 1.0) as f32 * 1.0e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.f64() * 2.0 - 1.0) * 1.0e12
    }
}
