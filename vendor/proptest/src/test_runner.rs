//! Test-runner types: deterministic RNG, config, and case errors.

/// Deterministic RNG (xoshiro256** seeded via SplitMix64), seeded from
/// the test's module path so every run generates the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// RNG deterministically derived from a test's fully-qualified name,
    /// overridable via the `PROPTEST_SEED` environment variable.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(var) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = var.parse::<u64>() {
                hash ^= extra;
            }
        }
        Self::seed_from_u64(hash)
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform in `[0, n)` for `usize`.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform in `[0, span)` for spans up to `u128`.
    pub fn below_u128(&mut self, span: u128) -> u128 {
        if span == 0 {
            0
        } else if span <= u64::MAX as u128 {
            self.below(span as u64) as u128
        } else {
            let wide = (self.next_u64() as u128) << 64 | self.next_u64() as u128;
            wide % span
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: the property does not hold.
    Fail(String),
    /// The generated input was rejected by `prop_assume!`; not a failure.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}
