//! Generator for the regex subset the workspace's string strategies use:
//! literals, escaped characters, character classes (with ranges and a
//! trailing `-`), groups, alternation, `.`, and the `{m}`/`{m,n}`/`?`/
//! `*`/`+` quantifiers.

use crate::test_runner::TestRng;

#[derive(Debug)]
enum Node {
    Alt(Vec<Node>),
    Seq(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
    Class(Vec<char>),
    Lit(char),
    AnyChar,
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alt(&mut self) -> Node {
        let mut branches = vec![self.parse_seq()];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_seq());
        }
        if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Node::Alt(branches)
        }
    }

    fn parse_seq(&mut self) -> Node {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            items.push(self.parse_quant(atom));
        }
        Node::Seq(items)
    }

    fn parse_atom(&mut self) -> Node {
        match self.bump() {
            Some('(') => {
                // Swallow non-capturing group markers `(?:`.
                if self.peek() == Some('?') && self.peek_at(1) == Some(':') {
                    self.bump();
                    self.bump();
                }
                let inner = self.parse_alt();
                self.bump(); // ')'
                inner
            }
            Some('[') => self.parse_class(),
            Some('.') => Node::AnyChar,
            Some('\\') => Node::Lit(unescape(self.bump().unwrap_or('\\'))),
            Some(c) => Node::Lit(c),
            None => Node::Seq(Vec::new()),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut set = Vec::new();
        while let Some(c) = self.bump() {
            if c == ']' {
                break;
            }
            let lo = if c == '\\' {
                unescape(self.bump().unwrap_or('\\'))
            } else {
                c
            };
            // `a-z` is a range unless the `-` is last in the class.
            if self.peek() == Some('-') && self.peek_at(1).is_some() && self.peek_at(1) != Some(']')
            {
                self.bump(); // '-'
                let hc = self.bump().unwrap();
                let hi = if hc == '\\' {
                    unescape(self.bump().unwrap_or('\\'))
                } else {
                    hc
                };
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                let mut ch = lo;
                loop {
                    set.push(ch);
                    if ch >= hi {
                        break;
                    }
                    ch = char::from_u32(ch as u32 + 1).unwrap_or(hi);
                }
            } else {
                set.push(lo);
            }
        }
        if set.is_empty() {
            set.push('?');
        }
        Node::Class(set)
    }

    fn parse_quant(&mut self, inner: Node) -> Node {
        match self.peek() {
            Some('{') => {
                self.bump();
                let mut digits = String::new();
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    digits.push(self.bump().unwrap());
                }
                let lo: u32 = digits.parse().unwrap_or(0);
                let hi = if self.peek() == Some(',') {
                    self.bump();
                    let mut digits = String::new();
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                        digits.push(self.bump().unwrap());
                    }
                    digits.parse().unwrap_or(lo + 8)
                } else {
                    lo
                };
                self.bump(); // '}'
                Node::Repeat(Box::new(inner), lo, hi.max(lo))
            }
            Some('?') => {
                self.bump();
                Node::Repeat(Box::new(inner), 0, 1)
            }
            Some('*') => {
                self.bump();
                Node::Repeat(Box::new(inner), 0, 8)
            }
            Some('+') => {
                self.bump();
                Node::Repeat(Box::new(inner), 1, 8)
            }
            _ => inner,
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(branches) => {
            let idx = rng.below_usize(branches.len());
            emit(&branches[idx], rng, out);
        }
        Node::Seq(items) => {
            for item in items {
                emit(item, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let count = *lo as u64 + rng.below((*hi - *lo + 1) as u64);
            for _ in 0..count {
                emit(inner, rng, out);
            }
        }
        Node::Class(set) => {
            out.push(set[rng.below_usize(set.len())]);
        }
        Node::Lit(c) => out.push(*c),
        Node::AnyChar => {
            // Printable ASCII.
            out.push((b' ' + rng.below(95) as u8) as char);
        }
    }
}

/// Generate one string matching `pattern` (anchored, full match).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
    };
    let ast = parser.parse_alt();
    let mut out = String::new();
    emit(&ast, rng, &mut out);
    out
}
