//! The [`Strategy`] trait and core combinators.
//!
//! Unlike real proptest there is no shrinking: a strategy is just a
//! deterministic-RNG-driven generator. That keeps the dependency
//! offline-buildable while preserving the API tests are written against.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy
    /// `f` derives from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discard generated values failing the predicate by regenerating
    /// (bounded retries; the last candidate wins if all fail).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut candidate = self.inner.generate(rng);
        for _ in 0..64 {
            if (self.f)(&candidate) {
                break;
            }
            candidate = self.inner.generate(rng);
        }
        candidate
    }
}

/// Always yields a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed strategies — what `prop_oneof!` builds.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below_usize(self.options.len());
        self.options[idx].generate(rng)
    }
}

/// References to strategies are strategies (generation takes `&self`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// String literals are regex strategies (subset: literals, classes,
/// groups, alternation, `{m,n}`/`?`/`*`/`+` quantifiers, `.`).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                if hi <= lo {
                    return self.start;
                }
                let span = (hi - lo) as u128;
                (lo + rng.below_u128(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                if hi <= lo {
                    return *self.start();
                }
                let span = (hi - lo) as u128 + 1;
                (lo + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as f64;
                let hi = self.end as f64;
                (lo + rng.f64() * (hi - lo)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as f64;
                let hi = *self.end() as f64;
                (lo + rng.f64() * (hi - lo)) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// A `Vec` of strategies generates element-wise (used by
/// `prop_flat_map` bodies that build per-index strategies).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($($S:ident $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A 0);
tuple_strategy!(A 0, B 1);
tuple_strategy!(A 0, B 1, C 2);
tuple_strategy!(A 0, B 1, C 2, D 3);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
