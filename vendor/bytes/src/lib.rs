//! Minimal, offline, API-compatible subset of the `bytes` crate.
//!
//! `Bytes` is a cheaply-clonable immutable byte buffer — an `Arc<[u8]>`
//! plus a `[start, end)` window, so `clone` and `slice` share the
//! backing storage instead of copying (matching the real crate).
//! `BytesMut` is a growable builder that freezes into one, and `BufMut`
//! the write-cursor trait the wire codecs use. Only the surface the
//! workspace actually exercises is provided.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply clonable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::from_shared(Arc::from(&[][..]))
    }

    /// Buffer viewing a static slice (copied here; semantics identical).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from_shared(Arc::from(bytes))
    }

    /// Buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_shared(Arc::from(data))
    }

    /// Buffer viewing an entire shared allocation (no copy).
    pub fn from_shared(data: Arc<[u8]>) -> Self {
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// Buffer viewing `[start, end)` of a shared allocation (no copy).
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn from_shared_range(data: Arc<[u8]>, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= data.len(), "range out of bounds");
        Bytes { data, start, end }
    }

    /// The shared backing allocation (covers more than `self` when this
    /// buffer is a slice of a larger one).
    pub fn shared(&self) -> &Arc<[u8]> {
        &self.data
    }

    /// This buffer's `[start, end)` window within [`Bytes::shared`].
    pub fn shared_range(&self) -> (usize, usize) {
        (self.start, self.end)
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-slice as a new buffer sharing the same storage (no copy).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_shared(Arc::from(v.into_boxed_slice()))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from_shared(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn clear(&mut self) {
        self.0.clear()
    }

    /// Reserve capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional)
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.0.extend_from_slice(extend)
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.0.resize(new_len, value)
    }

    pub fn truncate(&mut self, len: usize) {
        self.0.truncate(len)
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.0.len())
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.0.extend(iter)
    }
}

/// Write-cursor over a growable buffer (big-endian putters).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
    fn put_i8(&mut self, n: i8) {
        self.put_slice(&n.to_be_bytes());
    }
    fn put_i16(&mut self, n: i16) {
        self.put_slice(&n.to_be_bytes());
    }
    fn put_i32(&mut self, n: i32) {
        self.put_slice(&n.to_be_bytes());
    }
    fn put_i64(&mut self, n: i64) {
        self.put_slice(&n.to_be_bytes());
    }
    fn put_f32(&mut self, n: f32) {
        self.put_slice(&n.to_be_bytes());
    }
    fn put_f64(&mut self, n: f64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32(0xDEAD_BEEF);
        b.put_u8(7);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 5);
        assert_eq!(&frozen[..4], &0xDEAD_BEEFu32.to_be_bytes());
        assert_eq!(frozen.slice(4..5)[0], 7);
    }

    #[test]
    fn eq_across_types() {
        let b = Bytes::from("ping");
        assert_eq!(b, "ping");
        assert_eq!(b, b"ping"[..]);
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert!(Arc::ptr_eq(b.shared(), s.shared()), "no copy on slice");
        assert_eq!(s.shared_range(), (1, 4));
        let ss = s.slice(1..2);
        assert_eq!(&ss[..], &[3]);
        assert_eq!(ss.shared_range(), (2, 3));
    }

    #[test]
    fn nested_slice_of_slice_bounds() {
        let b = Bytes::from(vec![0u8; 10]);
        let s = b.slice(2..8);
        assert_eq!(s.len(), 6);
        assert_eq!(s.slice(..).len(), 6);
        assert_eq!(s.slice(6..6).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_end_panics() {
        let b = Bytes::from(vec![0u8; 4]);
        let _ = b.slice(2..6);
    }
}
