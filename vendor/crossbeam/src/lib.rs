//! Minimal, offline, API-compatible subset of `crossbeam`.
//!
//! Only scoped threads are used by the workspace; they are backed by
//! `std::thread::scope`. Child panics propagate when the scope unwinds
//! (std semantics) rather than surfacing through the returned `Result`,
//! which is indistinguishable for callers that `.unwrap()` the scope.

pub mod thread {
    /// Handle to a scope in which threads may be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may borrow from the enclosing scope. The
        /// closure receives the scope, crossbeam-style, so it can spawn
        /// further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let rescoped = Scope { inner: self.inner };
            self.inner.spawn(move || f(&rescoped))
        }
    }

    /// Result of a scope: `Ok` unless a child panicked.
    pub type ScopeResult<R> = Result<R, Box<dyn std::any::Any + Send + 'static>>;

    /// Create a scope for spawning borrowing threads; joins all children
    /// before returning.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
