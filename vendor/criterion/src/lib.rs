//! Minimal, offline, API-compatible subset of `criterion`.
//!
//! Benchmarks compile against this stub and run each body a handful of
//! times with coarse wall-clock timing — a smoke-run harness, not a
//! statistics engine. This keeps `cargo bench` meaningful offline
//! without pulling in the real crate's dependency tree.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// How many iterations the smoke harness runs per benchmark.
const SMOKE_ITERS: u64 = 3;

/// Measurement throughput annotation (recorded, reported alongside time).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Trait unifying `&str` and [`BenchmarkId`] as benchmark identifiers.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark bodies.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            black_box(routine());
        }
    }

    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            black_box(routine(input));
        }
    }
}

fn run_one(group: Option<&str>, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let start = Instant::now();
    let mut bencher = Bencher { iters: SMOKE_ITERS };
    f(&mut bencher);
    let elapsed = start.elapsed();
    eprintln!(
        "bench {label}: {:?}/iter ({SMOKE_ITERS} smoke iters)",
        elapsed / (SMOKE_ITERS as u32)
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into_benchmark_id(), &mut f);
        self
    }

    pub fn bench_with_input<I: IntoBenchmarkId, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into_benchmark_id(), &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(None, id, &mut f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
