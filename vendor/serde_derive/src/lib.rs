//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//!
//! The workspace derives these traits for documentation value (the wire
//! codecs are hand-rolled), so the derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
