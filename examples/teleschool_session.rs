//! The sample learning session of §5.4 (Figures 5.3–5.7): a student runs
//! the navigator, registers at the MIRL TeleSchool, registers for a
//! course with a multimedia introduction, takes the class, updates their
//! profile, browses the library, and exits — with the stop position saved
//! and restored on the next session.
//!
//! Run with: `cargo run --example teleschool_session`

use mits::author::{
    compile_imd, ElementKind, ImDocument, Scene, Section, Subsection, TimelineEntry,
};
use mits::core::{ClientId, CodSession, MitsSystem, SystemConfig};
use mits::media::{CaptureSpec, MediaFormat, ProductionCenter, VideoDims};
use mits::navigator::{LibraryBrowser, NavigatorUi, UiEvent, UiOutcome};
use mits::school::{Course, CourseCode, StudentRegistry};
use mits::sim::SimDuration;

fn main() {
    // ---- school-side setup: catalog + courseware -------------------
    let mut studio = ProductionCenter::new(5);
    let clip = |n: &str, s| {
        CaptureSpec::video(
            n,
            MediaFormat::Mpeg,
            SimDuration::from_secs(s),
            VideoDims::new(320, 240),
        )
    };
    let welcome_clip = studio.capture(&clip("welcome.mpg", 1));
    let lesson1 = studio.capture(&clip("lesson1.mpg", 2));
    let lesson2 = studio.capture(&clip("lesson2.mpg", 2));

    let mut doc = ImDocument::new("ATM Networks");
    doc.keywords = vec!["telecom/atm".into()];
    doc.sections.push(Section {
        title: "s".into(),
        subsections: vec![Subsection {
            title: "ss".into(),
            scenes: vec![
                Scene::new("welcome")
                    .element("v", ElementKind::Media((&welcome_clip).into()))
                    .entry(TimelineEntry::at_start("v")),
                Scene::new("lesson-1")
                    .element("v", ElementKind::Media((&lesson1).into()))
                    .entry(TimelineEntry::at_start("v")),
                Scene::new("lesson-2")
                    .element("v", ElementKind::Media((&lesson2).into()))
                    .entry(TimelineEntry::at_start("v")),
            ],
        }],
    });
    let compiled = compile_imd(55, &doc);

    let mut school = StudentRegistry::new();
    school.add_program("Telecommunications");
    school
        .add_course(Course {
            code: CourseCode("TEL101".into()),
            name: "ATM Networks".into(),
            program: "Telecommunications".into(),
            planned_sessions: 3,
            courseware: Some(compiled.root),
        })
        .unwrap();

    let mut system = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
    system
        .publish(&compiled.objects, studio.catalogue())
        .unwrap();

    // ---- Fig 5.3: the first screen of the navigator ----------------
    let mut ui = NavigatorUi::new();
    println!("== screen: {:?} (welcome video playing) ==", ui.screen());

    // Watch the introduction, then register.
    ui.handle(UiEvent::ClickIntroduction, &mut school);
    ui.handle(UiEvent::Back, &mut school);
    ui.handle(UiEvent::ClickRegister, &mut school);
    println!("== screen: {:?} ==", ui.screen());

    // ---- Fig 5.4: registration dialogs ------------------------------
    ui.handle(
        UiEvent::SubmitGeneralInfo {
            name: "Ruiping Example".into(),
            address: "800 King Edward Ave, Ottawa".into(),
            email: "student@mirlab.uottawa.ca".into(),
        },
        &mut school,
    );
    println!(
        "programs offered: {:?}; courses: {:?}",
        school.programs(),
        school
            .courses_in_program("Telecommunications")
            .unwrap()
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>()
    );
    ui.handle(
        UiEvent::SelectCourse(CourseCode("TEL101".into())),
        &mut school,
    );
    let UiOutcome::Registered(number) = ui.handle(UiEvent::FinishRegistration, &mut school) else {
        panic!("registration failed");
    };
    println!("registered: student number {number}\n");

    // ---- Fig 5.5: classroom presentation ----------------------------
    ui.handle(
        UiEvent::OpenClassroom(CourseCode("TEL101".into())),
        &mut school,
    );
    println!("== screen: {:?} ==", ui.screen());
    {
        let mut session =
            CodSession::open(&mut system, ClientId(0), compiled.root, "ATM Networks").unwrap();
        session.start().unwrap();
        // Watch the welcome and the first lesson, then leave mid-course.
        session.play(SimDuration::from_millis(1_200)).unwrap();
        session.play(SimDuration::from_millis(1_000)).unwrap();
        let stop_unit = session.current_unit().unwrap();
        println!(
            "watched up to unit {stop_unit} ('{}'); leaving class",
            compiled.units[stop_unit].0
        );
        // "Some important information such as the stop position ... is to
        // be automatically stored" (§5.4).
        school
            .record_session(number, &CourseCode("TEL101".into()), Some(stop_unit as u32))
            .unwrap();
    }
    ui.handle(UiEvent::Back, &mut school);

    // ---- Fig 5.6: update the student profile ------------------------
    ui.handle(UiEvent::OpenAdministration, &mut school);
    ui.handle(
        UiEvent::SubmitProfile {
            address: Some("75 Laurier Ave E, Ottawa".into()),
            email: None,
        },
        &mut school,
    );
    println!(
        "profile updated: {}",
        school.lookup(number).unwrap().address
    );

    // ---- Fig 5.7: browse the library ---------------------------------
    ui.handle(UiEvent::OpenLibrary, &mut school);
    let (tree, _) = system.get_keyword_tree(ClientId(0)).unwrap();
    let (docs, _) = system.get_list_doc(ClientId(0)).unwrap();
    let mut browser = LibraryBrowser::new(tree, docs);
    println!("library shelves: {:?}", browser.shelves());
    browser.enter("telecom");
    println!("telecom shelf: {:?}", browser.documents());
    ui.handle(UiEvent::Back, &mut school);

    // ---- exit, then resume next session ------------------------------
    ui.handle(UiEvent::Exit, &mut school);
    println!("\nsession log:");
    for line in &ui.log {
        println!("  - {line}");
    }

    // Next day: the course resumes at the saved unit.
    let resume = school
        .resume_position(number, &CourseCode("TEL101".into()))
        .unwrap()
        .expect("position saved");
    let mut session2 =
        CodSession::open(&mut system, ClientId(0), compiled.root, "ATM Networks").unwrap();
    session2.resume(resume as usize).unwrap();
    println!(
        "\nresumed at unit {resume} ('{}')",
        compiled.units[resume as usize].0
    );
    session2.auto_play(SimDuration::from_secs(10)).unwrap();
    println!(
        "course completed on second session: {}",
        session2.report.completed
    );
    assert!(session2.report.completed);
}
