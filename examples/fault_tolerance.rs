//! Fault tolerance: the telelearning session under hostile network
//! conditions — the part the paper's ideal-broadband argument leaves
//! out. Four acts:
//!
//! 1. a noisy access uplink (independent cell loss) that the ARQ and
//!    the client's deadline/backoff retry machinery absorb;
//! 2. a mid-session link outage that the retry machinery carries a
//!    fetch across;
//! 3. lost content that degrades its element to a placeholder instead
//!    of aborting the course;
//! 4. the primary courseware server killed mid-fetch — the client
//!    fails over to the WAL-shipped replica, the course plays with
//!    zero degraded elements, and a scheduled restart replays the
//!    journal and fails the client back.
//!
//! Everything is seeded: run it twice and the retry counts match.
//!
//! Run with: `cargo run --example fault_tolerance`

use mits::atm::{FaultPlan, LinkFaults};
use mits::author::{
    compile_imd, ElementKind, ImDocument, Scene, Section, Subsection, TimelineEntry,
};
use mits::core::{ClientId, CodSession, MitsSystem, SystemConfig};
use mits::db::RetryPolicy;
use mits::media::{CaptureSpec, MediaFormat, MediaObject, ProductionCenter, VideoDims};
use mits::mheg::MhegObject;
use mits::sim::{SimDuration, SimTime};

fn course() -> (Vec<MhegObject>, Vec<MediaObject>, mits::mheg::MhegId) {
    let mut studio = ProductionCenter::new(96);
    let clip = studio.capture(&CaptureSpec::video(
        "intro.mpg",
        MediaFormat::Mpeg,
        SimDuration::from_secs(1),
        VideoDims::new(320, 240),
    ));
    let diagram = studio.capture(&CaptureSpec::image(
        "diagram.gif",
        MediaFormat::Gif,
        VideoDims::new(400, 300),
    ));
    let mut doc = ImDocument::new("Fault Course");
    doc.sections.push(Section {
        title: "s".into(),
        subsections: vec![Subsection {
            title: "ss".into(),
            scenes: vec![
                Scene::new("video")
                    .element("v", ElementKind::Media((&clip).into()))
                    .entry(TimelineEntry::at_start("v")),
                Scene::new("image")
                    .element("d", ElementKind::Media((&diagram).into()))
                    .entry(TimelineEntry::at_start("d").for_duration(SimDuration::from_secs(1))),
            ],
        }],
    });
    let compiled = compile_imd(70, &doc);
    (compiled.objects, vec![clip, diagram], compiled.root)
}

fn main() {
    // ------------------------------------------------------------------
    // Act 1: a noisy access uplink.
    // ------------------------------------------------------------------
    println!("== act 1: 30% cell loss on the student's access uplink ==");
    let (objects, media, root) = course();
    let cfg = SystemConfig::broadband(1)
        .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(60)));
    let mut system = MitsSystem::build(&cfg).unwrap();
    let student = system.client_host(ClientId(0));
    system.net.set_fault_plan(FaultPlan::none().with_link(
        student,
        system.switch(),
        LinkFaults::loss(0.30),
    ));
    system.load_directly(objects.clone(), media.clone());
    for _ in 0..8 {
        system.get_list_doc(ClientId(0)).unwrap();
    }
    let mut session = CodSession::open(&mut system, ClientId(0), root, "Fault Course").unwrap();
    session.start().unwrap();
    session.auto_play(SimDuration::from_secs(5)).unwrap();
    println!("course completed: {}", session.report.completed);
    let faults = system.net.fault_stats();
    println!(
        "cells through the faulted link: {}, destroyed: {}",
        faults.faulted_cells,
        faults.total_losses()
    );
    let m = system.client_metrics(ClientId(0));
    println!(
        "client metrics: {} attempts / {} completed, {} retries, {} timeouts, {} expired",
        m.attempts, m.completed, m.retries, m.timeouts, m.expired
    );
    println!(
        "request latency: p50 {:.1} ms, p99 {:.1} ms",
        m.overall_latency_quantile(0.50).unwrap_or(0.0) * 1e3,
        m.overall_latency_quantile(0.99).unwrap_or(0.0) * 1e3,
    );

    // ------------------------------------------------------------------
    // Act 2: the access link goes down for 2 s mid-session.
    // ------------------------------------------------------------------
    println!("\n== act 2: 2 s outage while fetching ==");
    let (objects, media, root) = course();
    let mut system = MitsSystem::build(&cfg).unwrap();
    system.load_directly(objects, media);
    system.pump_until(SimTime::from_millis(50)).unwrap();
    let outage =
        LinkFaults::default().with_down(SimTime::from_millis(50), SimTime::from_millis(2050));
    system.net.set_fault_plan(FaultPlan::uniform(outage));
    let (objs, t) = system.fetch_courseware(ClientId(0), root).unwrap();
    let m = system.client_metrics(ClientId(0));
    println!(
        "fetched {} objects in {t} across the outage ({} retries, {} timeouts, {} cells lost to downtime)",
        objs.len(),
        m.retries,
        m.timeouts,
        system.net.fault_stats().downtime_losses,
    );

    // ------------------------------------------------------------------
    // Act 3: content lost at the source — degrade, don't abort.
    // ------------------------------------------------------------------
    println!("\n== act 3: graceful degradation ==");
    let (objects, media, root) = course();
    let mut system = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
    // The diagram never made it into the database.
    system.load_directly(objects, vec![media[0].clone()]);
    let mut session = CodSession::open(&mut system, ClientId(0), root, "Fault Course").unwrap();
    session.start().unwrap();
    session.auto_play(SimDuration::from_secs(5)).unwrap();
    println!(
        "completed: {} (degraded media: {:?})",
        session.report.completed, session.report.degraded
    );
    println!(
        "placeholder elements: {:?}",
        session
            .presentation()
            .degraded_elements()
            .collect::<Vec<_>>()
    );
    assert!(session.report.completed && session.report.is_degraded());

    // ------------------------------------------------------------------
    // Act 4: the primary server dies mid-fetch; the replica carries on.
    // ------------------------------------------------------------------
    println!("\n== act 4: primary killed mid-fetch, replica failover ==");
    let (objects, media, root) = course();
    let cfg = SystemConfig::broadband(1)
        .with_replica()
        .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(60)))
        .with_crash(SimTime::from_secs(2), 0)
        .with_restart(SimTime::from_secs(20), 0);
    let mut system = MitsSystem::build(&cfg).unwrap();
    system.load_directly(objects.clone(), media);
    // Run straight into the crash: the fetch starts with the primary
    // up and finishes against the replica.
    system.pump_until(SimTime::from_micros(1_999_700)).unwrap();
    let (objs, t) = system.fetch_courseware(ClientId(0), root).unwrap();
    println!(
        "fetched {} objects in {t}; primary up: {}, serving from server {} after {} failover(s)",
        objs.len(),
        system.server_up(0),
        system.active_server(ClientId(0)),
        system.failovers,
    );
    let mut session = CodSession::open(&mut system, ClientId(0), root, "Fault Course").unwrap();
    session.start().unwrap();
    session.auto_play(SimDuration::from_secs(5)).unwrap();
    println!(
        "course on the replica — completed: {}, degraded elements: {}",
        session.report.completed,
        session.report.degraded.len()
    );
    assert!(session.report.completed && !session.report.is_degraded());
    // Let the scheduled restart run: the primary replays its journal
    // (plus whatever it missed, resynced from the replica) and the
    // clients fail back to it.
    system.pump_until(SimTime::from_secs(25)).unwrap();
    let recovery = system.last_recovery.as_ref().unwrap();
    println!(
        "primary restarted: replayed {} snapshot + {} WAL records ({} bytes), torn tail: {}",
        recovery.snapshot_records,
        recovery.wal_records,
        recovery.replayed_bytes(),
        recovery.torn_tail,
    );
    println!(
        "failed back to server {}; primary and replica digests match: {}",
        system.active_server(ClientId(0)),
        system.db_at(0).state_digest() == system.db_at(1).state_digest(),
    );
    assert_eq!(system.active_server(ClientId(0)), 0);
    assert_eq!(
        system.db_at(0).state_digest(),
        system.db_at(1).state_digest()
    );
}
