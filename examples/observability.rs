//! Observability: every layer of a Course-On-Demand session, traced.
//!
//! A student takes a two-scene course over an access uplink losing 25%
//! of its cells. The system's deterministic tracer records a span tree —
//! the session root, its open/prefetch stages, each database request
//! with one child span per retry attempt, and the uplink / service /
//! downlink hops stitched across the wire by the protocol's trace
//! field. The metrics registry collects counters from the ATM links,
//! the server's WAL, the client's retry machinery, and the MHEG engine.
//!
//! Everything is seeded, so two runs print byte-identical traces —
//! `scripts/check.sh` diffs the JSONL dump against a golden file.
//!
//! Run with: `cargo run --example observability [-- --trace-out trace.jsonl]`

use mits::atm::{FaultPlan, LinkFaults};
use mits::author::{
    compile_imd, ElementKind, ImDocument, Scene, Section, Subsection, TimelineEntry,
};
use mits::core::{ClientId, CodSession, MitsSystem, SystemConfig};
use mits::db::RetryPolicy;
use mits::media::{CaptureSpec, MediaFormat, MediaObject, ProductionCenter, VideoDims};
use mits::mheg::MhegObject;
use mits::sim::SimDuration;

fn course() -> (Vec<MhegObject>, Vec<MediaObject>, mits::mheg::MhegId) {
    let mut studio = ProductionCenter::new(61);
    let clip = studio.capture(&CaptureSpec::video(
        "intro.mpg",
        MediaFormat::Mpeg,
        SimDuration::from_secs(1),
        VideoDims::new(320, 240),
    ));
    let diagram = studio.capture(&CaptureSpec::image(
        "diagram.gif",
        MediaFormat::Gif,
        VideoDims::new(400, 300),
    ));
    let mut doc = ImDocument::new("Observed Course");
    doc.sections.push(Section {
        title: "s".into(),
        subsections: vec![Subsection {
            title: "ss".into(),
            scenes: vec![
                Scene::new("video")
                    .element("v", ElementKind::Media((&clip).into()))
                    .entry(TimelineEntry::at_start("v")),
                Scene::new("image")
                    .element("d", ElementKind::Media((&diagram).into()))
                    .entry(TimelineEntry::at_start("d").for_duration(SimDuration::from_secs(1))),
            ],
        }],
    });
    let compiled = compile_imd(71, &doc);
    (compiled.objects, vec![clip, diagram], compiled.root)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (objects, media, root) = course();
    let cfg = SystemConfig::broadband(1)
        .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(60)));
    let mut system = MitsSystem::build(&cfg).unwrap();
    let student = system.client_host(ClientId(0));
    system.net.set_fault_plan(FaultPlan::none().with_link(
        student,
        system.switch(),
        LinkFaults::loss(0.25),
    ));
    system.load_directly(objects, media);

    let mut session = CodSession::open(&mut system, ClientId(0), root, "Observed Course").unwrap();
    session.start().unwrap();
    session.auto_play(SimDuration::from_secs(5)).unwrap();
    session.finish();
    let session_span = session.root_span();
    drop(session);

    println!("== CodSession latency waterfall ==");
    print!("{}", system.tracer.waterfall(session_span));

    println!("\n== metrics registry ==");
    print!("{}", system.metrics.to_text());

    println!(
        "\n{} spans, {} events recorded",
        system.tracer.span_count(),
        system.tracer.event_count()
    );

    if let Some(path) = trace_out {
        std::fs::write(&path, system.tracer.to_jsonl()).unwrap();
        println!("JSONL trace written to {path}");
    }
}
