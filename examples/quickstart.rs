//! Quickstart: the whole courseware life cycle (Fig 3.3) in one file —
//! production → authoring → storage → delivery → presentation.
//!
//! Run with: `cargo run --example quickstart`

use mits::author::{
    compile_imd, validate_imd, Behavior, BehaviorAction, BehaviorCondition, ElementKind,
    ImDocument, Scene, Section, Subsection, TimelineEntry,
};
use mits::core::{ClientId, CodSession, MitsSystem, SystemConfig};
use mits::media::{CaptureSpec, MediaFormat, ProductionCenter, VideoDims};
use mits::sim::SimDuration;

fn main() {
    // ------------------------------------------------------------------
    // 1. Media production center (§3.4.1): capture course material.
    // ------------------------------------------------------------------
    let mut studio = ProductionCenter::new(1996);
    let welcome = studio.capture(&CaptureSpec::video(
        "welcome.mpg",
        MediaFormat::Mpeg,
        SimDuration::from_secs(2),
        VideoDims::new(320, 240),
    ));
    let diagram = studio.capture(&CaptureSpec::image(
        "cell-format.gif",
        MediaFormat::Gif,
        VideoDims::new(400, 300),
    ));
    let narration = studio.capture(&CaptureSpec::audio(
        "narration.wav",
        MediaFormat::Wav,
        SimDuration::from_secs(3),
    ));
    println!(
        "produced {} media objects ({} bytes):",
        studio.catalogue().len(),
        studio.total_bytes()
    );
    for m in studio.catalogue() {
        println!("  {}", m.describe());
    }

    // ------------------------------------------------------------------
    // 2. Author site (Ch. 4): an interactive multimedia document.
    // ------------------------------------------------------------------
    let mut doc = ImDocument::new("Quickstart Course");
    doc.keywords = vec!["telecom/atm".into(), "demo".into()];
    doc.sections.push(Section {
        title: "Introduction".into(),
        subsections: vec![Subsection {
            title: "Welcome".into(),
            scenes: vec![
                Scene::new("welcome")
                    .element("video", ElementKind::Media((&welcome).into()))
                    .element("skip", ElementKind::Button("Skip intro".into()))
                    .entry(TimelineEntry::at_start("video"))
                    .entry(TimelineEntry::at_start("skip").at(10, 220))
                    .behavior(Behavior::when(
                        BehaviorCondition::Clicked("skip".into()),
                        vec![BehaviorAction::NextScene],
                    )),
                Scene::new("lesson")
                    .element("figure", ElementKind::Media((&diagram).into()))
                    .element("voice", ElementKind::Media((&narration).into()))
                    .element(
                        "caption",
                        ElementKind::Caption("The 53-byte ATM cell".into()),
                    )
                    .entry(
                        TimelineEntry::at_start("figure").for_duration(SimDuration::from_secs(3)),
                    )
                    .entry(TimelineEntry::at_start("voice"))
                    .entry(
                        TimelineEntry::at_start("caption")
                            .starting(SimDuration::from_millis(500))
                            .for_duration(SimDuration::from_millis(2_500))
                            .at(10, 260),
                    ),
            ],
        }],
    });
    let issues = validate_imd(&doc);
    assert!(issues.is_empty(), "authoring issues: {issues:?}");
    let compiled = compile_imd(100, &doc);
    println!(
        "\ncompiled '{}': {} MHEG objects, {} scenes",
        doc.title,
        compiled.objects.len(),
        compiled.units.len()
    );

    // ------------------------------------------------------------------
    // 3. Publish to the courseware database over the ATM network.
    // ------------------------------------------------------------------
    let mut system = MitsSystem::build(&SystemConfig::broadband(1)).expect("topology");
    let publish_time = system
        .publish(&compiled.objects, studio.catalogue())
        .expect("publish");
    println!("published over the network in {publish_time} (virtual)");

    // ------------------------------------------------------------------
    // 4. A student takes the course on demand.
    // ------------------------------------------------------------------
    let (docs, t) = system.get_list_doc(ClientId(0)).expect("list");
    println!("\ncourse catalog (fetched in {t}):");
    for (id, name) in &docs {
        println!("  {id}  {name}");
    }
    let mut session =
        CodSession::open(&mut system, ClientId(0), compiled.root, "Quickstart Course")
            .expect("open session");
    session.start().expect("start");
    println!(
        "startup latency: {} (scenario {} + first-unit content {})",
        session.report.startup(),
        session.report.scenario_fetch,
        session.report.first_unit_fetch
    );
    // Watch a bit of the intro, then skip.
    session.play(SimDuration::from_millis(500)).unwrap();
    session.click("Skip intro").expect("click");
    println!(
        "clicked 'Skip intro' → now at unit {:?}",
        session.current_unit()
    );
    session.auto_play(SimDuration::from_secs(10)).unwrap();
    let r = &session.report;
    println!(
        "\ncourse completed: {} | stalls: {:?} | bytes transferred: {}",
        r.completed, r.stalls, r.bytes_transferred
    );
    assert!(r.completed);
}
