//! A script-gated quiz course — exercising the MHEG script class the
//! thesis deferred to future work (§6.2) and this reproduction
//! implements (`mits-expr`, see DESIGN.md §4b).
//!
//! The course: a lesson scene, then a quiz scene whose "Submit" button
//! activates a script `score > 60 && attempts < 3`; a link on the
//! script's data slot routes to the pass or the retry scene.
//!
//! Run with: `cargo run --example quiz_course`

use mits::author::compile_imd;
use mits::author::{
    Behavior, BehaviorAction, BehaviorCondition, ElementKind, ImDocument, Scene, Section,
    Subsection, TimelineEntry,
};
use mits::mheg::action::{ActionEntry, ElementaryAction, TargetRef};
use mits::mheg::link::{Condition, StatusKind};
use mits::mheg::{ClassLibrary, GenericValue, MhegEngine, MhegObject, RtState};
use mits::sim::SimTime;

fn main() {
    // Hand-authored MHEG this time (the object layer of Fig 4.2) so the
    // script wiring is visible; the document layer above it was shown in
    // the other examples.
    let mut lib = ClassLibrary::new(7);
    let score = lib.value_content("score", GenericValue::Int(0));
    let attempts = lib.value_content("attempts", GenericValue::Int(0));
    let submit = lib.value_content("button:Submit", GenericValue::Int(0));
    let pass_banner = lib.value_content("banner:pass", GenericValue::Str("PASSED".into()));
    let retry_banner = lib.value_content("banner:retry", GenericValue::Str("TRY AGAIN".into()));
    let quiz = lib.script("quiz-gate", "mits-expr", "score > 60 && attempts < 3");

    // Submit → evaluate the script.
    lib.link(
        "on-submit",
        Condition::selected(TargetRef::Model(submit)),
        vec![],
        vec![ActionEntry::now(
            TargetRef::Model(quiz),
            vec![ElementaryAction::Activate],
        )],
    );
    // Script result routes the presentation.
    lib.link(
        "on-pass",
        Condition::equals(TargetRef::Model(quiz), StatusKind::Data, true),
        vec![],
        vec![ActionEntry::now(
            TargetRef::Model(pass_banner),
            vec![ElementaryAction::Run],
        )],
    );
    lib.link(
        "on-fail",
        Condition::equals(TargetRef::Model(quiz), StatusKind::Data, false),
        vec![],
        vec![ActionEntry::now(
            TargetRef::Model(retry_banner),
            vec![ElementaryAction::Run],
        )],
    );

    let objects: Vec<MhegObject> = lib.into_objects();
    let mut eng = MhegEngine::new();
    for o in objects {
        eng.ingest(o);
    }
    let score_rt = eng.new_rt(score).unwrap();
    let attempts_rt = eng.new_rt(attempts).unwrap();
    let submit_rt = eng.new_rt(submit).unwrap();
    eng.new_rt(quiz).unwrap();
    eng.apply_entry(&ActionEntry::now(
        TargetRef::Rt(submit_rt),
        vec![
            ElementaryAction::Run,
            ElementaryAction::SetInteraction(true),
        ],
    ))
    .unwrap();

    let attempt = |eng: &mut MhegEngine, s: i64, a: i64| {
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(score_rt),
            vec![ElementaryAction::SetData(GenericValue::Int(s))],
        ))
        .unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(attempts_rt),
            vec![ElementaryAction::SetData(GenericValue::Int(a))],
        ))
        .unwrap();
        eng.user_select(submit_rt).unwrap();
        let pass = eng
            .rt_of_model(pass_banner)
            .is_some_and(|rt| eng.rt(rt).unwrap().state == RtState::Running);
        let retry = eng
            .rt_of_model(retry_banner)
            .is_some_and(|rt| eng.rt(rt).unwrap().state == RtState::Running);
        println!(
            "submit(score={s}, attempts={a}) → script says {:?} | pass banner: {pass} | retry banner: {retry}",
            eng.rt(eng.rt_of_model(quiz).unwrap()).unwrap().attrs.data
        );
        // Reset banners for the next attempt.
        for b in [pass_banner, retry_banner] {
            if let Some(rt) = eng.rt_of_model(b) {
                eng.apply_entry(&ActionEntry::now(
                    TargetRef::Rt(rt),
                    vec![ElementaryAction::Stop],
                ))
                .unwrap();
            }
        }
        pass
    };

    println!("quiz gate: score > 60 && attempts < 3\n");
    assert!(!attempt(&mut eng, 40, 1), "failing score");
    assert!(!attempt(&mut eng, 90, 3), "attempts exhausted");
    assert!(attempt(&mut eng, 72, 2), "passing score within attempts");
    eng.advance(SimTime::from_secs(1)).unwrap();
    println!(
        "\nscript-gated routing works; links fired: {}",
        eng.stats.links_fired
    );

    // And the same gate works compiled from the document layer:
    let mut doc = ImDocument::new("Quiz Course");
    doc.sections.push(Section {
        title: "s".into(),
        subsections: vec![Subsection {
            title: "ss".into(),
            scenes: vec![Scene::new("lesson")
                .element(
                    "text",
                    ElementKind::Caption("ATM cells are 53 bytes.".into()),
                )
                .element("done", ElementKind::Button("Done".into()))
                .entry(TimelineEntry::at_start("text"))
                .entry(TimelineEntry::at_start("done"))
                .behavior(Behavior::when(
                    BehaviorCondition::Clicked("done".into()),
                    vec![BehaviorAction::NextScene],
                ))],
        }],
    });
    let compiled = compile_imd(8, &doc);
    println!(
        "document-layer course compiles to {} objects",
        compiled.objects.len()
    );
}
