//! Campus at scale: stream a whole student population through the
//! memory-bounded `Campus` runner with a custom `ReportSink`.
//!
//! The paper's TeleSchool serves a campus, not a seat — so the runner
//! admits sessions through a small concurrency window, retires them as
//! they finish, and streams every outcome to the sink in deterministic
//! student-index order. Live memory is bounded by `max_concurrent`, not
//! by the population: 512 students here cost the same RSS as 50.
//!
//! Run with: `cargo run --release --example campus_scale`

use bytes::Bytes;
use mits::core::{Campus, CampusRollup, CampusWorkload, ReportSink, SessionReport, ShardTrace};
use mits::media::{MediaFormat, MediaId, MediaObject, VideoDims};
use mits::mheg::{ClassLibrary, GenericValue};
use mits::sim::SimDuration;

/// A sink that watches the stream go by: a progress line every 128
/// retired sessions, plus a tally of anomalies and sampled traces. It
/// keeps counters, not sessions — memory stays flat no matter how large
/// the campus grows.
#[derive(Default)]
struct ProgressSink {
    retired: usize,
    bytes: u64,
    anomalous: usize,
    traces: usize,
}

impl ReportSink for ProgressSink {
    fn session(&mut self, report: &SessionReport) {
        self.retired += 1;
        self.bytes += report.bytes;
        self.anomalous += usize::from(report.anomalous);
        if self.retired.is_multiple_of(128) {
            println!(
                "  retired {:>4} sessions, {:>6.1} MB simulated",
                self.retired,
                self.bytes as f64 / (1024.0 * 1024.0)
            );
        }
    }

    fn trace(&mut self, trace: &ShardTrace) {
        self.traces += 1;
        println!(
            "  trace kept for student {:>4} ({})",
            trace.student,
            trace.reason.as_str()
        );
    }

    fn rollup(&mut self, rollup: &CampusRollup) {
        println!(
            "campus of {} students on {} threads (window {}): digest 0x{:016x}, \
             {} failed, {} SLO breaches, {:.1}s wall",
            rollup.students,
            rollup.threads,
            rollup.max_concurrent,
            rollup.digest,
            rollup.sessions_failed,
            rollup.slo.breaches(),
            rollup.wall_secs
        );
    }
}

fn main() {
    // One scenario closure plus a single 8 KB MPEG clip per student.
    let mut lib = ClassLibrary::new(1);
    let v = lib.value_content("v", GenericValue::Int(1));
    let root = lib.container("Course", vec![v]);
    let clip: Vec<u8> = (0..8 * 1024).map(|j| (j % 251) as u8).collect();
    let workload = CampusWorkload {
        objects: lib.into_objects(),
        media: vec![MediaObject::new(
            MediaId(700),
            String::from("clip.mpg"),
            MediaFormat::Mpeg,
            SimDuration::from_secs(1),
            VideoDims::new(160, 120),
            Bytes::from(clip),
        )],
        root,
    };

    let mut sink = ProgressSink::default();
    Campus::new(512, 42)
        .threads(2)
        .max_concurrent(2)
        .trace_sample_rate(0.01)
        .workload(workload)
        .run_with(&mut sink)
        .expect("campus run");
    println!(
        "sink saw {} sessions, {} anomalous, {} traces",
        sink.retired, sink.anomalous, sink.traces
    );
}
