//! Help on demand vs the SIDL telephone queue (§1.3.1, experiment
//! E-SIDL): the same stream of student questions against MITS's on-line
//! facilitators and against a satellite-broadcast system with three
//! telephone lines open one hour a day.
//!
//! Run with: `cargo run --example facilitator_comparison`

use mits::school::{simulate_facilitation, FacilitationModel};
use mits::sim::SimDuration;

fn main() {
    let arrival = SimDuration::from_secs(1200); // a question every 20 min
                                                // (within SIDL's 3-line × 1 h/day capacity, so its queue is stable —
                                                // at higher loads SIDL degenerates into an ever-growing backlog)
    let service = SimDuration::from_secs(120); // 2-min answers
    let questions = 2_000;

    println!("question load: 1 per {arrival}, answers take {service} (mean), n={questions}\n");
    println!(
        "{:<34} {:>12} {:>12} {:>12} {:>10}",
        "facilitation model", "mean wait", "median", "p95", "answered"
    );

    let models: Vec<(String, FacilitationModel)> = vec![
        (
            "MITS on-line, 2 facilitators".into(),
            FacilitationModel::MitsOnline { facilitators: 2 },
        ),
        (
            "MITS on-line, 4 facilitators".into(),
            FacilitationModel::MitsOnline { facilitators: 4 },
        ),
        (
            "SIDL: 3 lines, 1 h/day window".into(),
            FacilitationModel::SidlBroadcast {
                lines: 3,
                window: SimDuration::from_secs(3_600),
                period: SimDuration::from_secs(24 * 3_600),
            },
        ),
        (
            "SIDL: 3 lines, 2 h/day window".into(),
            FacilitationModel::SidlBroadcast {
                lines: 3,
                window: SimDuration::from_secs(2 * 3_600),
                period: SimDuration::from_secs(24 * 3_600),
            },
        ),
    ];

    for (name, model) in models {
        let report = simulate_facilitation(model, arrival, service, questions, 1996);
        println!(
            "{:<34} {:>11.0}s {:>11.0}s {:>11.0}s {:>10}",
            name,
            report.wait.mean(),
            report.histogram.median().unwrap_or(0.0),
            report.histogram.quantile(0.95).unwrap_or(0.0),
            report.answered,
        );
    }

    println!(
        "\nshape check: the paper's complaint — \"this could be frustrating for a \
         distant student trying to get a word in\" — shows up as hours of \
         waiting in the SIDL rows vs seconds for on-demand facilitation."
    );
}
