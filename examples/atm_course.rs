//! The paper's own worked example: an interactive multimedia course about
//! ATM technology (Figure 4.4), authored with the full document model —
//! logical structure (sections → subsections → scenes), time-line
//! structure with user preemption (`choice1` shows `image1` before its
//! scheduled time `t2`), and behavior structure (`stop` stops `audio1`,
//! `text1` and `image1`; `text1` ending shows `image1`).
//!
//! Run with: `cargo run --example atm_course`

use mits::author::{
    compile_imd, validate_imd, Behavior, BehaviorAction, BehaviorCondition, ElementKind,
    ImDocument, Scene, Section, Subsection, TimelineEntry,
};
use mits::core::{ClientId, CodSession, MitsSystem, SystemConfig};
use mits::media::{CaptureSpec, MediaFormat, ProductionCenter, VideoDims};
use mits::sim::SimDuration;

fn main() {
    // Course material from the production center.
    let mut studio = ProductionCenter::new(4_4);
    let audio1 = studio.capture(&CaptureSpec::audio(
        "audio1.wav",
        MediaFormat::Wav,
        SimDuration::from_secs(4),
    ));
    let image1 = studio.capture(&CaptureSpec::image(
        "image1.gif",
        MediaFormat::Gif,
        VideoDims::new(320, 240),
    ));
    let lecture = studio.capture(&CaptureSpec::video(
        "atm-switching.mpg",
        MediaFormat::Mpeg,
        SimDuration::from_secs(3),
        VideoDims::new(320, 240),
    ));

    // The Fig 4.4 logical structure: a course with sections, subsections
    // and scenes. Scene 1 is the figure's timeline/behavior example.
    let mut doc = ImDocument::new("ATM Technology");
    doc.keywords = vec!["telecom/atm".into(), "networks/broadband".into()];
    doc.sections.push(Section {
        title: "ATM basics".into(),
        subsections: vec![Subsection {
            title: "Cells and multiplexing".into(),
            scenes: vec![
                // Fig 4.4b/c: text1 shows for [t1, t2); choice1 can preempt
                // it and display image1 early; a stop button stops
                // audio1 + text1 + image1; text1 ending shows image1.
                Scene::new("scene1")
                    .element("audio1", ElementKind::Media((&audio1).into()))
                    .element(
                        "text1",
                        ElementKind::Caption("ATM multiplexes fixed-size cells.".into()),
                    )
                    .element("image1", ElementKind::Media((&image1).into()))
                    .element("choice1", ElementKind::Button("show image now".into()))
                    .element("stop", ElementKind::Button("stop".into()))
                    .entry(TimelineEntry::at_start("audio1"))
                    .entry(TimelineEntry::at_start("text1").for_duration(SimDuration::from_secs(4)))
                    .entry(TimelineEntry::at_start("choice1").at(10, 200))
                    .entry(TimelineEntry::at_start("stop").at(120, 200))
                    .behavior(Behavior::when(
                        BehaviorCondition::Clicked("choice1".into()),
                        vec![
                            BehaviorAction::Stop("text1".into()),
                            BehaviorAction::Start("image1".into()),
                        ],
                    ))
                    .behavior(Behavior::when(
                        BehaviorCondition::Finished("text1".into()),
                        vec![BehaviorAction::Start("image1".into())],
                    ))
                    .behavior(Behavior::when(
                        BehaviorCondition::Clicked("stop".into()),
                        vec![
                            BehaviorAction::Stop("audio1".into()),
                            BehaviorAction::Stop("text1".into()),
                            BehaviorAction::Stop("image1".into()),
                            BehaviorAction::NextScene,
                        ],
                    )),
                Scene::new("scene2")
                    .element("video", ElementKind::Media((&lecture).into()))
                    .entry(TimelineEntry::at_start("video")),
            ],
        }],
    });
    assert!(validate_imd(&doc).is_empty());
    let compiled = compile_imd(44, &doc);
    println!(
        "authored '{}' → {} MHEG objects, {} scenes",
        doc.title,
        compiled.objects.len(),
        compiled.units.len()
    );

    // Deploy and run with interaction.
    let mut system = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
    system
        .publish(&compiled.objects, studio.catalogue())
        .unwrap();
    let mut session =
        CodSession::open(&mut system, ClientId(0), compiled.root, "ATM Technology").unwrap();
    session.start().unwrap();
    println!("scene1 on screen: {:?}", visible_names(&session));

    // Fig 4.4b: the user clicks choice1 at t=1 s, *before* text1's
    // scheduled end at t=4 s — image1 appears early.
    session.play(SimDuration::from_secs(1)).unwrap();
    session.click("show image now").unwrap();
    println!("after choice1 at t=1s: {:?}", visible_names(&session));
    assert!(
        visible_names(&session).iter().any(|n| n == "image1.gif"),
        "image shown early by the choice"
    );

    // Fig 4.4c: the stop button stops everything and advances.
    session.play(SimDuration::from_millis(500)).unwrap();
    session.click("stop").unwrap();
    println!(
        "after stop: unit {:?}, on screen {:?}",
        session.current_unit(),
        visible_names(&session)
    );

    // scene2 plays out.
    session.auto_play(SimDuration::from_secs(10)).unwrap();
    println!(
        "course completed: {} (startup {}, stalls {})",
        session.report.completed,
        session.report.startup(),
        session.report.stalls.len()
    );
    assert!(session.report.completed);
}

fn visible_names(session: &CodSession<'_>) -> Vec<String> {
    session
        .presentation()
        .visible()
        .into_iter()
        .map(|v| v.name)
        .collect()
}
